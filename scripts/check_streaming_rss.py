#!/usr/bin/env python3
"""Streaming-retention memory guard: RSS must stay flat over the run.

With ``metrics_retention="streaming"`` the columnar collector folds each
frozen 4096-row chunk into running aggregates and releases it, so the
process footprint after the world is built should be governed by the
*population*, not by how long the run lasts.  This script proves that
property on a live run: it builds one simulation, runs the engine to a
checkpoint fraction of the configured duration, samples peak RSS, runs
to the end, samples again, and fails if the second sample grew beyond
``--max-growth`` times the first.

The check discriminates at large populations: at the ``huge`` preset
full retention's record arrays grow by hundreds of megabytes after the
first checkpoint, while streaming holds the growth to the live
simulation state.  (At small presets both modes pass — a 1000-peer run
simply doesn't record enough rows to move RSS.)  Peak RSS
(``ru_maxrss``) is used rather than instantaneous RSS because it is
monotone — immune to GC timing and allocator release behaviour between
the two samples.

Usage (CI runs the huge preset)::

    PYTHONPATH=src python scripts/check_streaming_rss.py \
        [--preset huge] [--checkpoint 0.25] [--max-growth 1.25] \
        [--retention streaming] [--seed 42]
"""

from __future__ import annotations

import argparse
import gc
import resource
import sys
from typing import List, Optional


def peak_rss_mb() -> float:
    """Peak resident set size of this process so far, in MB."""
    peak = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    if sys.platform == "darwin":  # pragma: no cover - linux CI
        peak //= 1024
    return peak / 1024.0


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--preset", default="huge")
    parser.add_argument(
        "--checkpoint",
        type=float,
        default=0.25,
        help="fraction of the duration for the first RSS sample (default 0.25)",
    )
    parser.add_argument(
        "--max-growth",
        type=float,
        default=1.25,
        help="maximum peak-RSS ratio between checkpoints (default 1.25)",
    )
    parser.add_argument(
        "--retention",
        default="streaming",
        choices=("streaming", "full"),
        help="metrics retention mode (pass 'full' to watch the guard fail)",
    )
    parser.add_argument("--seed", type=int, default=42)
    args = parser.parse_args(argv)
    if not 0.0 < args.checkpoint < 1.0:
        parser.error(f"checkpoint must be in (0, 1), got {args.checkpoint}")
    if args.max_growth < 1.0:
        parser.error(f"max-growth must be >= 1, got {args.max_growth}")

    from repro.experiments.presets import preset
    from repro.simulation import FileSharingSimulation

    config = preset(
        args.preset,
        exchange_mechanism="2-5-way",
        seed=args.seed,
        metrics_retention=args.retention,
    )
    sim = FileSharingSimulation(config)
    sim.build()
    built_rss = peak_rss_mb()
    print(
        f"built {config.num_peers} peers ({args.preset} preset, "
        f"{args.retention} retention): peak RSS {built_rss:.0f}MB"
    )

    # Mirror FileSharingSimulation.run(): freeze the built world out of
    # the cyclic collector for the duration of the event loop.
    checkpoint_time = args.checkpoint * config.duration
    gc.collect()
    gc.freeze()
    try:
        sim.ctx.engine.run(until=checkpoint_time)
        rss_checkpoint = peak_rss_mb()
        sim.ctx.engine.run(until=config.duration)
        rss_final = peak_rss_mb()
    finally:
        gc.unfreeze()

    fired = sim.ctx.engine.events_fired
    growth = rss_final / rss_checkpoint
    print(
        f"{fired} events: peak RSS {rss_checkpoint:.0f}MB at "
        f"{args.checkpoint:.0%} of the run, {rss_final:.0f}MB at 100% "
        f"({growth:.3f}x growth, limit {args.max_growth:.2f}x)"
    )
    if fired == 0:
        print("error: the run fired no events — nothing was measured", file=sys.stderr)
        return 2
    if growth > args.max_growth:
        print(
            f"FAIL: peak RSS grew {growth:.3f}x between the "
            f"{args.checkpoint:.0%} and 100% checkpoints (limit "
            f"{args.max_growth:.2f}x) — metrics retention is not flat",
            file=sys.stderr,
        )
        return 1
    print("peak RSS growth within bounds — retention is flat")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
