#!/usr/bin/env python3
"""Benchmark regression guard: fresh BENCH json vs committed baselines.

CI publishes machine-readable ``BENCH_<name>_<scale>.json`` perf records
under ``benchmarks/results/`` on every push; snapshots deliberately
committed under ``benchmarks/baselines/`` pin the expected trajectory.
This script pairs them by filename and enforces two rules:

* ``events_fired`` must match **exactly**.  The simulator is
  deterministic — same preset, same seed, same event count, on any
  machine.  A drifted count means the run's trajectory changed, which
  is a correctness regression (or an unacknowledged re-baselining),
  never noise.
* ``events_per_second`` must not collapse: a fresh run below
  ``tolerance`` x baseline fails.  Wall-clock numbers move with the
  machine, so the default tolerance is generous (0.5 — flag only a
  >2x slowdown); the committed baseline documents the machine it came
  from, the guard catches order-of-magnitude regressions.
* ``peak_rss_mb`` must not balloon: a fresh run above
  ``rss-tolerance`` x baseline fails.  Peak RSS is far more stable
  across machines than wall clock (same allocations, same arrays), so
  its tolerance is tighter — a breach means the run genuinely holds
  more memory, the exact regression the streaming-retention and
  columnar cores exist to prevent.
* ``build_seconds`` (when both records carry it) must not collapse
  either: the world build is population-bound work guarded at the same
  generous wall-clock ``tolerance`` as events/sec.

Baselines with no fresh counterpart are skipped (not every CI job runs
every bench); a results directory with no overlap at all fails, since
a guard guarding nothing is a misconfiguration.

Usage::

    python scripts/check_bench.py \
        [--results benchmarks/results] [--baselines benchmarks/baselines] \
        [--tolerance 0.5] [--rss-tolerance 1.5]
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from typing import List, Optional, Tuple


def load_records(directory: str) -> dict:
    """``{filename: record}`` for every BENCH json in ``directory``."""
    records = {}
    if not os.path.isdir(directory):
        return records
    for name in sorted(os.listdir(directory)):
        if name.startswith("BENCH_") and name.endswith(".json"):
            with open(os.path.join(directory, name), encoding="utf-8") as handle:
                records[name] = json.load(handle)
    return records


def compare(
    baseline: dict, fresh: dict, tolerance: float, rss_tolerance: float = 1.5
) -> Tuple[bool, List[str]]:
    """(ok, human-readable notes) for one baseline/fresh pair."""
    notes: List[str] = []
    ok = True
    base_events: Optional[int] = baseline.get("events_fired")
    fresh_events: Optional[int] = fresh.get("events_fired")
    if base_events is not None:
        if fresh_events != base_events:
            ok = False
            notes.append(
                f"events_fired {fresh_events} != baseline {base_events} "
                "(trajectory changed — fix the regression or re-baseline "
                "deliberately)"
            )
        else:
            notes.append(f"events_fired {fresh_events} == baseline")
    base_rate = baseline.get("events_per_second")
    fresh_rate = fresh.get("events_per_second")
    if base_rate and fresh_rate:
        floor = tolerance * base_rate
        ratio = fresh_rate / base_rate
        if fresh_rate < floor:
            ok = False
            notes.append(
                f"events/sec {fresh_rate:.0f} < {tolerance:.0%} of baseline "
                f"{base_rate:.0f} ({ratio:.2f}x)"
            )
        else:
            notes.append(
                f"events/sec {fresh_rate:.0f} vs baseline {base_rate:.0f} "
                f"({ratio:.2f}x)"
            )
    base_rss = baseline.get("peak_rss_mb")
    fresh_rss = fresh.get("peak_rss_mb")
    if base_rss and fresh_rss:
        ceiling = rss_tolerance * base_rss
        ratio = fresh_rss / base_rss
        if fresh_rss > ceiling:
            ok = False
            notes.append(
                f"peak RSS {fresh_rss:.0f}MB > {rss_tolerance:.2f}x baseline "
                f"{base_rss:.0f}MB ({ratio:.2f}x — the run holds more memory)"
            )
        else:
            notes.append(
                f"peak RSS {fresh_rss:.0f}MB vs baseline {base_rss:.0f}MB "
                f"({ratio:.2f}x)"
            )
    base_build = baseline.get("build_seconds")
    fresh_build = fresh.get("build_seconds")
    if base_build and fresh_build:
        ceiling = base_build / tolerance
        ratio = fresh_build / base_build
        if fresh_build > ceiling:
            ok = False
            notes.append(
                f"build {fresh_build:.1f}s > baseline {base_build:.1f}s / "
                f"{tolerance:.0%} ({ratio:.2f}x slowdown)"
            )
        else:
            notes.append(
                f"build {fresh_build:.1f}s vs baseline {base_build:.1f}s "
                f"({ratio:.2f}x)"
            )
    return ok, notes


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--results", default="benchmarks/results")
    parser.add_argument("--baselines", default="benchmarks/baselines")
    parser.add_argument(
        "--tolerance",
        type=float,
        default=0.5,
        help="minimum fresh/baseline events-per-second ratio (default 0.5)",
    )
    parser.add_argument(
        "--rss-tolerance",
        type=float,
        default=1.5,
        help="maximum fresh/baseline peak-RSS ratio (default 1.5)",
    )
    args = parser.parse_args(argv)
    if not 0.0 < args.tolerance <= 1.0:
        parser.error(f"tolerance must be in (0, 1], got {args.tolerance}")
    if args.rss_tolerance < 1.0:
        parser.error(f"rss-tolerance must be >= 1, got {args.rss_tolerance}")

    baselines = load_records(args.baselines)
    results = load_records(args.results)
    if not baselines:
        print(f"error: no baselines under {args.baselines}", file=sys.stderr)
        return 2

    failures = 0
    compared = 0
    for name, baseline in baselines.items():
        fresh = results.get(name)
        if fresh is None:
            print(f"skip  {name}: no fresh run")
            continue
        compared += 1
        ok, notes = compare(baseline, fresh, args.tolerance, args.rss_tolerance)
        status = "ok   " if ok else "FAIL "
        print(f"{status}{name}: " + "; ".join(notes))
        if not ok:
            failures += 1

    if compared == 0:
        print(
            f"error: no fresh BENCH json under {args.results} matches any "
            f"baseline — guard would check nothing",
            file=sys.stderr,
        )
        return 2
    if failures:
        print(f"{failures}/{compared} benchmark(s) regressed", file=sys.stderr)
        return 1
    print(f"all {compared} benchmark(s) within bounds")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
