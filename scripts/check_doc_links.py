"""Markdown link checker for the docs CI job.

Scans the given markdown files for inline links and images
(``[text](target)`` / ``![alt](target)``) and fails when a *relative*
target does not exist on disk (anchors are stripped; external
``http(s)``/``mailto`` targets are skipped — the job must stay
offline-deterministic).  Pure stdlib so it runs anywhere the repo does.

Usage::

    python scripts/check_doc_links.py README.md docs/*.md
"""

from __future__ import annotations

import re
import sys
from typing import List, Tuple

#: Inline markdown links/images; deliberately simple — the docs avoid
#: exotic link syntax so a regex is enough and stays dependency-free.
LINK_PATTERN = re.compile(r"!?\[[^\]]*\]\(([^)\s]+)\)")

#: Target schemes that are not files on disk.
EXTERNAL_PREFIXES = ("http://", "https://", "mailto:")


def broken_links(paths: List[str]) -> List[Tuple[str, int, str]]:
    """``(file, line, target)`` for every relative target that is missing."""
    import os

    problems: List[Tuple[str, int, str]] = []
    for path in paths:
        base = os.path.dirname(os.path.abspath(path))
        with open(path, encoding="utf-8") as handle:
            for lineno, line in enumerate(handle, start=1):
                for match in LINK_PATTERN.finditer(line):
                    target = match.group(1)
                    if target.startswith(EXTERNAL_PREFIXES):
                        continue
                    target = target.split("#", 1)[0]
                    if not target:  # pure in-page anchor
                        continue
                    resolved = os.path.normpath(os.path.join(base, target))
                    if not os.path.exists(resolved):
                        problems.append((path, lineno, match.group(1)))
    return problems


def main(argv: List[str]) -> int:
    """Check every file named on the command line; 1 on any broken link."""
    if not argv:
        print("usage: check_doc_links.py FILE.md [FILE.md ...]", file=sys.stderr)
        return 2
    problems = broken_links(argv)
    for path, lineno, target in problems:
        print(f"{path}:{lineno}: broken link -> {target}", file=sys.stderr)
    if problems:
        return 1
    print(f"checked {len(argv)} file(s): all relative links resolve")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
