"""Quickstart: run one simulated file-sharing network and read the results.

Builds a small exchange-enabled network (2-5-way rings, 50% free-riders),
runs it for a few simulated hours and prints the headline numbers the
paper's evaluation revolves around: mean download time for sharing vs.
non-sharing users, and the exchange share of transfer sessions.

Run with:  python examples/quickstart.py
"""

from __future__ import annotations

from repro import SimulationConfig, run_simulation


def main() -> None:
    config = SimulationConfig(
        # A laptop-friendly population; Table II defaults otherwise.
        num_peers=60,
        num_categories=60,
        objects_per_category_max=80,
        object_size_mb=4.0,
        block_size_kbit=1024.0,
        storage_min_objects=4,
        storage_max_objects=20,
        upload_capacity_kbit=40.0,  # loaded regime: incentives bite here
        exchange_mechanism="2-5-way",
        duration=30_000.0,
        warmup=6_000.0,
        seed=7,
    )
    print("Simulating", config.num_peers, "peers with mechanism",
          config.exchange_mechanism, "...")
    result = run_simulation(config)
    summary = result.summary

    print(f"\nsimulated {config.duration:.0f}s in {result.wall_seconds:.1f}s "
          f"({result.events_fired} events)")
    print(f"completed downloads: {summary.completed_downloads_sharers} by sharers, "
          f"{summary.completed_downloads_freeloaders} by free-riders")
    print(f"mean download time, sharers:     "
          f"{summary.mean_download_time_sharers_min:.1f} min")
    print(f"mean download time, free-riders: "
          f"{summary.mean_download_time_freeloaders_min:.1f} min")
    print(f"sharer speedup over free-riders: "
          f"{summary.speedup_sharers_vs_freeloaders:.2f}x")
    print(f"exchange share of sessions:      "
          f"{summary.exchange_session_fraction:.1%}")

    rings = {
        key.removeprefix("ring.formed.size"): value
        for key, value in summary.counters.items()
        if key.startswith("ring.formed.size")
    }
    print(f"rings formed by size:            {rings or 'none'}")


if __name__ == "__main__":
    main()
