"""The freeriding middleman, and the defenses of paper §III-B.

Demonstrates, in order:

1. the relay attack — a middleman brokers an exchange between two real
   traders and walks away with the object, contributing nothing;
2. the trusted-mediator protocol closing it — keys are released to the
   control-header origins, so the middleman holds only ciphertext;
3. synchronous block validation + exchange windows bounding what a
   junk-serving cheater can take;
4. why blacklists alone do not work against cheap pseudonyms;
5. the Table I / Fig. 3 non-ring mixed object-capacity exchange, where
   a peer with no exchangeable object still contributes capacity and
   everyone weakly gains.

Run with:  python examples/middleman_attack.py
"""

from __future__ import annotations

from repro.security import (
    capacity_exchange_rates,
    run_middleman_attack,
    table1_scenario,
)
from repro.security.blacklist import cheap_pseudonym_gain
from repro.security.middleman import mixed_exchange_is_pareto_improvement
from repro.security.windows import max_exchange_rate, simulate_defection, window_for_rate


def main() -> None:
    print("1) Middleman relay attack, no protection:")
    naked = run_middleman_attack(blocks=8, use_mediator=False)
    print(f"   blocks relayed: {naked.blocks_relayed}, "
          f"middleman can read: {naked.middleman_readable} "
          f"-> attack succeeded: {naked.attack_succeeded}")

    print("\n2) Same attack under the trusted-mediator protocol:")
    mediated = run_middleman_attack(blocks=8, use_mediator=True)
    print(f"   blocks relayed: {mediated.blocks_relayed}, "
          f"middleman can read: {mediated.middleman_readable}, "
          f"honest endpoints can read: {mediated.endpoints_readable} "
          f"-> attack succeeded: {mediated.attack_succeeded}")

    print("\n3) Synchronous validation + windowed exchange:")
    block_kbit, rtt, slot = 256.0, 0.2, 10.0
    sync_rate = max_exchange_rate(block_kbit, rtt, window=1)
    window = window_for_rate(block_kbit, rtt, slot)
    print(f"   fully synchronous rate: {sync_rate:.0f} kbit/s "
          f"(slot is {slot:.0f} kbit/s -> window {window} fills it)")
    for defect_round in (0, 2, 4):
        exchange = simulate_defection(defect_round, max_window=8)
        honest_rounds = max(0, exchange.total_rounds - 1)
        print(f"   cheater defecting at round {defect_round}: played honest for "
              f"{honest_rounds} round(s), haul = "
              f"{exchange.blocks_lost_to_cheater} block(s)")

    print("\n4) Blacklists vs cheap pseudonyms (100 victims, 20 identities):")
    local = cheap_pseudonym_gain(100, blacklist_shared=False, identities_available=20)
    shared = cheap_pseudonym_gain(100, blacklist_shared=True, identities_available=20)
    print(f"   local lists only: {local} one-block cheats")
    print(f"   cooperative list: {shared} one-block cheats "
          f"(still nonzero: new identities are free)")

    print("\n5) Table I scenario -> Fig. 3 mixed object-capacity exchange:")
    print(f"   {'peer':4s} {'upload':>6s} {'has':>4s} {'wants':>6s}")
    for peer in table1_scenario():
        print(f"   {peer.name:4s} {peer.upload:6.0f} {peer.has:>4s} {peer.wants:>6s}")
    rates = capacity_exchange_rates()
    print("   receive rates (pure pairwise -> mixed exchange):")
    for name in ("A", "B", "C", "D"):
        pure = rates["pure"][name]
        mixed = rates["mixed"][name]
        for obj in pure:
            print(f"     {name} gets {obj}: {pure[obj]:.0f} -> {mixed[obj]:.0f}")
    print(f"   Pareto improvement: {mixed_exchange_is_pareto_improvement()}")


if __name__ == "__main__":
    main()
