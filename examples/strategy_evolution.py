"""Strategy dynamics: do adaptive peers keep sharing?

The paper evaluates incentive mechanisms against *fixed* populations —
a free-rider stays a free-rider forever.  The strategy layer
(`repro.strategy`) lets every peer periodically compare the realized
payoff of sharing against free-riding and switch sides.  This example
runs the same adaptive population under two mechanisms and prints the
sharing-fraction trajectory:

* no incentive ("none"): sharing carries cost and earns nothing, so the
  population collapses toward free-riding — the tragedy of the commons
  the paper's motivation section describes;
* 2-5-way exchanges: sharers are served at exchange priority, so
  sharing pays for itself and the population converges to (almost)
  everyone sharing.

Run with:  python examples/strategy_evolution.py
"""

from __future__ import annotations

from repro import run_simulation
from repro.experiments.presets import evolution_config


def main() -> None:
    print("Adaptive peers, best-response revisions, 50% initial sharers.\n")
    results = {}
    for mechanism in ("none", "exchange"):
        config = evolution_config("smoke", mechanism, seed=42)
        print(f"simulating mechanism={mechanism!r} "
              f"({config.num_peers} peers, {len(config.population) or 2} classes)...")
        results[mechanism] = run_simulation(config).summary

    print("\nepoch   none   exchange")
    none_series = results["none"].sharing_fraction_by_epoch
    exchange_series = results["exchange"].sharing_fraction_by_epoch
    for index in range(max(len(none_series), len(exchange_series))):
        row = [f"{index + 1:5d}"]
        for series in (none_series, exchange_series):
            row.append(
                f"{series[index][1]:6.2f}" if index < len(series) else "     -"
            )
        print("  ".join(row))

    for mechanism, summary in results.items():
        print(f"\n{mechanism}: equilibrium sharing fraction "
              f"{summary.equilibrium_sharing_fraction:.2f} "
              f"({summary.strategy_switches} switches, "
              f"final {summary.final_sharing_fraction:.2f})")
    print("\nWithout an incentive, rational peers stop sharing; with "
          "exchange priority,\nsharing is the winning strategy — the "
          "paper's thesis, now as a dynamic equilibrium.")


if __name__ == "__main__":
    main()
