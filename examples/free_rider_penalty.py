"""How the free-rider penalty depends on how many peers free-ride.

A miniature of the paper's Fig. 12: sweep the fraction of non-sharing
peers and show that the download-time gap persists at every mix — when
almost everyone shares, defecting is what costs you; when almost nobody
shares, sharing is what saves you.

Run with:  python examples/free_rider_penalty.py
"""

from __future__ import annotations

from repro import SimulationConfig, run_simulation


def main() -> None:
    print(f"{'free-riders':>12s} {'sharers (min)':>14s} "
          f"{'free-riders (min)':>18s} {'penalty':>8s}")
    for fraction in (0.2, 0.5, 0.8):
        config = SimulationConfig(
            num_peers=60,
            num_categories=60,
            objects_per_category_max=80,
            object_size_mb=4.0,
            block_size_kbit=1024.0,
            storage_min_objects=4,
            storage_max_objects=20,
            upload_capacity_kbit=40.0,
            freeloader_fraction=fraction,
            exchange_mechanism="2-5-way",
            duration=30_000.0,
            warmup=6_000.0,
            seed=23,
        )
        summary = run_simulation(config).summary
        sharers = summary.mean_download_time_sharers_min
        freeloaders = summary.mean_download_time_freeloaders_min
        penalty = summary.speedup_sharers_vs_freeloaders
        print(f"{fraction:12.0%} {sharers:14.1f} {freeloaders:18.1f} "
              f"{penalty:7.2f}x")
    print("\nThe penalty for not sharing persists across the whole range —")
    print("the paper's Fig. 12 observation.")


if __name__ == "__main__":
    main()
