"""Compare incentive mechanisms head-to-head (the paper's Fig. 4 story).

Runs the same loaded network under four regimes — no incentives, the
eMule-style credit baseline, the KaZaA-style claimed-participation
baseline (with free-riders faking their level), and the paper's
exchange mechanism — and tabulates how much faster sharing users are
than free-riders under each.

Expected outcome (the paper's §II argument): the claimed-participation
scheme collapses (cheaters claim the maximum), credit differentiates
mildly, exchanges differentiate strongly.

Run with:  python examples/incentive_comparison.py
"""

from __future__ import annotations

from repro import SimulationConfig, run_simulation


def base_config(**overrides) -> SimulationConfig:
    defaults = dict(
        num_peers=60,
        num_categories=60,
        objects_per_category_max=80,
        object_size_mb=4.0,
        block_size_kbit=1024.0,
        storage_min_objects=4,
        storage_max_objects=20,
        upload_capacity_kbit=40.0,
        duration=30_000.0,
        warmup=6_000.0,
        seed=11,
    )
    defaults.update(overrides)
    return SimulationConfig(**defaults)


REGIMES = {
    "no incentives (FIFO)": dict(exchange_mechanism="none", scheduler_mode="fifo"),
    "participation (KaZaA-like)": dict(
        exchange_mechanism="none", scheduler_mode="participation"
    ),
    "credit (eMule-like)": dict(exchange_mechanism="none", scheduler_mode="credit"),
    "pairwise exchange": dict(exchange_mechanism="pairwise", scheduler_mode="fifo"),
    "2-5-way exchange": dict(exchange_mechanism="2-5-way", scheduler_mode="fifo"),
}


def main() -> None:
    header = f"{'regime':28s} {'sharers':>9s} {'free-riders':>12s} {'speedup':>8s}"
    print(header)
    print("-" * len(header))
    for name, overrides in REGIMES.items():
        summary = run_simulation(base_config(**overrides)).summary
        sharers = summary.mean_download_time_sharers_min
        freeloaders = summary.mean_download_time_freeloaders_min
        speedup = summary.speedup_sharers_vs_freeloaders
        print(
            f"{name:28s} {sharers:7.1f}min {freeloaders:9.1f}min "
            f"{speedup:7.2f}x"
        )
    print("\n(times are mean download minutes; speedup = free-rider / sharer)")


if __name__ == "__main__":
    main()
