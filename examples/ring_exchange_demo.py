"""Anatomy of an n-way exchange: watch a 3-ring form, run, and break.

Hand-builds the smallest interesting network — three sharers whose
wants form a cycle (A wants what C has, C wants what B has, B wants
what A has) plus one free-rider competing for the same slots — and
narrates the exchange machinery step by step: request registration,
request-tree propagation, ring discovery via the composite tree, the
token pass, preemption of the free-rider's transfer, and the ring
breaking when the first member completes.

Run with:  python examples/ring_exchange_demo.py
"""

from __future__ import annotations

from repro import SimulationConfig, TrafficClass
from repro.content.catalog import Catalog, Category, ContentObject
from repro.content.interests import InterestProfile
from repro.content.storage import ObjectStore
from repro.context import SimContext
from repro.core.policies import parse_mechanism
from repro.network.behaviors import FREELOADER, SHARER
from repro.network.lookup import LookupService
from repro.network.peer import Peer

OBJECT_SIZE_KBIT = 4096.0  # 0.5 MB -> 4 blocks of 1024 kbit


def build_catalog() -> Catalog:
    objects = tuple(
        ContentObject(object_id=i, category_id=0, rank=i + 1, size_kbit=OBJECT_SIZE_KBIT)
        for i in range(4)
    )
    return Catalog([Category(category_id=0, rank=1, objects=objects)])


def build_peer(ctx: SimContext, peer_id: int, shares: bool = True) -> Peer:
    behavior = SHARER if shares else FREELOADER
    peer = Peer(
        ctx,
        peer_id,
        behavior,
        parse_mechanism("2-5-way"),
        InterestProfile([0], [1.0]),
        ObjectStore(capacity=8),
    )
    ctx.peers[peer_id] = peer
    return peer


def give(ctx: SimContext, peer: Peer, object_id: int) -> None:
    peer.store.add(object_id)
    if peer.behavior.shares:
        ctx.lookup.register(peer.peer_id, object_id)


def main() -> None:
    config = SimulationConfig(
        num_peers=4,
        num_categories=1,
        objects_per_category_max=4,
        object_size_mb=0.5,
        block_size_kbit=1024.0,
        upload_capacity_kbit=10.0,  # ONE upload slot each: priority is visible
        storage_min_objects=8,
        storage_max_objects=8,
        exchange_mechanism="2-5-way",
        duration=10_000.0,
        warmup=0.0,
    )
    ctx = SimContext(config)
    ctx.catalog = build_catalog()
    ctx.lookup = LookupService()

    alice = build_peer(ctx, 0)
    bob = build_peer(ctx, 1)
    carol = build_peer(ctx, 2)
    frank = build_peer(ctx, 3, shares=False)  # the free-rider

    give(ctx, alice, 0)  # Alice has object 0
    give(ctx, bob, 1)  # Bob has object 1
    give(ctx, carol, 2)  # Carol has object 2

    print("Step 1 — the free-rider asks first and takes Alice's only slot.")
    frank.start_download(ctx.catalog.object(0))
    ctx.engine.run(until=1.0)
    frank_dl = frank.pending[0]
    print(f"  Frank is served by {frank_dl.active_sources} normal transfer(s).")

    print("\nStep 2 — requests that form a cycle, registered one by one.")
    print("  Carol requests object 1 from Bob   (edge Carol->Bob)")
    carol.start_download(ctx.catalog.object(1))
    ctx.engine.run(until=2.0)
    print("  Bob requests object 0 from Alice   (edge Bob->Alice), carrying")
    print("  Bob's request tree, in which Carol already appears.")
    bob.start_download(ctx.catalog.object(0))
    ctx.engine.run(until=3.0)

    print("\nStep 3 — Alice wants object 2 (held by Carol): before sending the")
    print("  request she inspects her composite request tree, finds Carol at")
    print("  depth 3, and closes the 3-ring Alice->Carol->Bob->Alice.")
    alice.start_download(ctx.catalog.object(2))
    ctx.engine.run(until=4.0)

    rings_formed = ctx.metrics.counters.get("ring.formed.size3", 0)
    print(f"  rings formed: {rings_formed}")
    for peer, wanted in ((alice, 2), (bob, 0), (carol, 1)):
        download = peer.pending[wanted]
        transfer = next(iter(download.transfers.values()))
        print(
            f"  peer {peer.peer_id} receives object {wanted} via "
            f"{transfer.traffic_class.value} transfer from peer "
            f"{transfer.provider.peer_id}"
        )

    print("\nStep 4 — the exchange preempted the free-rider's transfer:")
    preempted = [
        s for s in ctx.metrics.sessions if s.reason.value == "preempted"
    ]
    print(f"  preempted sessions: {len(preempted)} "
          f"(requester: peer {preempted[0].requester_id})")
    print(f"  Frank's request is back in Alice's queue: "
          f"{(3, 0) in alice.irq}")

    print("\nStep 5 — run to completion; the ring breaks when the first member")
    print("  finishes, and the free-rider finally gets the spare slot back.")
    ctx.engine.run(until=10_000.0)
    exchange_sessions = [
        s
        for s in ctx.metrics.sessions
        if s.traffic_class is not TrafficClass.NON_EXCHANGE
    ]
    print(f"  exchange sessions recorded: {len(exchange_sessions)}")
    print(f"  Alice now stores object 2: {2 in alice.store}")
    print(f"  Bob now stores object 0:   {0 in bob.store}")
    print(f"  Carol now stores object 1: {1 in carol.store}")
    print(f"  Frank got object 0 too:    {0 in frank.store} "
          f"(served at low priority)")


if __name__ == "__main__":
    main()
