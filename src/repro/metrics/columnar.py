"""Columnar metrics collector: numpy struct-of-arrays record storage.

Drop-in alternative to :class:`~repro.metrics.collectors.MetricsCollector`
for large runs.  Records land as scalars appended to a staging row list
that is flushed into fixed-size numpy column chunks (amortized growth,
8 bytes per float instead of a boxed dataclass per record), and every
summary input — filtered time lists, per-class groupings, session
aggregates — is extracted straight from the arrays.

Equivalence contract (pinned by ``tests/test_collector_equivalence.py``):
for any record stream, :func:`~repro.metrics.summary.summarize` over
this collector is **byte-identical** to the dataclass collector.  That
is why every float transform below is elementwise (``/ 8.0``,
``- request_time``, ``/ 60.0`` — IEEE-identical to the per-record
Python expressions) and every accumulation is a sequential left-fold
``sum(values, 0.0)`` over ``.tolist()`` extractions in record order —
*never* ``np.sum``, whose pairwise reduction rounds differently.

The dataclass records stay as a thin view API: :attr:`sessions`,
:attr:`downloads` and :attr:`strategy_epochs` materialize
``List[SessionRecord]``-shaped views on demand for tests and tools;
nothing on the hot path allocates them.

Sentinels: ``ring_id=None`` is stored as ``-1`` (real ring ids start at
1), and ``None`` epoch payoffs are stored as NaN; both are restored on
view materialization.

Retention modes: ``retention="full"`` (default) keeps every frozen
chunk resident and queryable.  ``retention="streaming"`` hands each
frozen session/download chunk to the running folds in
:mod:`repro.metrics.aggregates` and releases it, so the collector's
memory is flat in run length; only the summary-input queries remain
(byte-identical to full retention, pinned by
``tests/test_streaming_retention.py``), and they must be asked at the
collector's construction-time warmup.  Record-level views raise
:class:`StreamingRetentionError`.  The tiny strategy-epoch table always
keeps full retention.
"""

from __future__ import annotations

from collections import Counter
from typing import Callable, Dict, Iterator, List, Optional, Sequence, Tuple

import numpy as np

from repro.metrics.aggregates import (
    RunningDownloadTimes,
    RunningSessionAggregates,
    SessionAggregates,
    first_occurrence_codes as _first_occurrence_codes,
)
from repro.metrics.records import (
    DownloadRecord,
    SessionRecord,
    StrategyEpochRecord,
    TerminationReason,
    TrafficClass,
)

#: Rows staged as Python tuples before being frozen into numpy chunks.
_CHUNK = 4096

_TRAFFIC_CLASSES: Tuple[TrafficClass, ...] = tuple(TrafficClass)
_TRAFFIC_CODE: Dict[TrafficClass, int] = {tc: i for i, tc in enumerate(_TRAFFIC_CLASSES)}
_NON_EXCHANGE_CODE = _TRAFFIC_CODE[TrafficClass.NON_EXCHANGE]
_REASONS: Tuple[TerminationReason, ...] = tuple(TerminationReason)
_REASON_CODE: Dict[TerminationReason, int] = {r: i for i, r in enumerate(_REASONS)}

_Schema = Tuple[Tuple[str, type], ...]

_SESSION_SCHEMA: _Schema = (
    ("provider_id", np.int64),
    ("requester_id", np.int64),
    ("object_id", np.int64),
    ("traffic_class", np.int8),
    ("ring_size", np.int32),
    ("ring_id", np.int64),
    ("request_time", np.float64),
    ("start_time", np.float64),
    ("end_time", np.float64),
    ("kbit", np.float64),
    ("reason", np.int8),
    ("sharer", np.bool_),
    ("req_class", np.int32),
    ("phase", np.int32),
    ("eff_class", np.int32),
)

_DOWNLOAD_SCHEMA: _Schema = (
    ("peer_id", np.int64),
    ("object_id", np.int64),
    ("request_time", np.float64),
    ("complete_time", np.float64),
    ("size_kbit", np.float64),
    ("sharer", np.bool_),
    ("class_name", np.int32),
    ("phase", np.int32),
    ("eff_class", np.int32),
)

_EPOCH_SCHEMA: _Schema = (
    ("time", np.float64),
    ("epoch", np.int64),
    ("enrolled", np.int64),
    ("sharing", np.int64),
    ("revised", np.int64),
    ("to_sharing", np.int64),
    ("to_freeloading", np.int64),
    ("payoff_sharing", np.float64),
    ("payoff_freeloading", np.float64),
    ("phase", np.int32),
)


class StreamingRetentionError(RuntimeError):
    """A record-level view was asked of a streaming-retention collector.

    Streaming retention releases frozen chunks after folding them into
    running aggregates, so anything that needs raw record rows —
    materialized record views, arbitrary-warmup filters, the strategy
    layer's incremental row feeds — cannot be served.  Use
    ``metrics_retention="full"`` for those.
    """


class _ColumnTable:
    """Chunked struct-of-arrays store with a tuple-per-row staging tail.

    The hot path is :meth:`append`: one list append per record.  Every
    ``_CHUNK`` rows the staging tail is transposed and frozen into one
    immutable numpy array per column.  In the default retaining mode
    :meth:`column` concatenates the chunks (plus the current tail) on
    demand and caches the result until the next append.  With an
    ``on_freeze`` fold and ``retain=False`` (streaming retention) each
    frozen chunk is handed to the fold and released instead, and the
    column accessors go dark.
    """

    __slots__ = (
        "_schema",
        "_index",
        "_chunks",
        "_staging",
        "_count",
        "_cache",
        "_on_freeze",
        "_retain",
        "_perf",
        "_perf_key",
    )

    def __init__(
        self,
        schema: _Schema,
        on_freeze: Optional[Callable[[Dict[str, np.ndarray]], None]] = None,
        retain: bool = True,
        perf=None,
        perf_key: str = "collector.chunks",
    ) -> None:
        self._schema = schema
        self._index = {name: i for i, (name, _) in enumerate(schema)}
        self._chunks: Dict[str, List[np.ndarray]] = {name: [] for name, _ in schema}
        self._staging: List[Tuple[object, ...]] = []
        self._count = 0
        self._cache: Optional[Dict[str, np.ndarray]] = None
        self._on_freeze = on_freeze
        self._retain = retain
        #: Perf-counter sink (kept only when enabled) tallying chunk
        #: freezes under ``perf_key`` — the collector's unit of
        #: amortized work.
        self._perf = perf if perf is not None and perf.enabled else None
        self._perf_key = perf_key

    def __len__(self) -> int:
        return self._count

    def append(self, row: Tuple[object, ...]) -> None:
        """Stage one row (positional, matching the schema order)."""
        staging = self._staging
        staging.append(row)
        self._count += 1
        self._cache = None
        if len(staging) >= _CHUNK:
            self._flush()

    def _flush(self) -> None:
        columns = zip(*self._staging)
        frozen = {  # simlint: disable=HOT001 -- amortized once per _CHUNK rows
            name: np.asarray(values, dtype=dtype)
            for (name, dtype), values in zip(self._schema, columns)
        }
        if self._on_freeze is not None:
            self._on_freeze(frozen)
        if self._retain:
            for name, array in frozen.items():
                self._chunks[name].append(array)
        self._staging.clear()
        if self._perf is not None:
            self._perf.bump(self._perf_key)

    def drain(self) -> None:
        """Freeze the staging tail now (partial chunk; query-time use).

        Chunk boundaries are not observable — every fold is elementwise
        or a carried left-fold — so draining early changes no value.
        """
        if self._staging:
            self._flush()

    def column(self, name: str) -> np.ndarray:
        """The full column as one array (cached until the next append)."""
        if not self._retain:
            raise StreamingRetentionError(
                f"column {name!r} was released under streaming retention"
            )
        cache = self._cache
        if cache is None:
            cache = {}
            self._cache = cache
        array = cache.get(name)
        if array is None:
            parts = list(self._chunks[name])
            dtype = dict(self._schema)[name]
            if self._staging:
                index = self._index[name]
                parts.append(
                    np.asarray([row[index] for row in self._staging], dtype=dtype)
                )
            if not parts:
                array = np.empty(0, dtype=dtype)
            elif len(parts) == 1:
                array = parts[0]
            else:
                array = np.concatenate(parts)
            cache[name] = array
        return array

    def lists(self, names: Sequence[str]) -> List[List[object]]:
        """Python-scalar extractions of several columns (record order)."""
        return [self.column(name).tolist() for name in names]

    def nbytes(self) -> int:
        """Approximate frozen-storage footprint in bytes (chunks only)."""
        return sum(
            (arr.nbytes for chunks in self._chunks.values() for arr in chunks),
            0,
        )


class ColumnarCollector:
    """Numpy-backed metrics sink, summary-equivalent to the dataclass one.

    Implements the full :class:`~repro.metrics.collectors.MetricsCollector`
    surface: the ``add_*`` scalar hot path, the ``record_*`` dataclass
    compatibility path, counters, phase stamping, the filtered-view
    queries, and :meth:`session_aggregates` for
    :func:`~repro.metrics.summary.summarize`.
    """

    #: Backend label, published into benchmark artifacts.
    backend_name = "columnar"

    def __init__(
        self,
        retention: str = "full",
        warmup: float = 0.0,
        perf_counters=None,
    ) -> None:
        if retention not in ("full", "streaming"):
            raise ValueError(f"unknown retention {retention!r}")
        #: Shared string-interning table for class and phase labels.
        self._labels: List[str] = [""]
        self._codes: Dict[str, int] = {"": 0}
        self.retention = retention
        #: Warmup boundary the streaming folds censor at; summary-input
        #: queries on a streaming collector must ask for exactly this.
        self.warmup = warmup
        self._session_fold: Optional[RunningSessionAggregates] = None
        self._download_fold: Optional[RunningDownloadTimes] = None
        if retention == "streaming":
            traffic_labels = tuple(tc.value for tc in _TRAFFIC_CLASSES)
            self._session_fold = RunningSessionAggregates(
                warmup, traffic_labels, self._labels, _NON_EXCHANGE_CODE
            )
            self._download_fold = RunningDownloadTimes(warmup)
            self._sessions = _ColumnTable(
                _SESSION_SCHEMA,
                on_freeze=self._session_fold.fold,
                retain=False,
                perf=perf_counters,
                perf_key="collector.session_chunks",
            )
            self._downloads = _ColumnTable(
                _DOWNLOAD_SCHEMA,
                on_freeze=self._download_fold.fold,
                retain=False,
                perf=perf_counters,
                perf_key="collector.download_chunks",
            )
        else:
            self._sessions = _ColumnTable(
                _SESSION_SCHEMA,
                perf=perf_counters,
                perf_key="collector.session_chunks",
            )
            self._downloads = _ColumnTable(
                _DOWNLOAD_SCHEMA,
                perf=perf_counters,
                perf_key="collector.download_chunks",
            )
        # Strategy epochs stay fully retained in either mode: one row
        # per revision epoch, never a memory concern, and the summary
        # reads them as records.
        self._epochs = _ColumnTable(_EPOCH_SCHEMA)
        self.counters: Counter = Counter()
        #: Scenario-phase label stamped onto records as they land (same
        #: contract as the dataclass collector).
        self.current_phase: str = ""

    # ------------------------------------------------------------------
    # retention guards
    # ------------------------------------------------------------------
    def _require_full(self, what: str) -> None:
        if self.retention != "full":
            raise StreamingRetentionError(
                f"{what} needs raw record rows, which streaming retention "
                "releases; run with metrics_retention='full'"
            )

    def _check_warmup(self, warmup: float, what: str) -> None:
        if warmup != self.warmup:
            raise ValueError(
                f"streaming retention folded {what} at warmup={self.warmup}; "
                f"cannot re-filter at warmup={warmup}"
            )

    # ------------------------------------------------------------------
    # interning
    # ------------------------------------------------------------------
    def _intern(self, label: str) -> int:
        code = self._codes.get(label)
        if code is None:
            code = len(self._labels)
            self._labels.append(label)
            self._codes[label] = code
        return code

    # ------------------------------------------------------------------
    # recording — scalar hot path
    # ------------------------------------------------------------------
    def add_session(
        self,
        provider_id: int,
        requester_id: int,
        object_id: int,
        traffic_class: TrafficClass,
        ring_size: int,
        ring_id: Optional[int],
        request_time: float,
        start_time: float,
        end_time: float,
        kbit_transferred: float,
        reason: TerminationReason,
        requester_is_sharer: bool,
        requester_class: str = "",
        phase: str = "",
    ) -> None:
        """Append one transfer-session row without building a record."""
        if end_time < start_time:
            raise ValueError(
                f"session ends before it starts: [{start_time}, {end_time}]"
            )
        if kbit_transferred < 0:
            raise ValueError(f"negative session volume {kbit_transferred}")
        if self.current_phase and not phase:
            phase = self.current_phase
        effective = requester_class or (
            "sharer" if requester_is_sharer else "freeloader"
        )
        self._sessions.append(
            (
                provider_id,
                requester_id,
                object_id,
                _TRAFFIC_CODE[traffic_class],
                ring_size,
                -1 if ring_id is None else ring_id,
                request_time,
                start_time,
                end_time,
                kbit_transferred,
                _REASON_CODE[reason],
                requester_is_sharer,
                self._intern(requester_class),
                self._intern(phase),
                self._intern(effective),
            )
        )
        self.counters[f"session.{traffic_class.value}"] += 1
        self.counters[f"session.reason.{reason.value}"] += 1

    def add_download(
        self,
        peer_id: int,
        object_id: int,
        request_time: float,
        complete_time: float,
        size_kbit: float,
        peer_is_sharer: bool,
        class_name: str = "",
        phase: str = "",
    ) -> None:
        """Append one completed-download row without building a record."""
        if complete_time < request_time:
            raise ValueError(
                "download completes before request: "
                f"[{request_time}, {complete_time}]"
            )
        if self.current_phase and not phase:
            phase = self.current_phase
        effective = class_name or ("sharer" if peer_is_sharer else "freeloader")
        self._downloads.append(
            (
                peer_id,
                object_id,
                request_time,
                complete_time,
                size_kbit,
                peer_is_sharer,
                self._intern(class_name),
                self._intern(phase),
                self._intern(effective),
            )
        )
        key = "download.sharer" if peer_is_sharer else "download.freeloader"
        self.counters[key] += 1

    def add_strategy_epoch(
        self,
        time: float,
        epoch: int,
        enrolled: int,
        sharing: int,
        revised: int,
        switched_to_sharing: int,
        switched_to_freeloading: int,
        mean_payoff_sharing: Optional[float],
        mean_payoff_freeloading: Optional[float],
        phase: str = "",
    ) -> None:
        """Append one strategy-revision epoch row."""
        if not 0 <= sharing <= enrolled:
            raise ValueError(f"sharing count {sharing} outside [0, {enrolled}]")
        if self.current_phase and not phase:
            phase = self.current_phase
        self._epochs.append(
            (
                time,
                epoch,
                enrolled,
                sharing,
                revised,
                switched_to_sharing,
                switched_to_freeloading,
                np.nan if mean_payoff_sharing is None else mean_payoff_sharing,
                np.nan if mean_payoff_freeloading is None else mean_payoff_freeloading,
                self._intern(phase),
            )
        )

    # ------------------------------------------------------------------
    # recording — dataclass compatibility path
    # ------------------------------------------------------------------
    def record_session(self, record: SessionRecord) -> None:
        """Append a prebuilt record (tests / hand-built streams)."""
        self.add_session(
            provider_id=record.provider_id,
            requester_id=record.requester_id,
            object_id=record.object_id,
            traffic_class=record.traffic_class,
            ring_size=record.ring_size,
            ring_id=record.ring_id,
            request_time=record.request_time,
            start_time=record.start_time,
            end_time=record.end_time,
            kbit_transferred=record.kbit_transferred,
            reason=record.reason,
            requester_is_sharer=record.requester_is_sharer,
            requester_class=record.requester_class,
            phase=record.phase,
        )

    def record_download(self, record: DownloadRecord) -> None:
        """Append a prebuilt record (tests / hand-built streams)."""
        self.add_download(
            peer_id=record.peer_id,
            object_id=record.object_id,
            request_time=record.request_time,
            complete_time=record.complete_time,
            size_kbit=record.size_kbit,
            peer_is_sharer=record.peer_is_sharer,
            class_name=record.class_name,
            phase=record.phase,
        )

    def record_strategy_epoch(self, record: StrategyEpochRecord) -> None:
        """Append a prebuilt record (tests / hand-built streams)."""
        self.add_strategy_epoch(
            time=record.time,
            epoch=record.epoch,
            enrolled=record.enrolled,
            sharing=record.sharing,
            revised=record.revised,
            switched_to_sharing=record.switched_to_sharing,
            switched_to_freeloading=record.switched_to_freeloading,
            mean_payoff_sharing=record.mean_payoff_sharing,
            mean_payoff_freeloading=record.mean_payoff_freeloading,
            phase=record.phase,
        )

    def count(self, name: str, delta: int = 1) -> None:
        """Bump a free-form counter (ring attempts, token failures, ...)."""
        self.counters[name] += delta

    # ------------------------------------------------------------------
    # dataclass views (thin API for tests and tools; not on any hot path)
    # ------------------------------------------------------------------
    @property
    def sessions(self) -> List[SessionRecord]:
        """All session rows materialized as records (fresh list)."""
        self._require_full("the sessions record view")
        table = self._sessions
        labels = self._labels
        names = [name for name, _ in _SESSION_SCHEMA]
        rows = zip(*table.lists(names))
        return [
            SessionRecord(
                provider_id=pid,
                requester_id=rid,
                object_id=oid,
                traffic_class=_TRAFFIC_CLASSES[tc],
                ring_size=ring_size,
                ring_id=None if ring_id < 0 else ring_id,
                request_time=request_time,
                start_time=start_time,
                end_time=end_time,
                kbit_transferred=kbit,
                reason=_REASONS[reason],
                requester_is_sharer=sharer,
                requester_class=labels[req_class],
                phase=labels[phase],
            )
            for (
                pid, rid, oid, tc, ring_size, ring_id, request_time,
                start_time, end_time, kbit, reason, sharer, req_class,
                phase, _eff,
            ) in rows
        ]

    @property
    def downloads(self) -> List[DownloadRecord]:
        """All download rows materialized as records (fresh list)."""
        self._require_full("the downloads record view")
        table = self._downloads
        labels = self._labels
        names = [name for name, _ in _DOWNLOAD_SCHEMA]
        rows = zip(*table.lists(names))
        return [
            DownloadRecord(
                peer_id=pid,
                object_id=oid,
                request_time=request_time,
                complete_time=complete_time,
                size_kbit=size_kbit,
                peer_is_sharer=sharer,
                class_name=labels[class_name],
                phase=labels[phase],
            )
            for (
                pid, oid, request_time, complete_time, size_kbit, sharer,
                class_name, phase, _eff,
            ) in rows
        ]

    @property
    def strategy_epochs(self) -> List[StrategyEpochRecord]:
        """All strategy-epoch rows materialized as records (fresh list)."""
        table = self._epochs
        labels = self._labels
        names = [name for name, _ in _EPOCH_SCHEMA]
        rows = zip(*table.lists(names))
        return [
            StrategyEpochRecord(
                time=time,
                epoch=epoch,
                enrolled=enrolled,
                sharing=sharing,
                revised=revised,
                switched_to_sharing=to_sharing,
                switched_to_freeloading=to_freeloading,
                mean_payoff_sharing=None if payoff_s != payoff_s else payoff_s,
                mean_payoff_freeloading=None if payoff_f != payoff_f else payoff_f,
                phase=labels[phase],
            )
            for (
                time, epoch, enrolled, sharing, revised, to_sharing,
                to_freeloading, payoff_s, payoff_f, phase,
            ) in rows
        ]

    # ------------------------------------------------------------------
    # filtered views (array-backed)
    # ------------------------------------------------------------------
    def sessions_after(self, warmup: float) -> List[SessionRecord]:
        """Sessions that *ended* after the warmup boundary (records)."""
        return [s for s in self.sessions if s.end_time >= warmup]

    def downloads_after(self, warmup: float) -> List[DownloadRecord]:
        """Downloads that *completed* after the warmup boundary (records)."""
        return [d for d in self.downloads if d.complete_time >= warmup]

    def sessions_by_class(
        self, warmup: float = 0.0
    ) -> Dict[TrafficClass, List[SessionRecord]]:
        """Post-warmup sessions grouped by :class:`TrafficClass`."""
        grouped: Dict[TrafficClass, List[SessionRecord]] = {}
        for session in self.sessions_after(warmup):
            grouped.setdefault(session.traffic_class, []).append(session)
        return grouped

    def download_times(
        self, sharer: Optional[bool] = None, warmup: float = 0.0
    ) -> List[float]:
        """Download times in seconds, optionally filtered by peer class."""
        fold = self._download_fold
        if fold is not None:
            self._check_warmup(warmup, "download times")
            self._downloads.drain()
            return fold.times(sharer)
        table = self._downloads
        complete = table.column("complete_time")
        mask = complete >= warmup
        if sharer is not None:
            mask = mask & (table.column("sharer") == sharer)
        request = table.column("request_time")
        times: List[float] = (complete[mask] - request[mask]).tolist()
        return times

    def download_times_by_class(self, warmup: float = 0.0) -> Dict[str, List[float]]:
        """Download times (seconds) per population-class label.

        Same fallback as the dataclass collector: unlabeled records read
        as sharer/freeloader.  Keys appear in first-occurrence order.
        """
        fold = self._download_fold
        if fold is not None:
            self._check_warmup(warmup, "download times")
            self._downloads.drain()
            labels = self._labels
            return {
                labels[code]: times
                for code, times in fold.times_by_code("eff_class").items()
            }
        table = self._downloads
        complete = table.column("complete_time")
        keep = np.flatnonzero(complete >= warmup)
        codes = table.column("eff_class")[keep]
        times = (complete[keep] - table.column("request_time")[keep])
        labels = self._labels
        grouped: Dict[str, List[float]] = {}
        for code in _first_occurrence_codes(codes):
            grouped[labels[code]] = times[codes == code].tolist()
        return grouped

    def download_times_by_phase(self, warmup: float = 0.0) -> Dict[str, List[float]]:
        """Download times (seconds) per scenario-phase label ("" skipped)."""
        fold = self._download_fold
        if fold is not None:
            self._check_warmup(warmup, "download times")
            self._downloads.drain()
            labels = self._labels
            return {
                labels[code]: times
                for code, times in fold.times_by_code("phase").items()
            }
        table = self._downloads
        complete = table.column("complete_time")
        keep = np.flatnonzero(complete >= warmup)
        codes = table.column("phase")[keep]
        labeled = np.flatnonzero(codes != 0)  # code 0 is the "" label
        codes = codes[labeled]
        keep = keep[labeled]
        times = complete[keep] - table.column("request_time")[keep]
        labels = self._labels
        grouped: Dict[str, List[float]] = {}
        for code in _first_occurrence_codes(codes):
            grouped[labels[code]] = times[codes == code].tolist()
        return grouped

    def sessions_by_phase(
        self, warmup: float = 0.0
    ) -> Dict[str, List[SessionRecord]]:
        """Sessions grouped by scenario-phase label (unlabeled skipped)."""
        grouped: Dict[str, List[SessionRecord]] = {}
        for session in self.sessions_after(warmup):
            if session.phase:
                grouped.setdefault(session.phase, []).append(session)
        return grouped

    def reason_counts(self) -> Dict[TerminationReason, int]:
        """Session count per termination reason (zero counts omitted)."""
        counts: Dict[TerminationReason, int] = {}
        for reason in TerminationReason:
            key = f"session.reason.{reason.value}"
            if self.counters[key]:
                counts[reason] = self.counters[key]
        return counts

    # ------------------------------------------------------------------
    # summary inputs
    # ------------------------------------------------------------------
    def session_aggregates(self, warmup: float) -> SessionAggregates:
        """Array-backed per-class/per-phase session reductions.

        Matches the dataclass collector's record loop float for float:
        grouped extractions preserve record order, key order is first
        occurrence, and volume sums are sequential left-folds over
        Python scalars (see the module docstring).  Under streaming
        retention the result comes from the running chunk fold — same
        floats, same key order (pinned by the retention-equivalence
        tests) — and ``warmup`` must equal the construction-time value.
        """
        fold = self._session_fold
        if fold is not None:
            self._check_warmup(warmup, "session aggregates")
            self._sessions.drain()
            return fold.result()
        table = self._sessions
        end = table.column("end_time")
        keep = np.flatnonzero(end >= warmup)
        agg = SessionAggregates(total_sessions=int(keep.size))
        if keep.size == 0:
            return agg
        labels = self._labels
        tc_codes = table.column("traffic_class")[keep]
        kbit = table.column("kbit")[keep]
        volume_kb = kbit / 8.0
        waiting_min = (
            table.column("start_time")[keep] - table.column("request_time")[keep]
        ) / 60.0
        for code in _first_occurrence_codes(tc_codes):
            label = _TRAFFIC_CLASSES[code].value
            mask = tc_codes == code
            agg.session_counts[label] = int(np.count_nonzero(mask))
            agg.volume_kb_by_class[label] = volume_kb[mask].tolist()
            agg.waiting_min_by_class[label] = waiting_min[mask].tolist()
        agg.exchange_sessions = int(np.count_nonzero(tc_codes != _NON_EXCHANGE_CODE))
        sharer = table.column("sharer")[keep]
        agg.sharer_kbit = sum(kbit[sharer].tolist(), 0.0)
        agg.freeloader_kbit = sum(kbit[~sharer].tolist(), 0.0)
        eff_codes = table.column("eff_class")[keep]
        for code in _first_occurrence_codes(eff_codes):
            agg.kbit_by_peer_class[labels[code]] = sum(
                kbit[eff_codes == code].tolist(), 0.0
            )
        phase_codes = table.column("phase")[keep]
        labeled = phase_codes != 0  # code 0 is the "" label
        exchange = tc_codes != _NON_EXCHANGE_CODE
        for code in _first_occurrence_codes(phase_codes[labeled]):
            mask = phase_codes == code
            agg.phase_counts[labels[code]] = int(np.count_nonzero(mask))
            agg.phase_exchange_counts[labels[code]] = int(
                np.count_nonzero(mask & exchange)
            )
        return agg

    # ------------------------------------------------------------------
    # incremental row feeds (strategy layer)
    # ------------------------------------------------------------------
    @property
    def num_sessions(self) -> int:
        """Session rows recorded so far (no materialization)."""
        return len(self._sessions)

    @property
    def num_downloads(self) -> int:
        """Download rows recorded so far (no materialization)."""
        return len(self._downloads)

    def session_rows_since(
        self, start: int
    ) -> Iterator[Tuple[int, float, float, bool]]:
        """``(requester_id, request_time, end_time, is_exchange)`` rows.

        Yields rows ``start..`` in record order; the strategy layer's
        epoch ingestion reads these instead of materializing records.
        """
        self._require_full("session_rows_since")
        table = self._sessions
        requester = table.column("requester_id")[start:].tolist()
        request = table.column("request_time")[start:].tolist()
        end = table.column("end_time")[start:].tolist()
        exchange = (
            table.column("traffic_class")[start:] != _NON_EXCHANGE_CODE
        ).tolist()
        return zip(requester, request, end, exchange)

    def download_rows_since(
        self, start: int
    ) -> Iterator[Tuple[int, float, float, float]]:
        """``(peer_id, request_time, complete_time, download_time)`` rows."""
        self._require_full("download_rows_since")
        table = self._downloads
        peer = table.column("peer_id")[start:].tolist()
        request = table.column("request_time")[start:].tolist()
        complete = table.column("complete_time")[start:].tolist()
        times = (
            table.column("complete_time")[start:]
            - table.column("request_time")[start:]
        ).tolist()
        return zip(peer, request, complete, times)

    # ------------------------------------------------------------------
    def storage_nbytes(self) -> int:
        """Resident metrics footprint in bytes (staging tails excluded).

        Full retention counts the frozen chunks; streaming counts what
        the folds retain (the per-class value arrays) instead — the
        chunks themselves were released.
        """
        retained = (
            self._sessions.nbytes()
            + self._downloads.nbytes()
            + self._epochs.nbytes()
        )
        if self._session_fold is not None:
            retained += self._session_fold.nbytes()
        if self._download_fold is not None:
            retained += self._download_fold.nbytes()
        return retained

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"ColumnarCollector(sessions={len(self._sessions)}, "
            f"downloads={len(self._downloads)}, retention={self.retention!r})"
        )


#: The selectable collector backends (see ``SimulationConfig.metrics_backend``).
COLLECTOR_BACKENDS: Tuple[str, ...] = ("dataclass", "columnar")
