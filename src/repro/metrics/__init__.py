"""Measurement layer: session/download records, CDFs and summaries."""

from repro.metrics.cdf import EmpiricalCDF
from repro.metrics.collectors import MetricsCollector
from repro.metrics.records import (
    DownloadRecord,
    SessionRecord,
    TerminationReason,
    TrafficClass,
)
from repro.metrics.summary import SimulationSummary, summarize

__all__ = [
    "DownloadRecord",
    "EmpiricalCDF",
    "MetricsCollector",
    "SessionRecord",
    "SimulationSummary",
    "TerminationReason",
    "TrafficClass",
    "summarize",
]
