"""Empirical cumulative distribution functions.

The paper's Figs. 7 and 8 plot CDFs per traffic class.  This module
keeps the implementation dependency-free (no numpy required at runtime)
and exact: F(x) = fraction of samples <= x.
"""

from __future__ import annotations

import bisect
import math
from typing import Iterable, List, Sequence, Tuple

from repro.errors import MetricsError


class EmpiricalCDF:
    """Exact empirical CDF over a finite sample."""

    def __init__(self, samples: Iterable[float]) -> None:
        self._sorted: List[float] = sorted(samples)
        if not self._sorted:
            raise MetricsError("cannot build a CDF from zero samples")
        self._n = len(self._sorted)

    @property
    def n(self) -> int:
        """Number of samples the CDF was built from."""
        return self._n

    @property
    def min(self) -> float:
        """Smallest sample value."""
        return self._sorted[0]

    @property
    def max(self) -> float:
        """Largest sample value."""
        return self._sorted[-1]

    def __call__(self, x: float) -> float:
        """F(x) = P[X <= x]."""
        return bisect.bisect_right(self._sorted, x) / self._n

    def quantile(self, q: float) -> float:
        """Smallest sample value v with F(v) >= q, for q in (0, 1]."""
        if not 0.0 < q <= 1.0:
            raise MetricsError(f"quantile must be in (0, 1], got {q}")
        rank = math.ceil(q * self._n)  # the rank-th order statistic
        index = min(self._n - 1, max(0, rank - 1))
        return self._sorted[index]

    def mean(self) -> float:
        """Arithmetic mean of the samples."""
        return sum(self._sorted) / self._n

    def points(self, max_points: int = 200) -> List[Tuple[float, float]]:
        """(x, F(x)) pairs subsampled to at most ``max_points`` for plotting."""
        if max_points < 2:
            raise MetricsError(f"max_points must be >= 2, got {max_points}")
        step = max(1, self._n // max_points)
        pts: List[Tuple[float, float]] = []
        for i in range(0, self._n, step):
            pts.append((self._sorted[i], (i + 1) / self._n))
        last = (self._sorted[-1], 1.0)
        if pts[-1] != last:
            pts.append(last)
        return pts

    def evaluate_at(self, xs: Sequence[float]) -> List[float]:
        """F(x) for each x in ``xs`` (the benches tabulate fixed grids)."""
        return [self(x) for x in xs]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"EmpiricalCDF(n={self._n}, range=[{self.min:.3g}, {self.max:.3g}])"
