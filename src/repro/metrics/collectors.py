"""Central metrics collector.

The collector is an append-only sink shared by every peer and transfer.
It records everything with timestamps; filtering to the measurement
window (post-warmup) is applied in :mod:`repro.metrics.summary`, so a
single run can be re-summarized with different windows.
"""

from __future__ import annotations

import dataclasses
from collections import Counter
from typing import Dict, List, Optional

from repro.metrics.records import (
    DownloadRecord,
    SessionRecord,
    StrategyEpochRecord,
    TerminationReason,
    TrafficClass,
)


class MetricsCollector:
    """Append-only store of session and download records plus counters."""

    def __init__(self) -> None:
        self.sessions: List[SessionRecord] = []
        self.downloads: List[DownloadRecord] = []
        self.strategy_epochs: List[StrategyEpochRecord] = []
        self.counters: Counter = Counter()
        #: Scenario-phase label stamped onto records as they land; set
        #: by the :class:`~repro.scenario.ScenarioDirector` on phase
        #: markers ("" = no named phase, the closed-system default).
        self.current_phase: str = ""

    # ------------------------------------------------------------------
    # recording
    # ------------------------------------------------------------------
    def record_session(self, record: SessionRecord) -> None:
        """Append one transfer-session record (phase label stamped here)."""
        if self.current_phase and not record.phase:
            record = dataclasses.replace(record, phase=self.current_phase)
        self.sessions.append(record)
        self.counters[f"session.{record.traffic_class.value}"] += 1
        self.counters[f"session.reason.{record.reason.value}"] += 1

    def record_download(self, record: DownloadRecord) -> None:
        """Append one completed-download record (phase label stamped here)."""
        if self.current_phase and not record.phase:
            record = dataclasses.replace(record, phase=self.current_phase)
        self.downloads.append(record)
        key = "download.sharer" if record.peer_is_sharer else "download.freeloader"
        self.counters[key] += 1

    def record_strategy_epoch(self, record: StrategyEpochRecord) -> None:
        """Append one strategy-revision epoch (phase label stamped here)."""
        if self.current_phase and not record.phase:
            record = dataclasses.replace(record, phase=self.current_phase)
        self.strategy_epochs.append(record)

    def count(self, name: str, delta: int = 1) -> None:
        """Bump a free-form counter (ring attempts, token failures, ...)."""
        self.counters[name] += delta

    # ------------------------------------------------------------------
    # filtered views (used by summary and by tests)
    # ------------------------------------------------------------------
    def sessions_after(self, warmup: float) -> List[SessionRecord]:
        """Sessions that *ended* after the warmup boundary."""
        return [s for s in self.sessions if s.end_time >= warmup]

    def downloads_after(self, warmup: float) -> List[DownloadRecord]:
        """Downloads that *completed* after the warmup boundary."""
        return [d for d in self.downloads if d.complete_time >= warmup]

    def sessions_by_class(
        self, warmup: float = 0.0
    ) -> Dict[TrafficClass, List[SessionRecord]]:
        """Post-warmup sessions grouped by :class:`TrafficClass`."""
        grouped: Dict[TrafficClass, List[SessionRecord]] = {}
        for session in self.sessions_after(warmup):
            grouped.setdefault(session.traffic_class, []).append(session)
        return grouped

    def download_times(
        self, sharer: Optional[bool] = None, warmup: float = 0.0
    ) -> List[float]:
        """Download times in seconds, optionally filtered by peer class."""
        times = []
        for record in self.downloads_after(warmup):
            if sharer is not None and record.peer_is_sharer != sharer:
                continue
            times.append(record.download_time)
        return times

    def download_times_by_class(self, warmup: float = 0.0) -> Dict[str, List[float]]:
        """Download times (seconds) grouped by population-class label.

        Records without a class label (hand-built in unit tests) fall
        back to the behaviour-derived sharer/freeloader label.
        """
        grouped: Dict[str, List[float]] = {}
        for record in self.downloads_after(warmup):
            label = record.class_name or (
                "sharer" if record.peer_is_sharer else "freeloader"
            )
            grouped.setdefault(label, []).append(record.download_time)
        return grouped

    def download_times_by_phase(self, warmup: float = 0.0) -> Dict[str, List[float]]:
        """Download times (seconds) grouped by scenario-phase label.

        Records outside any named phase (label ``""``) are skipped — a
        closed-system run has no phases and yields an empty dict.
        """
        grouped: Dict[str, List[float]] = {}
        for record in self.downloads_after(warmup):
            if record.phase:
                grouped.setdefault(record.phase, []).append(record.download_time)
        return grouped

    def sessions_by_phase(
        self, warmup: float = 0.0
    ) -> Dict[str, List[SessionRecord]]:
        """Sessions grouped by scenario-phase label (unlabeled skipped)."""
        grouped: Dict[str, List[SessionRecord]] = {}
        for session in self.sessions_after(warmup):
            if session.phase:
                grouped.setdefault(session.phase, []).append(session)
        return grouped

    def reason_counts(self) -> Dict[TerminationReason, int]:
        """Session count per termination reason (zero counts omitted)."""
        counts: Dict[TerminationReason, int] = {}
        for reason in TerminationReason:
            key = f"session.reason.{reason.value}"
            if self.counters[key]:
                counts[reason] = self.counters[key]
        return counts

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"MetricsCollector(sessions={len(self.sessions)}, "
            f"downloads={len(self.downloads)})"
        )
