"""Central metrics collector.

The collector is an append-only sink shared by every peer and transfer.
It records everything with timestamps; filtering to the measurement
window (post-warmup) is applied in :mod:`repro.metrics.summary`, so a
single run can be re-summarized with different windows.
"""

from __future__ import annotations

import dataclasses
from collections import Counter
from typing import Dict, Iterator, List, Optional, Tuple

from repro.metrics.aggregates import SessionAggregates
from repro.metrics.records import (
    DownloadRecord,
    SessionRecord,
    StrategyEpochRecord,
    TerminationReason,
    TrafficClass,
)


class MetricsCollector:
    """Append-only store of session and download records plus counters."""

    #: Backend label, published into benchmark artifacts.
    backend_name = "dataclass"

    def __init__(self) -> None:
        self.sessions: List[SessionRecord] = []
        self.downloads: List[DownloadRecord] = []
        self.strategy_epochs: List[StrategyEpochRecord] = []
        self.counters: Counter = Counter()
        #: Scenario-phase label stamped onto records as they land; set
        #: by the :class:`~repro.scenario.ScenarioDirector` on phase
        #: markers ("" = no named phase, the closed-system default).
        self.current_phase: str = ""

    # ------------------------------------------------------------------
    # recording
    # ------------------------------------------------------------------
    def record_session(self, record: SessionRecord) -> None:
        """Append one transfer-session record (phase label stamped here)."""
        if self.current_phase and not record.phase:
            record = dataclasses.replace(record, phase=self.current_phase)
        self.sessions.append(record)
        self.counters[f"session.{record.traffic_class.value}"] += 1
        self.counters[f"session.reason.{record.reason.value}"] += 1

    def record_download(self, record: DownloadRecord) -> None:
        """Append one completed-download record (phase label stamped here)."""
        if self.current_phase and not record.phase:
            record = dataclasses.replace(record, phase=self.current_phase)
        self.downloads.append(record)
        key = "download.sharer" if record.peer_is_sharer else "download.freeloader"
        self.counters[key] += 1

    def record_strategy_epoch(self, record: StrategyEpochRecord) -> None:
        """Append one strategy-revision epoch (phase label stamped here)."""
        if self.current_phase and not record.phase:
            record = dataclasses.replace(record, phase=self.current_phase)
        self.strategy_epochs.append(record)

    def count(self, name: str, delta: int = 1) -> None:
        """Bump a free-form counter (ring attempts, token failures, ...)."""
        self.counters[name] += delta

    # ------------------------------------------------------------------
    # recording — scalar API (shared with the columnar backend, which
    # uses it to skip the per-record dataclass allocation entirely; here
    # it simply builds the record and delegates)
    # ------------------------------------------------------------------
    def add_session(
        self,
        provider_id: int,
        requester_id: int,
        object_id: int,
        traffic_class: TrafficClass,
        ring_size: int,
        ring_id: Optional[int],
        request_time: float,
        start_time: float,
        end_time: float,
        kbit_transferred: float,
        reason: TerminationReason,
        requester_is_sharer: bool,
        requester_class: str = "",
        phase: str = "",
    ) -> None:
        """Append one transfer session from scalar fields."""
        self.record_session(
            SessionRecord(
                provider_id=provider_id,
                requester_id=requester_id,
                object_id=object_id,
                traffic_class=traffic_class,
                ring_size=ring_size,
                ring_id=ring_id,
                request_time=request_time,
                start_time=start_time,
                end_time=end_time,
                kbit_transferred=kbit_transferred,
                reason=reason,
                requester_is_sharer=requester_is_sharer,
                requester_class=requester_class,
                phase=phase,
            )
        )

    def add_download(
        self,
        peer_id: int,
        object_id: int,
        request_time: float,
        complete_time: float,
        size_kbit: float,
        peer_is_sharer: bool,
        class_name: str = "",
        phase: str = "",
    ) -> None:
        """Append one completed download from scalar fields."""
        self.record_download(
            DownloadRecord(
                peer_id=peer_id,
                object_id=object_id,
                request_time=request_time,
                complete_time=complete_time,
                size_kbit=size_kbit,
                peer_is_sharer=peer_is_sharer,
                class_name=class_name,
                phase=phase,
            )
        )

    def add_strategy_epoch(
        self,
        time: float,
        epoch: int,
        enrolled: int,
        sharing: int,
        revised: int,
        switched_to_sharing: int,
        switched_to_freeloading: int,
        mean_payoff_sharing: Optional[float],
        mean_payoff_freeloading: Optional[float],
        phase: str = "",
    ) -> None:
        """Append one strategy-revision epoch from scalar fields."""
        self.record_strategy_epoch(
            StrategyEpochRecord(
                time=time,
                epoch=epoch,
                enrolled=enrolled,
                sharing=sharing,
                revised=revised,
                switched_to_sharing=switched_to_sharing,
                switched_to_freeloading=switched_to_freeloading,
                mean_payoff_sharing=mean_payoff_sharing,
                mean_payoff_freeloading=mean_payoff_freeloading,
                phase=phase,
            )
        )

    # ------------------------------------------------------------------
    # filtered views (used by summary and by tests)
    # ------------------------------------------------------------------
    def sessions_after(self, warmup: float) -> List[SessionRecord]:
        """Sessions that *ended* after the warmup boundary."""
        return [s for s in self.sessions if s.end_time >= warmup]

    def downloads_after(self, warmup: float) -> List[DownloadRecord]:
        """Downloads that *completed* after the warmup boundary."""
        return [d for d in self.downloads if d.complete_time >= warmup]

    def sessions_by_class(
        self, warmup: float = 0.0
    ) -> Dict[TrafficClass, List[SessionRecord]]:
        """Post-warmup sessions grouped by :class:`TrafficClass`."""
        grouped: Dict[TrafficClass, List[SessionRecord]] = {}
        for session in self.sessions_after(warmup):
            grouped.setdefault(session.traffic_class, []).append(session)
        return grouped

    def download_times(
        self, sharer: Optional[bool] = None, warmup: float = 0.0
    ) -> List[float]:
        """Download times in seconds, optionally filtered by peer class."""
        times = []
        for record in self.downloads_after(warmup):
            if sharer is not None and record.peer_is_sharer != sharer:
                continue
            times.append(record.download_time)
        return times

    def download_times_by_class(self, warmup: float = 0.0) -> Dict[str, List[float]]:
        """Download times (seconds) grouped by population-class label.

        Records without a class label (hand-built in unit tests) fall
        back to the behaviour-derived sharer/freeloader label.
        """
        grouped: Dict[str, List[float]] = {}
        for record in self.downloads_after(warmup):
            label = record.class_name or (
                "sharer" if record.peer_is_sharer else "freeloader"
            )
            grouped.setdefault(label, []).append(record.download_time)
        return grouped

    def download_times_by_phase(self, warmup: float = 0.0) -> Dict[str, List[float]]:
        """Download times (seconds) grouped by scenario-phase label.

        Records outside any named phase (label ``""``) are skipped — a
        closed-system run has no phases and yields an empty dict.
        """
        grouped: Dict[str, List[float]] = {}
        for record in self.downloads_after(warmup):
            if record.phase:
                grouped.setdefault(record.phase, []).append(record.download_time)
        return grouped

    def sessions_by_phase(
        self, warmup: float = 0.0
    ) -> Dict[str, List[SessionRecord]]:
        """Sessions grouped by scenario-phase label (unlabeled skipped)."""
        grouped: Dict[str, List[SessionRecord]] = {}
        for session in self.sessions_after(warmup):
            if session.phase:
                grouped.setdefault(session.phase, []).append(session)
        return grouped

    # ------------------------------------------------------------------
    # summary inputs
    # ------------------------------------------------------------------
    def session_aggregates(self, warmup: float) -> SessionAggregates:
        """Per-class/per-phase reductions over post-warmup sessions.

        The historical :func:`~repro.metrics.summary.summarize` record
        loop, moved behind the collector so the columnar backend can
        produce the same aggregates from arrays.  Computation order is
        frozen — the columnar backend reproduces it bit for bit.
        """
        agg = SessionAggregates()
        for session in self.sessions_after(warmup):
            agg.total_sessions += 1
            label = session.traffic_class.value
            agg.session_counts[label] = agg.session_counts.get(label, 0) + 1
            agg.volume_kb_by_class.setdefault(label, []).append(
                session.kbit_transferred / 8.0
            )
            agg.waiting_min_by_class.setdefault(label, []).append(
                session.waiting_time / 60.0
            )
            is_exchange = session.traffic_class.is_exchange
            if is_exchange:
                agg.exchange_sessions += 1
            if session.requester_is_sharer:
                agg.sharer_kbit += session.kbit_transferred
            else:
                agg.freeloader_kbit += session.kbit_transferred
            peer_class = session.requester_class or (
                "sharer" if session.requester_is_sharer else "freeloader"
            )
            agg.kbit_by_peer_class[peer_class] = (
                agg.kbit_by_peer_class.get(peer_class, 0.0)
                + session.kbit_transferred
            )
            if session.phase:
                agg.phase_counts[session.phase] = (
                    agg.phase_counts.get(session.phase, 0) + 1
                )
                agg.phase_exchange_counts[session.phase] = (
                    agg.phase_exchange_counts.get(session.phase, 0)
                    + (1 if is_exchange else 0)
                )
        return agg

    # ------------------------------------------------------------------
    # incremental row feeds (strategy layer)
    # ------------------------------------------------------------------
    @property
    def num_sessions(self) -> int:
        """Session records collected so far."""
        return len(self.sessions)

    @property
    def num_downloads(self) -> int:
        """Download records collected so far."""
        return len(self.downloads)

    def session_rows_since(
        self, start: int
    ) -> Iterator[Tuple[int, float, float, bool]]:
        """``(requester_id, request_time, end_time, is_exchange)`` rows.

        Rows ``start..`` in record order; the strategy layer's epoch
        ingestion consumes these so both collector backends feed it the
        same scalars.
        """
        return (
            (s.requester_id, s.request_time, s.end_time, s.traffic_class.is_exchange)
            for s in self.sessions[start:]
        )

    def download_rows_since(
        self, start: int
    ) -> Iterator[Tuple[int, float, float, float]]:
        """``(peer_id, request_time, complete_time, download_time)`` rows."""
        return (
            (d.peer_id, d.request_time, d.complete_time, d.download_time)
            for d in self.downloads[start:]
        )

    def reason_counts(self) -> Dict[TerminationReason, int]:
        """Session count per termination reason (zero counts omitted)."""
        counts: Dict[TerminationReason, int] = {}
        for reason in TerminationReason:
            key = f"session.reason.{reason.value}"
            if self.counters[key]:
                counts[reason] = self.counters[key]
        return counts

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"MetricsCollector(sessions={len(self.sessions)}, "
            f"downloads={len(self.downloads)})"
        )
