"""Immutable measurement records.

Two record kinds drive every figure in the paper:

* :class:`SessionRecord` — one transfer session between a provider and a
  requester (Figs. 5, 7, 8: class fractions, per-session volume CDF,
  waiting-time CDF).
* :class:`DownloadRecord` — one completed object download from original
  request to completion (Figs. 4, 6, 9, 11, 12: mean download times).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Optional


class TrafficClass(enum.Enum):
    """Session classification used throughout the paper's figures."""

    NON_EXCHANGE = "non-exchange"
    PAIRWISE = "pairwise"
    THREE_WAY = "3-way"
    FOUR_WAY = "4-way"
    FIVE_WAY = "5-way"
    HIGHER_WAY = "n-way(>5)"

    @classmethod
    def for_ring_size(cls, ring_size: int) -> "TrafficClass":
        """Map a ring size to its class; 0/1 means non-exchange."""
        if ring_size <= 1:
            return cls.NON_EXCHANGE
        if ring_size == 2:
            return cls.PAIRWISE
        if ring_size == 3:
            return cls.THREE_WAY
        if ring_size == 4:
            return cls.FOUR_WAY
        if ring_size == 5:
            return cls.FIVE_WAY
        return cls.HIGHER_WAY

    @property
    def is_exchange(self) -> bool:
        """Whether sessions of this class ran at exchange priority."""
        return self is not TrafficClass.NON_EXCHANGE


class TerminationReason(enum.Enum):
    """Why a transfer session ended."""

    COMPLETED = "completed"  # requester finished the object
    EXHAUSTED = "exhausted"  # no unassigned blocks left for this source
    PREEMPTED = "preempted"  # non-exchange slot reclaimed for an exchange
    REPLACED_BY_EXCHANGE = "replaced-by-exchange"  # same edge upgraded into a ring
    RING_BROKEN = "ring-broken"  # another ring member terminated first
    SOURCE_DELETED = "source-deleted"  # provider evicted the object
    REQUESTER_CANCELLED = "requester-cancelled"  # requester no longer wants it
    PEER_OFFLINE = "peer-offline"  # churn extension
    STOPPED_SHARING = "stopped-sharing"  # provider turned free-rider (strategy layer)
    SIM_END = "sim-end"  # censored at end of run
    CHEAT_DETECTED = "cheat-detected"  # security extension


@dataclass(frozen=True)
class SessionRecord:
    """One provider→requester transfer session."""

    provider_id: int
    requester_id: int
    object_id: int
    traffic_class: TrafficClass
    ring_size: int  # 0 for non-exchange sessions
    ring_id: Optional[int]  # None for non-exchange sessions
    request_time: float  # original object request (for waiting time)
    start_time: float
    end_time: float
    kbit_transferred: float
    reason: TerminationReason
    requester_is_sharer: bool
    #: Population-class label of the requester ("" for hand-built
    #: records; real runs always carry the class name).
    requester_class: str = ""
    #: Scenario-phase label active when the session *ended* ("" outside
    #: any named phase; stamped by the collector, not by call sites).
    phase: str = ""

    @property
    def waiting_time(self) -> float:
        """Paper Fig. 8: session start minus original object request."""
        return self.start_time - self.request_time

    @property
    def duration(self) -> float:
        """Session length in seconds (start to termination)."""
        return self.end_time - self.start_time

    def __post_init__(self) -> None:
        if self.end_time < self.start_time:
            raise ValueError(
                f"session ends before it starts: [{self.start_time}, {self.end_time}]"
            )
        if self.kbit_transferred < 0:
            raise ValueError(f"negative session volume {self.kbit_transferred}")


@dataclass(frozen=True)
class DownloadRecord:
    """One completed object download (request to full receipt)."""

    peer_id: int
    object_id: int
    request_time: float
    complete_time: float
    size_kbit: float
    peer_is_sharer: bool
    #: Population-class label of the downloading peer ("" for hand-built
    #: records; real runs always carry the class name).
    class_name: str = ""
    #: Scenario-phase label active at completion ("" outside any named
    #: phase; stamped by the collector, not by call sites).
    phase: str = ""

    @property
    def download_time(self) -> float:
        """Seconds from original request to full receipt."""
        return self.complete_time - self.request_time

    def __post_init__(self) -> None:
        if self.complete_time < self.request_time:
            raise ValueError(
                "download completes before request: "
                f"[{self.request_time}, {self.complete_time}]"
            )


@dataclass(frozen=True)
class StrategyEpochRecord:
    """One strategy-revision epoch (see :mod:`repro.strategy`).

    Recorded by the :class:`~repro.strategy.StrategyDirector` after each
    revision pass; the series of these records is the sharing-fraction
    trajectory the ``evolution`` figure plots.
    """

    #: Simulated time of the revision epoch.
    time: float
    #: 1-based epoch index.
    epoch: int
    #: Alive strategy-enrolled peers at the epoch.
    enrolled: int
    #: How many of them currently share.
    sharing: int
    #: How many peers drew a revision opportunity this epoch.
    revised: int
    #: Switches applied this epoch, by direction.
    switched_to_sharing: int
    switched_to_freeloading: int
    #: Mean realized payoff of the sharing / free-riding sides (None
    #: when no peer on that side had window data).
    mean_payoff_sharing: Optional[float]
    mean_payoff_freeloading: Optional[float]
    #: Scenario-phase label active at the epoch ("" outside any named
    #: phase; stamped by the collector, not by call sites).
    phase: str = ""

    @property
    def sharing_fraction(self) -> float:
        """Fraction of alive enrolled peers currently sharing."""
        if self.enrolled <= 0:
            return 0.0
        return self.sharing / self.enrolled

    def __post_init__(self) -> None:
        if not 0 <= self.sharing <= self.enrolled:
            raise ValueError(
                f"sharing count {self.sharing} outside [0, {self.enrolled}]"
            )
