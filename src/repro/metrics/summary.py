"""Run summaries: the numbers the paper's figures are made of.

:func:`summarize` reduces a :class:`~repro.metrics.collectors.MetricsCollector`
to a :class:`SimulationSummary` holding exactly the quantities plotted in
Figs. 4–12: per-class mean download times (minutes), exchange-session
fraction, per-class session volumes and waiting times, and per-peer-class
transfer volume.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Union

from repro.metrics.collectors import MetricsCollector
from repro.metrics.columnar import ColumnarCollector
from repro.units import kbit_to_mb, seconds_to_minutes

#: Both collector backends expose the same summary-input surface
#: (``session_aggregates``, the download-time views, ``strategy_epochs``
#: and ``counters``); :func:`summarize` is backend-agnostic over them.
AnyCollector = Union[MetricsCollector, ColumnarCollector]


def _mean(values: List[float]) -> Optional[float]:
    if not values:
        return None
    return sum(values) / len(values)


@dataclass
class SimulationSummary:
    """Headline quantities of one run (times in minutes, volumes in MB)."""

    # Fig. 4 / 6 / 9 / 12: mean download times
    mean_download_time_sharers_min: Optional[float]
    mean_download_time_freeloaders_min: Optional[float]
    mean_download_time_all_min: Optional[float]
    completed_downloads_sharers: int
    completed_downloads_freeloaders: int

    # Fig. 5: session class mix
    exchange_session_fraction: Optional[float]
    session_counts: Dict[str, int] = field(default_factory=dict)

    # Fig. 7 / 8 inputs
    session_volume_kb_by_class: Dict[str, List[float]] = field(default_factory=dict)
    waiting_time_min_by_class: Dict[str, List[float]] = field(default_factory=dict)

    # Fig. 10: measured-window transfer volume per peer class (MB / peer)
    volume_per_sharer_mb: float = 0.0
    volume_per_freeloader_mb: float = 0.0

    # Heterogeneous-population breakdowns, keyed by population-class
    # label.  For a legacy two-class run these hold exactly the
    # sharer/freeloader numbers above (which remain as derived views).
    mean_download_time_min_by_class: Dict[str, Optional[float]] = field(
        default_factory=dict
    )
    completed_downloads_by_class: Dict[str, int] = field(default_factory=dict)
    volume_per_peer_mb_by_class: Dict[str, float] = field(default_factory=dict)
    class_sizes: Dict[str, int] = field(default_factory=dict)

    # Scenario-phase breakdowns, keyed by phase label (see
    # :mod:`repro.scenario`).  Empty for closed-system runs: only
    # records completed inside a named phase contribute.
    mean_download_time_min_by_phase: Dict[str, Optional[float]] = field(
        default_factory=dict
    )
    completed_downloads_by_phase: Dict[str, int] = field(default_factory=dict)
    exchange_session_fraction_by_phase: Dict[str, Optional[float]] = field(
        default_factory=dict
    )

    # Strategy-dynamics trajectory (see :mod:`repro.strategy`): one
    # ``[time, sharing_fraction]`` pair per revision epoch, in time
    # order.  Empty for static-population runs.
    sharing_fraction_by_epoch: List[List[float]] = field(default_factory=list)
    #: Mean sharing fraction over the last quarter of revision epochs
    #: (the settled regime); None without any epoch.
    equilibrium_sharing_fraction: Optional[float] = None
    #: Sharing fraction at the final revision epoch; None without any.
    final_sharing_fraction: Optional[float] = None
    #: Total behaviour switches applied by the strategy layer.
    strategy_switches: int = 0

    # Incentive robustness (see :mod:`repro.security.adversaries`).
    # All defaults for runs without adversary classes, so honest
    # summaries are unchanged byte for byte.
    #: Peer-class labels that declared an ``adversary`` kind, sorted.
    adversary_classes: List[str] = field(default_factory=list)
    #: Measured-window volume the adversary classes extracted, MB per
    #: class (total, not per peer — the haul is what the attack is for).
    adversary_volume_mb_by_class: Dict[str, float] = field(default_factory=dict)
    #: Mean download time over the honest (non-adversary) classes.
    mean_download_time_honest_min: Optional[float] = None
    #: Mean download time over the adversary classes.
    mean_download_time_adversary_min: Optional[float] = None
    #: Honest mean / adversary mean: > 1 means the mechanism serves
    #: attackers *better* than the honest crowd — laundering won.
    honest_download_inflation: Optional[float] = None
    #: Requests refused because the requester was cooperatively banned.
    blacklist_hits: int = 0
    #: Whitewashes that shed an already-banned identity (§V's cheap
    #: pseudonyms defeating the blacklist).
    blacklist_evasions: int = 0

    # extras
    counters: Dict[str, int] = field(default_factory=dict)

    @property
    def speedup_sharers_vs_freeloaders(self) -> Optional[float]:
        """Fig. 11's y-axis: freeloader mean time / sharer mean time.

        ``None`` means the ratio is undefined: either class recorded no
        completed downloads, or the sharer mean is exactly zero.  A 0.0
        sharer mean is legitimate data, not missing data, so the checks
        are explicit ``is None`` comparisons rather than truthiness.
        """
        sharers = self.mean_download_time_sharers_min
        freeloaders = self.mean_download_time_freeloaders_min
        if sharers is None or freeloaders is None:
            return None
        if sharers == 0.0:
            return None
        return freeloaders / sharers

    # ------------------------------------------------------------------
    # serialization (used by the experiment orchestrator's result cache)
    # ------------------------------------------------------------------
    def to_dict(self) -> Dict[str, object]:
        """A JSON-safe dict holding every field (properties excluded)."""
        return dataclasses.asdict(self)

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "SimulationSummary":
        """Inverse of :meth:`to_dict`; unknown keys are rejected."""
        names = {f.name for f in dataclasses.fields(cls)}
        unknown = set(data) - names
        if unknown:
            raise ValueError(f"unknown SimulationSummary fields {sorted(unknown)}")
        return cls(**data)  # type: ignore[arg-type]


def summarize(
    collector: AnyCollector,
    warmup: float,
    num_sharers: int,
    num_freeloaders: int,
    class_sizes: Optional[Mapping[str, int]] = None,
    adversary_classes: Optional[Sequence[str]] = None,
) -> SimulationSummary:
    """Reduce raw records to the paper's headline metrics.

    ``warmup`` censors everything that finished before the measurement
    window opened.  Per-peer volumes are normalized by the *class size*
    so runs with different freeloader fractions are comparable (Fig. 12).
    ``class_sizes`` (population-class label → peer count) normalizes the
    per-class volume breakdown; when omitted, classes present in the
    records still get download-time and count entries.
    ``adversary_classes`` (class labels running an attack, see
    :mod:`repro.security.adversaries`) switches on the
    incentive-robustness fields — honest/adversary mean split, per-class
    extracted volume, blacklist hit/evasion counts; ``None`` (every
    honest run) leaves them at their defaults.

    Works identically over both collector backends: all per-record
    reduction happens inside ``collector.session_aggregates`` and the
    download-time views, which the backends implement equivalently
    (records loop vs. columnar arrays — bit-identical by contract).
    """
    sharer_times = collector.download_times(sharer=True, warmup=warmup)
    freeloader_times = collector.download_times(sharer=False, warmup=warmup)
    all_times = sharer_times + freeloader_times
    times_by_peer_class = collector.download_times_by_class(warmup=warmup)

    agg = collector.session_aggregates(warmup)
    session_counts = agg.session_counts
    volume_by_class = agg.volume_kb_by_class
    waiting_by_class = agg.waiting_min_by_class
    sharer_kbit = agg.sharer_kbit
    freeloader_kbit = agg.freeloader_kbit
    kbit_by_peer_class = agg.kbit_by_peer_class

    fraction: Optional[float] = None
    if agg.total_sessions:
        fraction = agg.exchange_sessions / agg.total_sessions

    sizes: Dict[str, int] = dict(class_sizes) if class_sizes else {}
    # Every known class appears in the breakdowns, even with no activity
    # in the window — a zero-adoption class reads as None, not missing.
    class_labels = sorted(set(sizes) | set(times_by_peer_class) | set(kbit_by_peer_class))
    mean_by_peer_class: Dict[str, Optional[float]] = {}
    completed_by_peer_class: Dict[str, int] = {}
    volume_per_peer_by_class: Dict[str, float] = {}
    for label in class_labels:
        times = times_by_peer_class.get(label, [])
        mean_time = _mean(times)
        mean_by_peer_class[label] = (
            seconds_to_minutes(mean_time) if mean_time is not None else None
        )
        completed_by_peer_class[label] = len(times)
        size = sizes.get(label, 0)
        volume_per_peer_by_class[label] = (
            kbit_to_mb(kbit_by_peer_class.get(label, 0.0)) / size if size else 0.0
        )

    # Scenario phases: slice completed downloads and session mix by the
    # phase label active when each record landed.
    times_by_phase = collector.download_times_by_phase(warmup=warmup)
    mean_by_phase: Dict[str, Optional[float]] = {}
    completed_by_phase: Dict[str, int] = {}
    for label, times in times_by_phase.items():
        mean_time = _mean(times)
        mean_by_phase[label] = (
            seconds_to_minutes(mean_time) if mean_time is not None else None
        )
        completed_by_phase[label] = len(times)
    exchange_fraction_by_phase: Dict[str, Optional[float]] = {}
    for label, phase_total in agg.phase_counts.items():
        exchange_fraction_by_phase[label] = (
            agg.phase_exchange_counts.get(label, 0) / phase_total
            if phase_total
            else None
        )

    # Strategy dynamics: the full trajectory (warmup included — the
    # transient is the interesting part) plus settled-regime scalars.
    epochs = sorted(collector.strategy_epochs, key=lambda r: (r.time, r.epoch))
    sharing_by_epoch = [[record.time, record.sharing_fraction] for record in epochs]
    equilibrium_fraction: Optional[float] = None
    final_fraction: Optional[float] = None
    if epochs:
        tail = epochs[-max(1, len(epochs) // 4):]
        equilibrium_fraction = _mean([record.sharing_fraction for record in tail])
        final_fraction = epochs[-1].sharing_fraction
    # Counters rather than epoch records: scenario StrategyShock flips
    # switch peers outside any revision epoch and must still count.
    switches = (
        collector.counters["strategy.switch_to_sharing"]
        + collector.counters["strategy.switch_to_freeloading"]
    )

    # Incentive robustness: split the per-class download times into the
    # honest crowd vs the attacker classes.  Labels are walked in sorted
    # order so both collector backends concatenate identically.
    adversary_labels = sorted(adversary_classes) if adversary_classes else []
    adversary_volume_by_class: Dict[str, float] = {}
    honest_mean_min: Optional[float] = None
    adversary_mean_min: Optional[float] = None
    inflation: Optional[float] = None
    blacklist_hits = 0
    blacklist_evasions = 0
    if adversary_labels:
        adversary_set = set(adversary_labels)
        adversary_volume_by_class = {
            label: kbit_to_mb(kbit_by_peer_class.get(label, 0.0))
            for label in adversary_labels
        }
        honest_times: List[float] = []
        adversary_times: List[float] = []
        for label in sorted(set(times_by_peer_class) | adversary_set):
            bucket = (
                adversary_times if label in adversary_set else honest_times
            )
            bucket.extend(times_by_peer_class.get(label, []))
        honest_mean = _mean(honest_times)
        adversary_mean = _mean(adversary_times)
        honest_mean_min = (
            seconds_to_minutes(honest_mean) if honest_mean is not None else None
        )
        adversary_mean_min = (
            seconds_to_minutes(adversary_mean)
            if adversary_mean is not None
            else None
        )
        if (
            honest_mean_min is not None
            and adversary_mean_min is not None
            and adversary_mean_min > 0.0
        ):
            inflation = honest_mean_min / adversary_mean_min
        blacklist_hits = collector.counters["adversary.blacklist_hit"]
        blacklist_evasions = collector.counters["adversary.blacklist_evasion"]

    mean_sharer = _mean(sharer_times)
    mean_freeloader = _mean(freeloader_times)
    mean_all = _mean(all_times)
    return SimulationSummary(
        mean_download_time_sharers_min=(
            seconds_to_minutes(mean_sharer) if mean_sharer is not None else None
        ),
        mean_download_time_freeloaders_min=(
            seconds_to_minutes(mean_freeloader) if mean_freeloader is not None else None
        ),
        mean_download_time_all_min=(
            seconds_to_minutes(mean_all) if mean_all is not None else None
        ),
        completed_downloads_sharers=len(sharer_times),
        completed_downloads_freeloaders=len(freeloader_times),
        exchange_session_fraction=fraction,
        session_counts=session_counts,
        session_volume_kb_by_class=volume_by_class,
        waiting_time_min_by_class=waiting_by_class,
        volume_per_sharer_mb=(
            kbit_to_mb(sharer_kbit) / num_sharers if num_sharers else 0.0
        ),
        volume_per_freeloader_mb=(
            kbit_to_mb(freeloader_kbit) / num_freeloaders if num_freeloaders else 0.0
        ),
        mean_download_time_min_by_class=mean_by_peer_class,
        completed_downloads_by_class=completed_by_peer_class,
        volume_per_peer_mb_by_class=volume_per_peer_by_class,
        class_sizes=sizes,
        mean_download_time_min_by_phase=mean_by_phase,
        completed_downloads_by_phase=completed_by_phase,
        exchange_session_fraction_by_phase=exchange_fraction_by_phase,
        sharing_fraction_by_epoch=sharing_by_epoch,
        equilibrium_sharing_fraction=equilibrium_fraction,
        final_sharing_fraction=final_fraction,
        strategy_switches=switches,
        adversary_classes=adversary_labels,
        adversary_volume_mb_by_class=adversary_volume_by_class,
        mean_download_time_honest_min=honest_mean_min,
        mean_download_time_adversary_min=adversary_mean_min,
        honest_download_inflation=inflation,
        blacklist_hits=blacklist_hits,
        blacklist_evasions=blacklist_evasions,
        counters=dict(collector.counters),
    )
