"""Shared session-reduction containers and streaming chunk folds.

:func:`~repro.metrics.summary.summarize` used to iterate
``List[SessionRecord]`` itself; with two collector backends (object
lists and columnar arrays) the per-session reduction lives behind
``collector.session_aggregates(warmup)`` instead, and this module holds
the result shape both backends produce.

Under streaming retention (``SimulationConfig.metrics_retention =
"streaming"``) the columnar backend additionally *folds* every frozen
4096-row chunk into the running reductions here and releases the chunk,
so metrics memory stays flat in run length.  The folds keep only what
the summary needs per record: the per-class volume/waiting value lists
(Fig. 7/8 CDF inputs) and download-time lists, as unboxed float64
chunk arrays until query time.

Bit-identity contract: every float in an aggregate must be built from
the same IEEE operations in the same order as the historical record
loop — elementwise ``/ 8.0`` and ``/ 60.0`` transforms, and sequential
left-fold ``sum(values, start)`` accumulations — so the two backends
*and* the two retention modes summarize to byte-identical JSON (pinned
by the golden figure tests, ``tests/test_collector_equivalence.py`` and
``tests/test_streaming_retention.py``).  Chunking cannot move a float:
the elementwise transforms are per-element, carrying the accumulator
through ``sum(chunk_values, accumulator)`` reassociates nothing
(``((0+a)+b)+c`` either way), and ``np.concatenate`` of chunk arrays
followed by ``.tolist()`` yields the same Python floats as per-chunk
``.tolist()`` extensions.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence

import numpy as np


def first_occurrence_codes(codes: np.ndarray) -> List[int]:
    """Distinct codes ordered by first occurrence (record order)."""
    if codes.size == 0:
        return []
    uniq, first = np.unique(codes, return_index=True)
    return [int(code) for code in uniq[np.argsort(first, kind="stable")]]


@dataclass
class SessionAggregates:
    """Per-class/per-phase reductions over post-warmup sessions.

    Dict key order is observable (summaries serialize to JSON): every
    mapping is keyed in *first-occurrence order* over the post-warmup
    sessions, exactly like the historical dict-building record loop.
    """

    #: Sessions per traffic-class label.
    session_counts: Dict[str, int] = field(default_factory=dict)
    #: Per-session volume (KB) lists per traffic-class label.
    volume_kb_by_class: Dict[str, List[float]] = field(default_factory=dict)
    #: Per-session waiting time (minutes) lists per traffic-class label.
    waiting_min_by_class: Dict[str, List[float]] = field(default_factory=dict)
    #: Sessions whose traffic class is an exchange class.
    exchange_sessions: int = 0
    #: All post-warmup sessions (the fraction's denominator).
    total_sessions: int = 0
    #: Volume (kbit) received by sharer / freeloader requesters.
    sharer_kbit: float = 0.0
    freeloader_kbit: float = 0.0
    #: Volume (kbit) received per population-class label (records
    #: without a label fall back to sharer/freeloader).
    kbit_by_peer_class: Dict[str, float] = field(default_factory=dict)
    #: Sessions per scenario-phase label (unlabeled sessions skipped).
    phase_counts: Dict[str, int] = field(default_factory=dict)
    #: Exchange sessions per scenario-phase label.
    phase_exchange_counts: Dict[str, int] = field(default_factory=dict)


def _concat_lists(chunks: Sequence[np.ndarray]) -> List[float]:
    """Record-order Python floats from chunk arrays.

    ``a.tolist() + b.tolist()`` equals ``np.concatenate([a, b]).tolist()``
    float for float; extending per chunk avoids a large concatenate at
    query time.
    """
    values: List[float] = []
    for chunk in chunks:
        values.extend(chunk.tolist())
    return values


class RunningSessionAggregates:
    """Left-fold of frozen session chunks into :class:`SessionAggregates`.

    One instance per streaming collector.  :meth:`fold` consumes one
    frozen chunk (a name → array mapping in schema layout) exactly once;
    :meth:`result` materializes a fresh :class:`SessionAggregates` equal
    — byte for byte — to what a full-retention collector would compute
    over the concatenation of every folded chunk.

    Scalar accumulators are carried *through* the per-chunk left-folds
    (``sum(chunk_values, accumulator)``), which preserves the reference
    fold order; value lists stay as unboxed float64 chunk slices until
    :meth:`result`.
    """

    __slots__ = (
        "_warmup",
        "_traffic_labels",
        "_labels",
        "_non_exchange_code",
        "_counts",
        "_volume_chunks",
        "_waiting_chunks",
        "_exchange",
        "_total",
        "_sharer_kbit",
        "_freeloader_kbit",
        "_kbit_by_class",
        "_phase_counts",
        "_phase_exchange",
    )

    def __init__(
        self,
        warmup: float,
        traffic_labels: Sequence[str],
        labels: List[str],
        non_exchange_code: int,
    ) -> None:
        self._warmup = warmup
        self._traffic_labels = traffic_labels
        #: Live reference to the collector's interning table (grows as
        #: new labels land; codes are stable).
        self._labels = labels
        self._non_exchange_code = non_exchange_code
        self._counts: Dict[str, int] = {}
        self._volume_chunks: Dict[str, List[np.ndarray]] = {}
        self._waiting_chunks: Dict[str, List[np.ndarray]] = {}
        self._exchange = 0
        self._total = 0
        self._sharer_kbit = 0.0
        self._freeloader_kbit = 0.0
        self._kbit_by_class: Dict[str, float] = {}
        self._phase_counts: Dict[str, int] = {}
        self._phase_exchange: Dict[str, int] = {}

    def fold(self, chunk: Mapping[str, np.ndarray]) -> None:
        """Fold one frozen chunk (schema-layout column arrays)."""
        end = chunk["end_time"]
        keep = np.flatnonzero(end >= self._warmup)
        self._total += int(keep.size)
        if keep.size == 0:
            return
        tc_codes = chunk["traffic_class"][keep]
        kbit = chunk["kbit"][keep]
        volume_kb = kbit / 8.0
        waiting_min = (chunk["start_time"][keep] - chunk["request_time"][keep]) / 60.0
        counts = self._counts
        for code in first_occurrence_codes(tc_codes):
            label = self._traffic_labels[code]
            mask = tc_codes == code
            counts[label] = counts.get(label, 0) + int(np.count_nonzero(mask))
            self._volume_chunks.setdefault(label, []).append(volume_kb[mask])
            self._waiting_chunks.setdefault(label, []).append(waiting_min[mask])
        self._exchange += int(np.count_nonzero(tc_codes != self._non_exchange_code))
        sharer = chunk["sharer"][keep]
        self._sharer_kbit = sum(kbit[sharer].tolist(), self._sharer_kbit)
        self._freeloader_kbit = sum(kbit[~sharer].tolist(), self._freeloader_kbit)
        labels = self._labels
        eff_codes = chunk["eff_class"][keep]
        kbit_by_class = self._kbit_by_class
        for code in first_occurrence_codes(eff_codes):
            label = labels[code]
            kbit_by_class[label] = sum(
                kbit[eff_codes == code].tolist(), kbit_by_class.get(label, 0.0)
            )
        phase_codes = chunk["phase"][keep]
        labeled = phase_codes != 0  # code 0 is the "" label
        exchange = tc_codes != self._non_exchange_code
        for code in first_occurrence_codes(phase_codes[labeled]):
            label = labels[code]
            mask = phase_codes == code
            self._phase_counts[label] = self._phase_counts.get(label, 0) + int(
                np.count_nonzero(mask)
            )
            self._phase_exchange[label] = self._phase_exchange.get(label, 0) + int(
                np.count_nonzero(mask & exchange)
            )

    def result(self) -> SessionAggregates:
        """A fresh, caller-owned :class:`SessionAggregates`."""
        return SessionAggregates(
            session_counts=dict(self._counts),
            volume_kb_by_class={
                label: _concat_lists(chunks)
                for label, chunks in self._volume_chunks.items()
            },
            waiting_min_by_class={
                label: _concat_lists(chunks)
                for label, chunks in self._waiting_chunks.items()
            },
            exchange_sessions=self._exchange,
            total_sessions=self._total,
            sharer_kbit=self._sharer_kbit,
            freeloader_kbit=self._freeloader_kbit,
            kbit_by_peer_class=dict(self._kbit_by_class),
            phase_counts=dict(self._phase_counts),
            phase_exchange_counts=dict(self._phase_exchange),
        )

    def nbytes(self) -> int:
        """Bytes retained by the per-class value-chunk arrays."""
        return sum(  # simlint: disable=NUM001 -- int byte tally, no float rounding
            chunk.nbytes
            for chunks in (self._volume_chunks, self._waiting_chunks)
            for per_label in chunks.values()
            for chunk in per_label
        )


class RunningDownloadTimes:
    """Left-fold of frozen download chunks into the summary's time views.

    Retains, per post-warmup download, only the download time plus the
    sharer flag and class/phase codes (as unboxed chunk arrays) — enough
    to serve ``download_times`` / ``download_times_by_class`` /
    ``download_times_by_phase`` byte-identically to full retention.
    """

    __slots__ = ("_warmup", "_times", "_sharer", "_eff", "_phase")

    def __init__(self, warmup: float) -> None:
        self._warmup = warmup
        self._times: List[np.ndarray] = []
        self._sharer: List[np.ndarray] = []
        self._eff: List[np.ndarray] = []
        self._phase: List[np.ndarray] = []

    def fold(self, chunk: Mapping[str, np.ndarray]) -> None:
        """Fold one frozen chunk (schema-layout column arrays)."""
        complete = chunk["complete_time"]
        keep = np.flatnonzero(complete >= self._warmup)
        if keep.size == 0:
            return
        self._times.append(complete[keep] - chunk["request_time"][keep])
        self._sharer.append(chunk["sharer"][keep])
        self._eff.append(chunk["eff_class"][keep])
        self._phase.append(chunk["phase"][keep])

    def _concat(self, chunks: List[np.ndarray], dtype: type) -> np.ndarray:
        if not chunks:
            return np.empty(0, dtype=dtype)
        if len(chunks) == 1:
            return chunks[0]
        return np.concatenate(chunks)

    def times(self, sharer: Optional[bool] = None) -> List[float]:
        """Download times in record order, optionally filtered by class."""
        all_times = self._concat(self._times, np.float64)
        if sharer is None:
            return all_times.tolist()
        flags = self._concat(self._sharer, np.bool_)
        values: List[float] = all_times[flags == sharer].tolist()
        return values

    def times_by_code(self, which: str) -> Dict[int, List[float]]:
        """``{code: times}`` keyed in first-occurrence order.

        ``which`` selects the grouping column: ``"eff_class"`` or
        ``"phase"`` (phase grouping skips code 0, the ``""`` label, like
        the full-retention view).
        """
        codes = self._concat(
            self._eff if which == "eff_class" else self._phase, np.int32
        )
        times = self._concat(self._times, np.float64)
        if which == "phase":
            labeled = np.flatnonzero(codes != 0)
            codes = codes[labeled]
            times = times[labeled]
        grouped: Dict[int, List[float]] = {}
        for code in first_occurrence_codes(codes):
            grouped[code] = times[codes == code].tolist()
        return grouped

    def nbytes(self) -> int:
        """Bytes retained by the download-time chunk arrays."""
        return sum(  # simlint: disable=NUM001 -- int byte tally, no float rounding
            chunk.nbytes
            for chunks in (self._times, self._sharer, self._eff, self._phase)
            for chunk in chunks
        )
