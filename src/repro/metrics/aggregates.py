"""Shared session-reduction container.

:func:`~repro.metrics.summary.summarize` used to iterate
``List[SessionRecord]`` itself; with two collector backends (object
lists and columnar arrays) the per-session reduction lives behind
``collector.session_aggregates(warmup)`` instead, and this module holds
the result shape both backends produce.

Bit-identity contract: every float in an aggregate must be built from
the same IEEE operations in the same order as the historical record
loop — elementwise ``/ 8.0`` and ``/ 60.0`` transforms, and sequential
left-fold ``sum(values, 0.0)`` accumulations — so the two backends
summarize to byte-identical JSON (pinned by the golden figure tests
and ``tests/test_collector_equivalence.py``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List


@dataclass
class SessionAggregates:
    """Per-class/per-phase reductions over post-warmup sessions.

    Dict key order is observable (summaries serialize to JSON): every
    mapping is keyed in *first-occurrence order* over the post-warmup
    sessions, exactly like the historical dict-building record loop.
    """

    #: Sessions per traffic-class label.
    session_counts: Dict[str, int] = field(default_factory=dict)
    #: Per-session volume (KB) lists per traffic-class label.
    volume_kb_by_class: Dict[str, List[float]] = field(default_factory=dict)
    #: Per-session waiting time (minutes) lists per traffic-class label.
    waiting_min_by_class: Dict[str, List[float]] = field(default_factory=dict)
    #: Sessions whose traffic class is an exchange class.
    exchange_sessions: int = 0
    #: All post-warmup sessions (the fraction's denominator).
    total_sessions: int = 0
    #: Volume (kbit) received by sharer / freeloader requesters.
    sharer_kbit: float = 0.0
    freeloader_kbit: float = 0.0
    #: Volume (kbit) received per population-class label (records
    #: without a label fall back to sharer/freeloader).
    kbit_by_peer_class: Dict[str, float] = field(default_factory=dict)
    #: Sessions per scenario-phase label (unlabeled sessions skipped).
    phase_counts: Dict[str, int] = field(default_factory=dict)
    #: Exchange sessions per scenario-phase label.
    phase_exchange_counts: Dict[str, int] = field(default_factory=dict)
