"""Object lookup oracle.

The paper deliberately abstracts object lookup ("we ignore the details
of object lookup ... our approach can work with several known search
mechanisms including broadcast in Gnutella-like networks or a DHT
query") and assumes a peer "can locate up to a certain fraction of
peers that currently have the object".

:class:`LookupService` implements exactly that contract as a global
provider index: sharing peers register the objects they store; a lookup
returns a ``coverage`` fraction of the current providers, sampled with
the caller's RNG stream so runs stay deterministic.

Two determinism notes that downstream consumers rely on:

* ``version`` counts index mutations globally; per-object counters
  (:meth:`LookupService.object_version`) do the same per provider set.
  Exchange-search gating keys off the per-object counters to prove "no
  provider set *I can see* changed since my last empty search", so
  every register/unregister must bump both.
* The two coverage regimes consume *different RNG stream shapes* on
  purpose: full coverage (``coverage >= 1.0``) permutes the candidate
  list with ``rand.shuffle``, partial coverage draws a subset with
  ``rand.sample``.  The shapes are each individually deterministic and
  are pinned by tests, but a run at ``coverage=1.0`` and a run at
  ``coverage=0.999`` are *different RNG universes* — when comparing a
  coverage sweep, compare cells against same-path baselines (the sweep
  should include an explicit ``1.0`` cell rather than extrapolating
  from ``<1.0`` cells, and vice versa).  Normalizing both paths onto
  ``rand.sample`` would silently re-seed every historical full-coverage
  result, so the asymmetry is documented and frozen instead.
"""

from __future__ import annotations

import random
from typing import Dict, List, Set

from repro.errors import LookupError_

#: Shared empty view returned for never-registered objects (read-only).
_EMPTY_PROVIDERS: Set[int] = set()


class LookupService:
    """Global index of *shared* objects → provider peer ids."""

    def __init__(self, coverage: float = 1.0) -> None:
        if not 0.0 < coverage <= 1.0:
            raise LookupError_(f"coverage must be in (0, 1], got {coverage}")
        self.coverage = coverage
        self._providers: Dict[int, Set[int]] = {}
        #: Sorted provider lists, built lazily per object and dropped on
        #: any mutation of that object's provider set.  ``find_providers``
        #: used to ``sorted()`` the live set on every call — at scale
        #: that sort dominated the lookup cost while the underlying set
        #: changed orders of magnitude less often than it was read.
        self._sorted: Dict[int, List[int]] = {}
        #: Bumped on every register/unregister (see module docstring).
        self.version = 0
        #: Per-object mutation counters (never deleted, so an object
        #: whose provider set empties and later refills keeps counting
        #: up).  Exchange-search gating keys off these instead of the
        #: global counter, so unrelated index churn — every download
        #: completion registers something somewhere — does not reopen
        #: every peer's gate.
        self._versions: Dict[int, int] = {}
        self.lookups_served = 0

    # ------------------------------------------------------------------
    # index maintenance (called by sharing peers on store/evict)
    # ------------------------------------------------------------------
    def register(self, peer_id: int, object_id: int) -> None:
        """Add ``peer_id`` as a provider of ``object_id`` (publish)."""
        self._providers.setdefault(object_id, set()).add(peer_id)
        self._sorted.pop(object_id, None)
        self.version += 1
        self._versions[object_id] = self._versions.get(object_id, 0) + 1

    def unregister(self, peer_id: int, object_id: int) -> None:
        """Withdraw one provider registration; unknown pairs raise."""
        providers = self._providers.get(object_id)
        if providers is None or peer_id not in providers:
            raise LookupError_(
                f"peer {peer_id} is not a registered provider of object {object_id}"
            )
        providers.remove(peer_id)
        if not providers:
            del self._providers[object_id]
        self._sorted.pop(object_id, None)
        self.version += 1
        self._versions[object_id] = self._versions.get(object_id, 0) + 1

    def unregister_all(self, peer_id: int, object_ids: List[int]) -> None:
        """Withdraw one peer's registrations for all ``object_ids``."""
        for object_id in object_ids:
            self.unregister(peer_id, object_id)

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def providers(self, object_id: int, exclude: int = -1) -> Set[int]:
        """The *live* provider set (complete, coverage not applied).

        Used by the exchange machinery, which the paper allows to reuse
        "the original provider list".  Always returns a fresh copy so
        callers can never mutate the index through the result, on any
        path.
        """
        live = self._providers.get(object_id)
        if not live:
            return set()
        if exclude in live:
            return live - {exclude}
        return set(live)

    def provider_view(self, object_id: int) -> Set[int]:
        """The live provider set itself — read-only by convention, no copy.

        The exchange scan reads every pending object's provider set on
        every ungated pass; copying them (:meth:`providers`) dominated
        ``open_wants`` at scale.  Callers must only *read* the result
        (set intersections, membership) and must not hold it across
        events.  Unlike :meth:`providers` the view may contain the
        calling peer itself; ring search already rejects any path
        through the searcher, so the exchange path needs no exclusion.
        """
        view = self._providers.get(object_id)
        return view if view is not None else _EMPTY_PROVIDERS

    def provider_count(self, object_id: int) -> int:
        """Number of live providers of ``object_id`` (0 if unlocatable)."""
        return len(self._providers.get(object_id, ()))

    def object_version(self, object_id: int) -> int:
        """Mutation count of one object's provider set (0 = never seen)."""
        return self._versions.get(object_id, 0)

    def object_versions(self) -> Dict[int, int]:
        """The live per-object counter map — read-only by convention.

        Exposed for hot paths that fingerprint many objects per call
        (:func:`~repro.core.exchange_manager.search_state_key` runs on
        every scan) and bind ``object_versions().get`` once instead of
        paying a method call per object.
        """
        return self._versions

    def _sorted_providers(self, object_id: int) -> List[int]:
        """Cached ascending provider list; read-only by convention."""
        cached = self._sorted.get(object_id)
        if cached is None:
            live = self._providers.get(object_id)
            if not live:
                return []
            cached = sorted(live)
            self._sorted[object_id] = cached  # simlint: disable=VER001 -- read-through cache rebuilt from the live set; register/unregister drop it and bump
        return cached

    def find_providers(
        self, object_id: int, requester_id: int, rand: random.Random
    ) -> List[int]:
        """A coverage-limited provider sample, excluding the requester.

        Models the search mechanism's partial view: with coverage c and
        n live providers, returns ceil(c*n) of them, uniformly sampled,
        in deterministic (seeded) order.  The full-coverage path uses
        ``shuffle`` and the partial path ``sample`` — see the module
        docstring for why that asymmetry is load-bearing and frozen.
        """
        self.lookups_served += 1
        base = self._sorted_providers(object_id)
        if not base:
            return []
        # A fresh list per call: the shuffle below must never touch the
        # cached sorted view, and callers may keep the result.
        candidates = [p for p in base if p != requester_id]
        if not candidates:
            return []
        if self.coverage >= 1.0:
            rand.shuffle(candidates)
            return candidates
        count = max(1, -(-len(candidates) * self.coverage // 1))
        return rand.sample(candidates, int(min(len(candidates), count)))

    def objects_indexed(self) -> int:
        """How many distinct objects currently have a provider."""
        return len(self._providers)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"LookupService(objects={len(self._providers)}, "
            f"coverage={self.coverage})"
        )
