"""Object lookup oracle.

The paper deliberately abstracts object lookup ("we ignore the details
of object lookup ... our approach can work with several known search
mechanisms including broadcast in Gnutella-like networks or a DHT
query") and assumes a peer "can locate up to a certain fraction of
peers that currently have the object".

:class:`LookupService` implements exactly that contract as a global
provider index: sharing peers register the objects they store; a lookup
returns a ``coverage`` fraction of the current providers, sampled with
the caller's RNG stream so runs stay deterministic.
"""

from __future__ import annotations

import random
from typing import Dict, List, Set

from repro.errors import LookupError_


class LookupService:
    """Global index of *shared* objects → provider peer ids."""

    def __init__(self, coverage: float = 1.0) -> None:
        if not 0.0 < coverage <= 1.0:
            raise LookupError_(f"coverage must be in (0, 1], got {coverage}")
        self.coverage = coverage
        self._providers: Dict[int, Set[int]] = {}
        self.lookups_served = 0

    # ------------------------------------------------------------------
    # index maintenance (called by sharing peers on store/evict)
    # ------------------------------------------------------------------
    def register(self, peer_id: int, object_id: int) -> None:
        self._providers.setdefault(object_id, set()).add(peer_id)

    def unregister(self, peer_id: int, object_id: int) -> None:
        providers = self._providers.get(object_id)
        if providers is None or peer_id not in providers:
            raise LookupError_(
                f"peer {peer_id} is not a registered provider of object {object_id}"
            )
        providers.remove(peer_id)
        if not providers:
            del self._providers[object_id]

    def unregister_all(self, peer_id: int, object_ids: List[int]) -> None:
        for object_id in object_ids:
            self.unregister(peer_id, object_id)

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def providers(self, object_id: int, exclude: int = -1) -> Set[int]:
        """The *live* provider set (complete, coverage not applied).

        Used by the exchange machinery, which the paper allows to reuse
        "the original provider list".  Always returns a fresh copy so
        callers can never mutate the index through the result, on any
        path.
        """
        live = self._providers.get(object_id)
        if not live:
            return set()
        if exclude in live:
            return live - {exclude}
        return set(live)

    def provider_count(self, object_id: int) -> int:
        return len(self._providers.get(object_id, ()))

    def find_providers(
        self, object_id: int, requester_id: int, rand: random.Random
    ) -> List[int]:
        """A coverage-limited provider sample, excluding the requester.

        Models the search mechanism's partial view: with coverage c and
        n live providers, returns ceil(c*n) of them, uniformly sampled,
        in deterministic (seeded) order.
        """
        self.lookups_served += 1
        live = self._providers.get(object_id)
        if not live:
            return []
        candidates = sorted(live - {requester_id})
        if not candidates:
            return []
        if self.coverage >= 1.0:
            rand.shuffle(candidates)
            return candidates
        count = max(1, -(-len(candidates) * self.coverage // 1))
        return rand.sample(candidates, int(min(len(candidates), count)))

    def objects_indexed(self) -> int:
        return len(self._providers)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"LookupService(objects={len(self._providers)}, "
            f"coverage={self.coverage})"
        )
