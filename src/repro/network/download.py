"""Per-object download state with distinct block assignment.

A peer downloads "different parts of the same object concurrently from
multiple sources" (§III).  :class:`DownloadState` is the requester-side
ledger for one pending object: how many blocks remain unassigned, which
transfers are feeding it, and which providers currently hold a queued
request for it.

Block assignment is exclusive: a transfer takes a block from the
unassigned pool before carrying it and returns it if cancelled
mid-flight, so no byte is ever fetched twice and completion is exact.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, Optional, Set

from repro.errors import ProtocolError

if TYPE_CHECKING:  # pragma: no cover - hints only
    from repro.content.catalog import ContentObject
    from repro.network.transfer import Transfer


class DownloadState:
    """Requester-side ledger for one pending object download."""

    __slots__ = (
        "peer_id",
        "object",
        "request_time",
        "total_blocks",
        "delivered_blocks",
        "unassigned_blocks",
        "completed",
        "transfers",
        "exchange_sources",
        "registered_at",
        "known_providers",
        "lookup_failures",
        "epoch",
    )

    def __init__(
        self,
        peer_id: int,
        obj: "ContentObject",
        request_time: float,
        total_blocks: int,
    ) -> None:
        if total_blocks <= 0:
            raise ProtocolError(
                f"download of object {obj.object_id} needs >= 1 block, got {total_blocks}"
            )
        self.peer_id = peer_id
        self.object = obj
        self.request_time = request_time
        self.total_blocks = total_blocks
        self.delivered_blocks = 0
        self.unassigned_blocks = total_blocks
        self.completed = False
        #: Active transfers feeding this download, keyed by provider id.
        self.transfers: Dict[int, "Transfer"] = {}
        #: How many of those are exchange transfers (kept in sync by
        #: attach/detach and by ring downgrades via
        #: :meth:`note_exchange_downgrade`) — ``has_exchange_transfer``
        #: sits on the exchange-search hot path and must not scan.
        self.exchange_sources = 0
        #: Providers holding a live request entry (queued or being served).
        self.registered_at: Set[int] = set()
        #: Providers known from lookup (refreshed opportunistically).
        self.known_providers: Set[int] = set()
        #: Consecutive starved re-lookups that found no provider.
        self.lookup_failures = 0
        #: Bumped on every state change an exchange search can observe
        #: (block ledger moves, transfer attach/detach).  The peer's
        #: idle-search gate fingerprints its pending downloads with
        #: these, so an unchanged epoch set proves the search inputs
        #: did not move.
        self.epoch = 0

    # ------------------------------------------------------------------
    # block ledger
    # ------------------------------------------------------------------
    @property
    def in_flight_blocks(self) -> int:
        """Blocks currently assigned to a transfer but not yet delivered."""
        return self.total_blocks - self.delivered_blocks - self.unassigned_blocks

    @property
    def remaining_blocks(self) -> int:
        """Blocks still missing (in flight or unassigned)."""
        return self.total_blocks - self.delivered_blocks

    def take_block(self) -> bool:
        """Reserve one unassigned block for a transfer; False when none left."""
        if self.unassigned_blocks <= 0:
            return False
        self.unassigned_blocks -= 1
        self.epoch += 1
        return True

    def return_block(self) -> None:
        """Return a reserved, undelivered block (transfer cancelled)."""
        if self.in_flight_blocks <= 0:
            raise ProtocolError(
                f"object {self.object.object_id}: return_block with none in flight"
            )
        self.unassigned_blocks += 1
        self.epoch += 1

    def deliver_block(self) -> bool:
        """Record one delivered block; returns True when the object is done."""
        if self.completed:
            raise ProtocolError(
                f"object {self.object.object_id}: block delivered after completion"
            )
        if self.in_flight_blocks <= 0:
            raise ProtocolError(
                f"object {self.object.object_id}: delivery with no block in flight"
            )
        self.delivered_blocks += 1
        self.epoch += 1
        if self.delivered_blocks >= self.total_blocks:
            self.completed = True
        return self.completed

    # ------------------------------------------------------------------
    # transfer bookkeeping
    # ------------------------------------------------------------------
    def attach_transfer(self, transfer: "Transfer") -> None:
        """Register a serving transfer (one per provider, enforced)."""
        provider_id = transfer.provider.peer_id
        if provider_id in self.transfers:
            raise ProtocolError(
                f"provider {provider_id} already serving object "
                f"{self.object.object_id} to peer {self.peer_id}"
            )
        self.transfers[provider_id] = transfer
        if transfer.is_exchange:
            self.exchange_sources += 1
        self.epoch += 1

    def detach_transfer(self, transfer: "Transfer") -> None:
        """Remove a previously attached transfer (termination path)."""
        provider_id = transfer.provider.peer_id
        if self.transfers.get(provider_id) is not transfer:
            raise ProtocolError(
                f"detach of unknown transfer from provider {provider_id} "
                f"for object {self.object.object_id}"
            )
        del self.transfers[provider_id]
        if transfer.is_exchange:
            self.exchange_sources -= 1
        self.epoch += 1

    def note_exchange_downgrade(self) -> None:
        """An attached exchange transfer became a normal one."""
        if self.exchange_sources <= 0:
            raise ProtocolError(
                f"object {self.object.object_id}: downgrade with no "
                "exchange transfer attached"
            )
        self.exchange_sources -= 1
        self.epoch += 1

    def transfer_from(self, provider_id: int) -> Optional["Transfer"]:
        """The transfer served by ``provider_id``, or None."""
        return self.transfers.get(provider_id)

    @property
    def has_exchange_transfer(self) -> bool:
        """Whether an exchange already serves this request.

        The paper allows only one exchange per registered request ("if
        multiple exchanges are possible ... only one can be chosen").
        """
        return self.exchange_sources > 0

    @property
    def active_sources(self) -> int:
        """How many providers currently serve this download."""
        return len(self.transfers)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"DownloadState(peer={self.peer_id}, obj={self.object.object_id}, "
            f"{self.delivered_blocks}/{self.total_blocks} blocks, "
            f"sources={len(self.transfers)})"
        )
