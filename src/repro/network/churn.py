"""Peer churn: alternating online/offline sessions (extension).

The paper's simulation keeps all 200 peers online; disconnection only
appears as a *reason* rings break ("some peers may have gone offline,
or crashed") and as the §V observation that "transient peer
participation" stresses credit systems.  This extension adds an
explicit on/off session model so those paths are exercised.

The actual teardown/rejoin logic lives on the peer itself —
:meth:`~repro.network.peer.Peer.disconnect` /
:meth:`~repro.network.peer.Peer.reconnect` — so churn round-trips and
the scenario layer's *permanent* departures share one audited path.

Enable via ``SimulationConfig(churn_enabled=True, ...)``; session and
downtime durations are exponential with the configured means, drawn
from a dedicated RNG stream so runs stay deterministic.
"""

from __future__ import annotations

import random
from typing import TYPE_CHECKING, List

from repro.errors import ConfigError

if TYPE_CHECKING:  # pragma: no cover - hints only
    from repro.context import SimContext
    from repro.network.peer import Peer


class ChurnModel:
    """Drives alternating exponential on/off sessions for a set of peers."""

    def __init__(
        self,
        ctx: "SimContext",
        peers: List["Peer"],
        mean_online: float,
        mean_offline: float,
        rand: random.Random,
    ) -> None:
        if mean_online <= 0 or mean_offline <= 0:
            raise ConfigError(
                f"churn means must be positive, got {mean_online}/{mean_offline}"
            )
        self._ctx = ctx
        self._mean_online = mean_online
        self._mean_offline = mean_offline
        self._rand = rand
        self.transitions = 0
        for peer in peers:
            self._schedule_offline(peer)

    def enroll(self, peer: "Peer") -> None:
        """Start driving a peer that joined mid-run (scenario arrivals)."""
        self._schedule_offline(peer)

    def _schedule_offline(self, peer: "Peer") -> None:
        delay = self._rand.expovariate(1.0 / self._mean_online)
        self._ctx.engine.schedule(
            delay, lambda p=peer: self._go_offline(p), name=f"churn.off.p{peer.peer_id}"
        )

    def _schedule_online(self, peer: "Peer") -> None:
        delay = self._rand.expovariate(1.0 / self._mean_offline)
        self._ctx.engine.schedule(
            delay, lambda p=peer: self._go_online(p), name=f"churn.on.p{peer.peer_id}"
        )

    def _go_offline(self, peer: "Peer") -> None:
        if peer.departed:
            return  # permanently gone: stop driving this peer
        self.transitions += 1
        peer.disconnect()
        self._schedule_online(peer)

    def _go_online(self, peer: "Peer") -> None:
        if peer.departed:
            return
        self.transitions += 1
        peer.reconnect()
        self._schedule_offline(peer)
