"""Peer churn: alternating online/offline sessions (extension).

The paper's simulation keeps all 200 peers online; disconnection only
appears as a *reason* rings break ("some peers may have gone offline,
or crashed") and as the §V observation that "transient peer
participation" stresses credit systems.  This extension adds an
explicit on/off session model so those paths are exercised: going
offline terminates every transfer the peer touches (reason
``PEER_OFFLINE``), withdraws its requests and unpublishes its store;
coming back re-publishes and rejoins the workload.

Enable via ``SimulationConfig(churn_enabled=True, ...)``; session and
downtime durations are exponential with the configured means, drawn
from the peer's own RNG stream so runs stay deterministic.
"""

from __future__ import annotations

import random
from typing import TYPE_CHECKING, List

from repro.errors import ConfigError
from repro.metrics.records import TerminationReason

if TYPE_CHECKING:  # pragma: no cover - hints only
    from repro.context import SimContext
    from repro.network.peer import Peer


def take_peer_offline(peer: "Peer") -> None:
    """Disconnect: kill transfers, withdraw requests, drain the IRQ,
    unpublish, and park the periodic processes."""
    if not peer.online:
        return
    ctx = peer.ctx
    # Uploads first: our departure breaks any ring we serve in.  The
    # PEER_OFFLINE terminations also withdraw the served entries from
    # our IRQ and from their requesters' registration sets.
    for transfer in peer.active_uploads():
        transfer.terminate(TerminationReason.PEER_OFFLINE)
    # Downloads: both the transfers and the queued registrations.
    for download in list(peer.pending.values()):
        for transfer in list(download.transfers.values()):
            transfer.terminate(TerminationReason.PEER_OFFLINE, requeue=False)
        for provider_id in list(download.registered_at):
            ctx.peer(provider_id).irq.remove(peer.peer_id, download.object.object_id)
        download.registered_at.clear()
    # Drain the *queued* entries other peers registered with us.  An
    # entry left behind would keep us in its requester's
    # ``registered_at`` for the whole offline session, and a download
    # that looks engaged is never re-looked-up — the requester would
    # stall on a dead registration even with live alternative
    # providers in the index.
    for entry in list(peer.irq.active_entries()):
        peer.irq.remove(entry.requester_id, entry.object_id)
        requester = ctx.peer(entry.requester_id)
        download = requester.pending.get(entry.object_id)
        if download is not None:
            download.registered_at.discard(peer.peer_id)
        requester.schedule_pass()
    if peer.behavior.shares:
        for object_id in peer.store.object_ids():
            ctx.lookup.unregister(peer.peer_id, object_id)
    peer.online = False
    peer.suspend_periodic()
    ctx.metrics.count("churn.offline")


def bring_peer_online(peer: "Peer") -> None:
    """Reconnect: re-publish the store and resume the workload."""
    if peer.online:
        return
    ctx = peer.ctx
    peer.online = True
    if peer.behavior.shares:
        for object_id in peer.store.object_ids():
            ctx.lookup.register(peer.peer_id, object_id)
    peer.resume_periodic()
    ctx.metrics.count("churn.online")
    # Pending downloads re-register at providers on the next scan; kick
    # one immediately so short sessions still make progress.
    peer.scan()


class ChurnModel:
    """Drives alternating exponential on/off sessions for a set of peers."""

    def __init__(
        self,
        ctx: "SimContext",
        peers: List["Peer"],
        mean_online: float,
        mean_offline: float,
        rand: random.Random,
    ) -> None:
        if mean_online <= 0 or mean_offline <= 0:
            raise ConfigError(
                f"churn means must be positive, got {mean_online}/{mean_offline}"
            )
        self._ctx = ctx
        self._mean_online = mean_online
        self._mean_offline = mean_offline
        self._rand = rand
        self.transitions = 0
        for peer in peers:
            self._schedule_offline(peer)

    def _schedule_offline(self, peer: "Peer") -> None:
        delay = self._rand.expovariate(1.0 / self._mean_online)
        self._ctx.engine.schedule(
            delay, lambda p=peer: self._go_offline(p), name=f"churn.off.p{peer.peer_id}"
        )

    def _schedule_online(self, peer: "Peer") -> None:
        delay = self._rand.expovariate(1.0 / self._mean_offline)
        self._ctx.engine.schedule(
            delay, lambda p=peer: self._go_online(p), name=f"churn.on.p{peer.peer_id}"
        )

    def _go_offline(self, peer: "Peer") -> None:
        self.transitions += 1
        take_peer_offline(peer)
        self._schedule_online(peer)

    def _go_online(self, peer: "Peer") -> None:
        self.transitions += 1
        bring_peer_online(peer)
        self._schedule_offline(peer)
