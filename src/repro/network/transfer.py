"""Block-level transfer sessions.

A :class:`Transfer` is one provider→requester session moving one object
at exactly one slot rate (paper §III: equal fixed-size slots regardless
of transfer type, one fixed-size block at a time).  Transfers are either
*exchange* transfers (belonging to an :class:`~repro.core.ring.ExchangeRing`)
or *normal* transfers, which run only on spare slots and are preempted
the moment an exchange needs the slot.

Lifecycle::

    start() -> [block events...] -> terminate(reason)

``terminate`` is idempotent, releases both slot-pool sides, returns any
in-flight block to the download's unassigned pool, records the session
and notifies the ring (if any), which may cascade into sibling
terminations (ring break) — the cascade is safe because each transfer
guards on its own state.
"""

from __future__ import annotations

import enum
from typing import TYPE_CHECKING, Optional

from repro.errors import ProtocolError
from repro.metrics.records import TerminationReason, TrafficClass

if TYPE_CHECKING:  # pragma: no cover - hints only
    from repro.context import SimContext
    from repro.core.ring import ExchangeRing
    from repro.network.download import DownloadState
    from repro.network.peer import Peer


class TransferState(enum.Enum):
    """Lifecycle of a transfer: created -> active -> terminated."""
    CREATED = "created"
    ACTIVE = "active"
    TERMINATED = "terminated"


class Transfer:
    """One provider→requester session at one slot rate."""

    __slots__ = (
        "_ctx",
        "provider",
        "requester",
        "download",
        "object",
        "ring",
        "ring_size",
        "ring_id",
        "state",
        "session_start",
        "session_blocks",
        "total_blocks_delivered",
        "entry",
        "_block_event",
        "_block_in_flight",
        "_pinned",
        "last_reason",
    )

    def __init__(
        self,
        ctx: "SimContext",
        provider: "Peer",
        requester: "Peer",
        download: "DownloadState",
        ring: Optional["ExchangeRing"] = None,
    ) -> None:
        self._ctx = ctx
        self.provider = provider
        self.requester = requester
        self.download = download
        self.object = download.object
        self.ring = ring
        self.ring_size = ring.size if ring is not None else 0
        self.ring_id = ring.ring_id if ring is not None else None
        self.state = TransferState.CREATED
        self.session_start = 0.0
        self.session_blocks = 0  # blocks delivered within the current session
        self.total_blocks_delivered = 0
        self.entry = None  # the IRQ entry this transfer satisfies (if any)
        self._block_event = None
        self._block_in_flight = False
        self._pinned = False
        self.last_reason: Optional[TerminationReason] = None

    def bind_entry(self, entry) -> None:
        """Attach the IRQ entry this transfer serves (stays registered)."""
        if entry.transfer is not None:
            raise ProtocolError(f"entry {entry!r} already attached to a transfer")
        entry.transfer = self
        self.entry = entry
        self.provider.irq.note_binding_change()

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    @property
    def is_exchange(self) -> bool:
        """Whether this session belongs to an exchange ring."""
        return self.ring is not None

    @property
    def active(self) -> bool:
        """Whether the session is currently moving blocks."""
        return self.state is TransferState.ACTIVE

    @property
    def traffic_class(self) -> TrafficClass:
        """The session's :class:`TrafficClass` (by ring size)."""
        return TrafficClass.for_ring_size(self.ring_size)

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def start(self) -> None:
        """Acquire both slot sides and begin moving blocks.

        Callers (the scheduler / ring commit) are responsible for having
        verified capacity; a :class:`CapacityError` here is a simulator
        bug, not a model outcome.
        """
        if self.state is not TransferState.CREATED:
            raise ProtocolError(f"start() on transfer in state {self.state}")
        self.provider.upload_pool.acquire()
        self.requester.download_pool.acquire()
        self.state = TransferState.ACTIVE
        self.session_start = self._ctx.now
        self.provider.register_upload(self)
        self.download.attach_transfer(self)
        if self.is_exchange and self.object.object_id in self.provider.store:
            # Paper §IV-A: "A peer postpones removing an object if it is
            # used in an ongoing exchange" — pin for the session.  Under
            # the partial-serving extension the provider may instead be
            # feeding from an in-progress download, which lives outside
            # the store and cannot be evicted in the first place.
            self.provider.store.pin(self.object.object_id)
            self._pinned = True
        self._begin_next_block()

    def _begin_next_block(self) -> None:
        if not self.active:
            return
        if self.total_blocks_delivered >= self.provider.available_blocks(
            self.object.object_id
        ):
            # The provider has no further blocks to offer this session —
            # only reachable under the partial-serving extension (a full
            # copy always covers the whole object).
            self.terminate(TerminationReason.EXHAUSTED)
            return
        if not self.download.take_block():
            self.terminate(TerminationReason.EXHAUSTED)
            return
        self._block_in_flight = True
        block_seconds = self._ctx.config.block_seconds
        self._block_event = self._ctx.engine.schedule(
            block_seconds, self._on_block_delivered, name="block"
        )

    def _on_block_delivered(self) -> None:
        if not self.active:  # terminated while the event was queued
            return
        self._block_in_flight = False
        self._block_event = None
        self.session_blocks += 1
        self.total_blocks_delivered += 1
        block_kbit = self._ctx.config.block_size_kbit
        self.requester.credit.record_received(self.provider.peer_id, block_kbit)
        self.provider.credit.record_served(self.requester.peer_id, block_kbit)
        self.provider.participation.record_uploaded(block_kbit)
        self.requester.participation.record_downloaded(block_kbit)
        completed = self.download.deliver_block()
        if completed:
            requester = self.requester
            download = self.download
            self.terminate(TerminationReason.COMPLETED)
            requester.on_download_complete(download)
            return
        self._begin_next_block()

    def terminate(self, reason: TerminationReason, requeue: bool = True) -> None:
        """End the session; idempotent.

        ``requeue=False`` suppresses re-registering the request at the
        provider (used when the same edge is immediately replaced by an
        exchange transfer).
        """
        if self.state is TransferState.TERMINATED:
            return
        if self.state is TransferState.CREATED:
            # Never started: nothing to release or record.
            self.state = TransferState.TERMINATED
            self.last_reason = reason
            return
        self.state = TransferState.TERMINATED
        self.last_reason = reason
        if self._block_event is not None:
            self._block_event.cancel()
            self._block_event = None
        if self._block_in_flight:
            self._block_in_flight = False
            self.download.return_block()
        self.provider.upload_pool.release()
        self.requester.download_pool.release()
        self.provider.unregister_upload(self)
        self.download.detach_transfer(self)
        if self._pinned:
            self.provider.store.unpin(self.object.object_id)
            self._pinned = False
        self._record_session(reason)
        self._release_entry(reason, requeue)
        ring = self.ring
        self.ring = None
        if ring is not None:
            ring.on_transfer_terminated(self, reason)
        if (
            requeue
            and self.entry is None
            and not self.download.completed
            and reason
            in (TerminationReason.PREEMPTED, TerminationReason.RING_BROKEN)
        ):
            # Ring closing edges have no registered entry; re-register so
            # the provider can serve the request again later.
            self.requester.requeue_request(self.provider, self.download)
        self.entry = None
        self.provider.schedule_pass()
        self.requester.schedule_pass()

    #: Termination reasons after which the request entry is withdrawn
    #: from the provider's queue rather than returned to it.
    _ENTRY_ENDING_REASONS = (
        TerminationReason.COMPLETED,
        TerminationReason.REQUESTER_CANCELLED,
        TerminationReason.SOURCE_DELETED,
        TerminationReason.PEER_OFFLINE,
        TerminationReason.STOPPED_SHARING,
        TerminationReason.CHEAT_DETECTED,
    )

    def _release_entry(self, reason: TerminationReason, requeue: bool) -> None:
        entry = self.entry
        if entry is None:
            return
        if entry.transfer is self:
            entry.transfer = None
            self.provider.irq.note_binding_change()
        if not entry.active:
            self.entry = None
            return
        if self.download.completed or not requeue or reason in self._ENTRY_ENDING_REASONS:
            self.provider.irq.remove(entry.requester_id, entry.object_id)
            self.download.registered_at.discard(self.provider.peer_id)
            self.entry = None
        # Otherwise (preempted / ring broken / exhausted) the entry stays
        # queued at its original arrival position — the paper's peers
        # re-issue the request and wait again.

    def downgrade_to_normal(self) -> None:
        """Ring-break "downgrade" policy: keep moving blocks, lose priority.

        The exchange session is closed for the record books and a fresh
        non-exchange session begins at the current instant, preserving
        the in-flight block and both slots.
        """
        if not self.active:
            return
        if not self.is_exchange:
            raise ProtocolError("downgrade_to_normal() on a non-exchange transfer")
        self._record_session(TerminationReason.RING_BROKEN)
        self.ring = None
        self.ring_size = 0
        self.ring_id = None
        # The downgrade flips this transfer's is_exchange, which both
        # the requester's open-wants view and the provider's usable-edge
        # filters observe — sync the counter and nudge both trackers.
        self.download.note_exchange_downgrade()
        if self.entry is not None:
            self.provider.irq.note_binding_change()
        self.session_start = self._ctx.now
        self.session_blocks = 0
        self.provider.note_upload_downgraded()
        if self._pinned:
            self.provider.store.unpin(self.object.object_id)
            self._pinned = False

    # ------------------------------------------------------------------
    def _record_session(self, reason: TerminationReason) -> None:
        kbit = self.session_blocks * self._ctx.config.block_size_kbit
        # Scalar API: the columnar backend stores these directly without
        # materializing a SessionRecord per session.
        self._ctx.metrics.add_session(
            provider_id=self.provider.peer_id,
            requester_id=self.requester.peer_id,
            object_id=self.object.object_id,
            traffic_class=self.traffic_class,
            ring_size=self.ring_size,
            ring_id=self.ring_id,
            request_time=self.download.request_time,
            start_time=self.session_start,
            end_time=self._ctx.now,
            kbit_transferred=kbit,
            reason=reason,
            requester_is_sharer=self.requester.behavior.shares,
            requester_class=self.requester.class_name,
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        kind = f"ring{self.ring_size}" if self.ring_size else "normal"
        return (
            f"Transfer({self.provider.peer_id}->{self.requester.peer_id}, "
            f"obj={self.object.object_id}, {kind}, {self.state.value})"
        )
