"""Network substrate: peers, link capacity, transfers, lookup."""

from repro.network.behaviors import FREELOADER, SHARER, PeerBehavior
from repro.network.capacity import SlotPool
from repro.network.download import DownloadState
from repro.network.lookup import LookupService
from repro.network.peer import Peer
from repro.network.transfer import Transfer

__all__ = [
    "FREELOADER",
    "SHARER",
    "DownloadState",
    "LookupService",
    "Peer",
    "PeerBehavior",
    "SlotPool",
    "Transfer",
]
