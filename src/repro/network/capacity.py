"""Slot-based link capacity.

The paper manages the upload link in "relatively large, equal,
fixed-size" slots (Table II: 10 kbit/s slots on an 80 kbit/s uplink and
an 800 kbit/s downlink).  Every transfer occupies exactly one slot on
each side for its whole life, so capacity bookkeeping reduces to a
counting semaphore — but one that *raises* on misuse instead of silently
saturating, because a slot leak is a simulator bug that must surface.
"""

from __future__ import annotations

from repro.errors import CapacityError


class SlotPool:
    """A fixed number of equal-rate transfer slots."""

    __slots__ = ("slot_kbit", "total", "in_use")

    def __init__(self, capacity_kbit: float, slot_kbit: float) -> None:
        if slot_kbit <= 0:
            raise CapacityError(f"slot rate must be positive, got {slot_kbit}")
        if capacity_kbit < slot_kbit:
            raise CapacityError(
                f"capacity {capacity_kbit} kbit/s below one slot ({slot_kbit} kbit/s)"
            )
        self.slot_kbit = slot_kbit
        self.total = int(capacity_kbit // slot_kbit)
        self.in_use = 0

    @property
    def free(self) -> int:
        """Slots currently available (0 while over-subscribed)."""
        # Branch instead of max(): this property is probed millions of
        # times per run (every veto / serve pass), and the builtin call
        # is measurable at 50k peers.
        spare = self.total - self.in_use
        return spare if spare > 0 else 0

    @property
    def full(self) -> bool:
        """Whether no further slot can be acquired."""
        return self.in_use >= self.total

    def acquire(self) -> None:
        """Take one slot; raises :class:`CapacityError` when full."""
        if self.in_use >= self.total:
            raise CapacityError(f"no free slots ({self.in_use}/{self.total} in use)")
        self.in_use += 1

    def try_acquire(self) -> bool:
        """Take one slot if available; returns whether it succeeded."""
        if self.in_use >= self.total:
            return False
        self.in_use += 1
        return True

    def release(self) -> None:
        """Return one slot; releasing an idle pool is a bookkeeping bug."""
        if self.in_use <= 0:
            raise CapacityError("release() on an empty slot pool")
        self.in_use -= 1

    def resize(self, capacity_kbit: float) -> None:
        """Re-provision the pool mid-run (scenario capacity changes).

        Slots already in use are never revoked: shrinking below
        ``in_use`` leaves the pool over-subscribed — no new slot is
        handed out until enough running transfers finish — rather than
        killing transfers, which matches an access-link re-provision
        (existing flows drain, new ones queue).
        """
        if capacity_kbit < self.slot_kbit:
            raise CapacityError(
                f"capacity {capacity_kbit} kbit/s below one slot "
                f"({self.slot_kbit} kbit/s)"
            )
        self.total = int(capacity_kbit // self.slot_kbit)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"SlotPool({self.in_use}/{self.total} x {self.slot_kbit} kbit/s)"
