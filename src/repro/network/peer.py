"""The peer node model.

A :class:`Peer` owns one object store, one IRQ, one upload and one
download slot pool, and the set of its pending downloads.  Its event
handlers wire the workload (issue requests on completion), the exchange
machinery (search/commit on every scheduling pass) and the FIFO
fallback scheduler together.

Scheduling passes are *deferred and coalesced*: mutations (a new IRQ
entry, a freed slot) call :meth:`Peer.schedule_pass`, which enqueues a
zero-delay event.  All ring formation and normal service then happens
inside that event, never re-entrantly inside another peer's mutation —
this is what makes the token pass's validate-then-commit sequence
atomic.
"""

from __future__ import annotations

import math
from typing import TYPE_CHECKING, Dict, List, Optional, Tuple

from repro.content.storage import ObjectStore
from repro.content.workload import RequestGenerator
from repro.core import exchange_manager, scheduler
from repro.core.disciplines import ServiceDiscipline, make_discipline
from repro.core.irq import IncomingRequestQueue, RequestEntry
from repro.core.policies import ExchangePolicy
from repro.core.request_tree import build_snapshot
from repro.errors import ProtocolError
from repro.metrics.records import TerminationReason
from repro.network.behaviors import FREELOADER, SHARER, PeerBehavior
from repro.network.capacity import SlotPool
from repro.network.download import DownloadState

if TYPE_CHECKING:  # pragma: no cover - hints only
    from repro.content.catalog import ContentObject
    from repro.content.interests import InterestProfile
    from repro.context import SimContext
    from repro.network.transfer import Transfer
    from repro.sim.processes import PeriodicProcess


class Peer:
    """One participant of the file-sharing network."""

    # 50k-peer runs hold every Peer alive for the whole simulation, so
    # the per-instance ``__dict__`` (~100 bytes each plus hash-table
    # slack) is pure overhead — the attribute set is fixed at __init__.
    __slots__ = (
        "ctx",
        "peer_id",
        "behavior",
        "policy",
        "profile",
        "store",
        "class_name",
        "online",
        "departed",
        "upload_capacity_kbit",
        "download_capacity_kbit",
        "upload_pool",
        "download_pool",
        "irq",
        "pending",
        "workload",
        "_uploads",
        "_exchange_uploads",
        "_pass_scheduled",
        "idle_search_key",
        "periodic_processes",
        "_snapshot_cache",
        "_last_tree_refresh",
        "_push_complete_version",
        "_workload_stalled_until",
        "_rand",
        "discipline",
    )

    def __init__(
        self,
        ctx: "SimContext",
        peer_id: int,
        behavior: PeerBehavior,
        policy: ExchangePolicy,
        profile: "InterestProfile",
        store: ObjectStore,
        *,
        upload_capacity_kbit: Optional[float] = None,
        download_capacity_kbit: Optional[float] = None,
        discipline: Optional[ServiceDiscipline] = None,
        class_name: Optional[str] = None,
    ) -> None:
        config = ctx.config
        self.ctx = ctx
        self.peer_id = peer_id
        self.behavior = behavior
        self.policy = policy
        self.profile = profile
        self.store = store
        #: Population-class label threaded into the metrics records;
        #: defaults to the behaviour name for hand-built peers.
        self.class_name = class_name if class_name is not None else behavior.name
        self.online = True
        #: Permanently departed (scenario timelines): the teardown ran
        #: once and :meth:`reconnect` refuses forever after.
        self.departed = False
        # Link capacities are per peer: a class spec may give this peer a
        # broadband uplink while its neighbour runs on a modem.  ``None``
        # inherits the global config values.
        if upload_capacity_kbit is None:
            upload_capacity_kbit = config.upload_capacity_kbit
        if download_capacity_kbit is None:
            download_capacity_kbit = config.download_capacity_kbit
        self.upload_capacity_kbit = upload_capacity_kbit
        self.download_capacity_kbit = download_capacity_kbit
        self.upload_pool = SlotPool(upload_capacity_kbit, config.slot_kbit)
        self.download_pool = SlotPool(download_capacity_kbit, config.slot_kbit)
        self.irq = IncomingRequestQueue(config.irq_capacity, counters=ctx.counters)
        self.pending: Dict[int, DownloadState] = {}
        self.workload: Optional[RequestGenerator] = None  # set by attach_workload
        self._uploads: Dict[Tuple[int, int], "Transfer"] = {}
        self._exchange_uploads = 0
        self._pass_scheduled = False
        #: Change-tracking key of the last unrestricted ring search that
        #: found no candidates (see exchange_manager.search_state_key);
        #: None whenever a re-search could find something new.
        self.idle_search_key: Optional[tuple] = None
        #: This peer's periodic scan/storage processes, attached by the
        #: simulation assembly so churn can pause them while offline.
        self.periodic_processes: List["PeriodicProcess"] = []
        self._snapshot_cache: Optional[Tuple[int, object]] = None
        self._last_tree_refresh = -math.inf
        #: IRQ version whose snapshot a *completed* refresh pass pushed
        #: to every live registered entry; None when some entry could
        #: not be refreshed (exchange-attached) or was never covered.
        self._push_complete_version: Optional[int] = None
        self._workload_stalled_until = -math.inf
        self._rand = ctx.rng.stream(f"peer{peer_id}")
        # The service discipline owns the baseline-mechanism state
        # (credit ledger, participation reporter) and the queue ordering.
        if discipline is None:
            discipline = make_discipline(
                config.scheduler_mode,
                peer_id,
                shares=behavior.shares,
                fake_participation=config.freeloaders_fake_participation,
            )
        self.discipline = discipline
        # Mirror the scan-relevant slice into the columnar peer table;
        # every later mutation point below pushes its own update.
        ctx.peer_table.register(
            peer_id,
            online=True,
            shares=behavior.shares,
            enables_exchanges=policy.enables_exchanges,
            max_ring=policy.max_ring,
            class_name=self.class_name,
        )

    # ------------------------------------------------------------------
    # identity & capability
    # ------------------------------------------------------------------
    @property
    def shares(self) -> bool:
        """Whether this peer currently serves content."""
        return self.behavior.shares and self.online

    @property
    def credit(self):
        """The discipline-owned eMule credit ledger (always maintained)."""
        return self.discipline.credit

    @property
    def participation(self):
        """The discipline-owned KaZaA participation reporter."""
        return self.discipline.participation

    @property
    def exchange_upload_count(self) -> int:
        """Active uploads currently running at exchange priority."""
        return self._exchange_uploads

    def active_uploads(self) -> List["Transfer"]:
        """Snapshot list of this peer's running upload transfers."""
        return list(self._uploads.values())

    def available_blocks(self, object_id: int) -> int:
        """How many blocks of the object this peer can currently serve.

        A fully stored object serves all its blocks.  Under the
        ``serve_partial`` extension (paper §V), an in-progress download
        serves the blocks received so far.  Otherwise zero.
        """
        if object_id in self.store:
            # Inlined blocks_for_object: this sits on the token-veto /
            # serve hot path, and the extra bound-method hop is
            # measurable at 50k peers.
            return self.ctx.blocks_for(object_id)
        if self.ctx.config.serve_partial:
            download = self.pending.get(object_id)
            if download is not None:
                return download.delivered_blocks
        return 0

    def can_serve(self, object_id: int) -> bool:
        """Whether any block of the object is currently servable.

        Exactly ``available_blocks(object_id) > 0``, minus the block
        count lookup: a stored object always serves at least one block
        (``ctx.blocks_for`` floors at 1), so the token-veto and serve
        hot paths only need the store membership test.
        """
        if object_id in self.store:
            return True
        if self.ctx.config.serve_partial:
            download = self.pending.get(object_id)
            if download is not None:
                return download.delivered_blocks > 0
        return False

    def blocks_for_object(self, object_id: int) -> int:
        """Total blocks of one object (memoized on the context)."""
        return self.ctx.blocks_for(object_id)

    # ------------------------------------------------------------------
    # workload
    # ------------------------------------------------------------------
    def attach_workload(self, workload: RequestGenerator) -> None:
        """Wire the request generator that feeds ``fill_pending``."""
        self.workload = workload

    def fill_pending(self) -> int:
        """Issue new requests until ``max_pending`` is reached.

        A peer whose interest categories currently offer no requestable
        object backs off for ``workload_retry_interval`` instead of
        redrawing hundreds of candidates on every scan.
        """
        if self.workload is None:
            raise ProtocolError(f"peer {self.peer_id} has no workload attached")
        # Offline (or departed) peers issue nothing: a staggered
        # bootstrap can fire after churn or a scenario departure took
        # the peer down, and a request registered then would sit in
        # live providers' IRQs with nobody ever withdrawing it.
        # Reconnecting peers refill via their first scan.
        if not self.online:
            return 0
        if self.ctx.now < self._workload_stalled_until:
            return 0
        issued = 0
        while len(self.pending) < self.ctx.config.max_pending:
            candidate = self.workload.next_request()
            if candidate is None:
                self.ctx.metrics.count("workload.no_candidate")
                self._workload_stalled_until = (
                    self.ctx.now + self.ctx.config.workload_retry_interval
                )
                break
            self.start_download(candidate)
            issued += 1
        return issued

    def start_download(self, obj: "ContentObject") -> DownloadState:
        """Open a download: lookup, pre-send ring check, register requests."""
        if obj.object_id in self.pending:
            raise ProtocolError(
                f"peer {self.peer_id} already has a pending request "
                f"for object {obj.object_id}"
            )
        ctx = self.ctx
        download = DownloadState(
            peer_id=self.peer_id,
            obj=obj,
            request_time=ctx.now,
            total_blocks=self.blocks_for_object(obj.object_id),
        )
        self.pending[obj.object_id] = download
        providers = ctx.lookup.find_providers(obj.object_id, self.peer_id, self._rand)
        download.known_providers.update(providers)
        if not providers:
            ctx.metrics.count("lookup.miss")
            return download
        # Paper §III-A: the requester inspects its entire request tree
        # *before* transmitting a request, closing a ring if it can.
        if self.policy.enables_exchanges and self.shares:
            exchange_manager.try_form_exchanges(self, only_object=obj.object_id)
        self._register_at_providers(download, providers)
        return download

    def _register_at_providers(
        self, download: DownloadState, providers: List[int]
    ) -> int:
        # A provider can appear both as a registration and as an active
        # source (entries stay attached while served), so count the union.
        engaged = download.registered_at | set(download.transfers)
        budget = self.ctx.config.request_fanout - len(engaged)
        count = 0
        for provider_id in providers:
            if budget <= 0:
                break
            if download.transfer_from(provider_id) is not None:
                continue  # already serving (e.g. via a just-formed ring)
            if self.register_request_at(provider_id, download):
                budget -= 1
                count += 1
        return count

    def register_request_at(self, provider_id: int, download: DownloadState) -> bool:
        """Register interest at a provider's IRQ; True on success."""
        if provider_id == self.peer_id:
            raise ProtocolError(f"peer {self.peer_id} cannot request from itself")
        if provider_id in download.registered_at:
            return False
        provider = self.ctx.peer(provider_id)
        if not provider.shares:
            return False
        # Adversarial admission (see repro.security.adversaries):
        # colluders refuse outsiders, honest providers refuse
        # blacklisted identities.  None for every honest run.
        adversary = self.ctx.adversary
        if adversary is not None and not adversary.allows(provider, self.peer_id):
            return False
        entry = RequestEntry(
            requester_id=self.peer_id,
            object_id=download.object.object_id,
            arrival_time=self.ctx.now,
            tree=self._tree_snapshot(),
        )
        if not provider.irq.add(entry):
            return False
        download.registered_at.add(provider_id)
        provider.schedule_pass()
        return True

    def requeue_request(self, provider: "Peer", download: DownloadState) -> bool:
        """Re-register after a preemption or ring break (paper §III:
        the peer "issues the request again")."""
        if download.completed or not self.online:
            return False
        if not provider.can_serve(download.object.object_id):
            return False
        return self.register_request_at(provider.peer_id, download)

    def _tree_snapshot(self):
        """The tree attached to outgoing requests, cached by IRQ version.

        Rebuilt only when this peer's IRQ content changed, so idle peers
        pay nothing for the periodic tree propagation.
        """
        levels = self.policy.tree_levels
        if levels <= 0:
            return None
        cached = self._snapshot_cache
        if cached is not None and cached[0] == self.irq.version:
            return cached[1]
        tree = build_snapshot(
            self.peer_id, self.irq, levels, self.ctx.config.max_tree_nodes
        )
        self._snapshot_cache = (self.irq.version, tree)
        return tree

    # ------------------------------------------------------------------
    # connectivity (the one audited teardown path: churn round-trips and
    # scenario departures both go through here)
    # ------------------------------------------------------------------
    def disconnect(self) -> None:
        """Go offline: kill transfers, withdraw requests, drain the IRQ,
        unpublish, and park the periodic processes.  Idempotent."""
        if not self.online:
            return
        ctx = self.ctx
        # Uploads first: our departure breaks any ring we serve in.  The
        # PEER_OFFLINE terminations also withdraw the served entries
        # from our IRQ and from their requesters' registration sets.
        for transfer in self.active_uploads():
            transfer.terminate(TerminationReason.PEER_OFFLINE)
        # Downloads: both the transfers and the queued registrations.
        for download in list(self.pending.values()):
            for transfer in list(download.transfers.values()):
                transfer.terminate(TerminationReason.PEER_OFFLINE, requeue=False)
            for provider_id in list(download.registered_at):
                ctx.peer(provider_id).irq.remove(
                    self.peer_id, download.object.object_id
                )
            download.registered_at.clear()
        # Drain the *queued* entries other peers registered with us.  An
        # entry left behind would keep us in its requester's
        # ``registered_at`` for the whole offline session, and a
        # download that looks engaged is never re-looked-up — the
        # requester would stall on a dead registration even with live
        # alternative providers in the index.
        self._drain_incoming_requests()
        if self.behavior.shares:
            for object_id in self.store.object_ids():
                ctx.lookup.unregister(self.peer_id, object_id)
        self.online = False
        ctx.peer_table.set_online(self.peer_id, False)
        self.suspend_periodic()
        ctx.metrics.count("churn.offline")

    def _drain_incoming_requests(self) -> None:
        """Withdraw every queued IRQ entry and notify its requester.

        Shared by :meth:`disconnect` and :meth:`set_sharing`: whether
        the peer went offline or merely stopped serving, a request left
        in its queue would pin the requester to a provider that will
        never serve it.
        """
        ctx = self.ctx
        for entry in list(self.irq.active_entries()):
            self.irq.remove(entry.requester_id, entry.object_id)
            requester = ctx.peer(entry.requester_id)
            download = requester.pending.get(entry.object_id)
            if download is not None:
                download.registered_at.discard(self.peer_id)
            requester.schedule_pass()

    def reconnect(self) -> None:
        """Come back online: re-publish the store and resume the
        workload.  A no-op while online — and forever once departed."""
        if self.online or self.departed:
            return
        ctx = self.ctx
        self.online = True
        ctx.peer_table.set_online(self.peer_id, True)
        if self.behavior.shares:
            for object_id in self.store.object_ids():
                ctx.lookup.register(self.peer_id, object_id)
        self.resume_periodic()
        ctx.metrics.count("churn.online")
        # Pending downloads re-register at providers on the next scan;
        # kick one immediately so short sessions still make progress.
        self.scan()

    # ------------------------------------------------------------------
    # scenario mutations
    # ------------------------------------------------------------------
    def retarget_interests(self, profile: "InterestProfile") -> None:
        """Swap the interest profile (flash crowds, demand shifts).

        Pending downloads are unaffected; only future request draws see
        the new interests.  The workload back-off is cleared so the new
        demand takes effect on the next scan rather than after a stale
        retry window.
        """
        self.profile = profile
        if self.workload is not None:
            self.workload.set_profile(profile)
        self._workload_stalled_until = -math.inf

    def set_sharing(self, share: bool) -> bool:
        """Switch between sharing and free-riding at runtime.

        The strategy layer's world mutation (see :mod:`repro.strategy`):
        a convert to sharing republishes its store and starts accepting
        requests from the next scheduling pass; a convert to free-riding
        terminates its uploads (breaking any exchange rings it served
        in), drains its request queue so requesters re-register at live
        providers, and withdraws its store from the lookup index.
        Pending *downloads* survive either way — the peer keeps
        consuming, only its serving side changes.

        Returns True when the behaviour actually changed.  While
        offline only the behaviour flag flips (an offline peer is
        already unpublished and drained); :meth:`reconnect` then
        registers — or not — according to the new behaviour.
        """
        if self.behavior.shares == share:
            return False
        self.ctx.peer_table.set_shares(self.peer_id, share)
        if share:
            self.behavior = SHARER
            if self.online:
                for object_id in self.store.object_ids():
                    self.ctx.lookup.register(self.peer_id, object_id)
                # A fresh provider invalidates every idle-search gate
                # conclusion this peer reached as a non-sharer.
                self.idle_search_key = None
                self.schedule_pass()
        else:
            self.behavior = FREELOADER
            if self.online:
                for transfer in self.active_uploads():
                    transfer.terminate(TerminationReason.STOPPED_SHARING)
                self._drain_incoming_requests()
                for object_id in self.store.object_ids():
                    self.ctx.lookup.unregister(self.peer_id, object_id)
        return True

    def set_policy(self, policy: ExchangePolicy) -> None:
        """Adopt a new exchange mechanism mid-run (adoption ramps).

        Every policy-derived cache is invalidated: the idle-search gate
        (a different mechanism sees different candidates), the request
        tree snapshot (tree depth follows ``policy.tree_levels``) and
        the completed-push marker.  A scheduling pass is kicked so a
        newly enabled mechanism starts searching immediately.
        """
        self.policy = policy
        self.ctx.peer_table.set_policy(
            self.peer_id, policy.enables_exchanges, policy.max_ring
        )
        self.idle_search_key = None
        self._snapshot_cache = None
        self._push_complete_version = None
        self.schedule_pass()

    def resize_capacity(
        self,
        upload_capacity_kbit: Optional[float] = None,
        download_capacity_kbit: Optional[float] = None,
    ) -> None:
        """Re-provision link capacities (scenario capacity changes)."""
        if upload_capacity_kbit is not None:
            self.upload_capacity_kbit = upload_capacity_kbit
            self.upload_pool.resize(upload_capacity_kbit)
        if download_capacity_kbit is not None:
            self.download_capacity_kbit = download_capacity_kbit
            self.download_pool.resize(download_capacity_kbit)
        # Grown pools can serve queued entries right now.
        self.schedule_pass()

    # ------------------------------------------------------------------
    # periodic processes (attached by the simulation assembly)
    # ------------------------------------------------------------------
    def attach_periodic(self, process: "PeriodicProcess") -> None:
        """Track a scan/storage process so churn can pause it offline."""
        self.periodic_processes.append(process)

    def suspend_periodic(self) -> None:
        """Pause scan/storage loops (peer went offline).

        An offline peer's periodic events are pure heap churn — its
        scan/storage callbacks early-return on ``online`` — so under
        churn at scale they were a large fraction of all fired events.
        """
        for process in self.periodic_processes:
            process.pause()

    def resume_periodic(self) -> None:
        """Resume paused loops with a fresh per-process phase stagger.

        The stagger draws from this peer's own RNG stream, keeping
        churned runs deterministic while avoiding the thundering herd
        of every reconnecting peer scanning at the same instant.
        """
        for process in self.periodic_processes:
            if process.paused:
                process.resume(start_delay=self._rand.random() * process.interval)

    # ------------------------------------------------------------------
    # event handlers
    # ------------------------------------------------------------------
    def schedule_pass(self) -> None:
        """Coalesced zero-delay scheduling pass (exchanges then FIFO)."""
        if self._pass_scheduled or not self.shares:
            return
        self._pass_scheduled = True
        self.ctx.engine.schedule(0.0, self._run_pass, name=f"pass.p{self.peer_id}")

    def _run_pass(self) -> None:
        self._pass_scheduled = False
        if not self.online:
            return
        if self.policy.enables_exchanges and self.shares:
            exchange_manager.try_form_exchanges(self)
        scheduler.serve_pending(self)

    def scan(self) -> None:
        """Periodic maintenance: exchange search, service, re-registration."""
        if not self.online:
            return
        self.refresh_outgoing_trees()
        if self.policy.enables_exchanges and self.shares:
            exchange_manager.try_form_exchanges(self)
        scheduler.serve_pending(self)
        self._replenish_downloads()

    def refresh_outgoing_trees(self) -> None:
        """Re-publish this peer's request tree on its registered requests.

        The paper's §V assumes request-tree information propagates
        (incrementally) between peers; its simulation does not charge
        for that traffic.  We model propagation at scan granularity:
        every scan, a peer pushes its current snapshot to the providers
        holding its open requests, so ring search upstream sees trees at
        most one scan interval stale.
        """
        if self.policy.tree_levels <= 1:
            return  # snapshots would carry no children anyway
        now = self.ctx.now
        if now - self._last_tree_refresh < self.ctx.config.tree_refresh_interval:
            return
        self._last_tree_refresh = now
        version = self.irq.version
        if version == self._push_complete_version:
            # A completed push already delivered this exact snapshot to
            # every live registered entry, and new registrations attach
            # the current snapshot at send time — walking the fanout
            # would push nothing.  (Any pass that had to skip an
            # exchange-attached entry cleared the marker, since that
            # entry goes stale-but-pushable when its ring ends.)
            return
        snapshot = None
        complete = True
        peers = self.ctx.peers
        peer_id = self.peer_id
        for download in self.pending.values():
            if download.completed:
                continue
            object_id = download.object.object_id
            for provider_id in download.registered_at:
                provider = peers[provider_id]
                entry = provider.irq.get(peer_id, object_id)
                if entry is None or not entry.active:
                    continue
                if entry.transfer is not None and entry.transfer.is_exchange:
                    complete = False  # stale once the exchange ends
                    continue
                if snapshot is None:
                    snapshot = self._tree_snapshot()
                if entry.tree is snapshot:
                    continue  # provider already holds the current tree
                provider.irq.refresh_tree(entry, snapshot)
        self._push_complete_version = version if complete else None

    def _replenish_downloads(self) -> None:
        ctx = self.ctx
        config = ctx.config
        if self.workload is not None and len(self.pending) < config.max_pending:
            self.fill_pending()
        for download in list(self.pending.values()):
            if download.completed or download.unassigned_blocks <= 0:
                continue
            if download.active_sources > 0 or download.registered_at:
                download.lookup_failures = 0
                continue
            providers = ctx.lookup.find_providers(
                download.object.object_id, self.peer_id, self._rand
            )
            if not providers:
                ctx.metrics.count("lookup.retry_miss")
                download.lookup_failures += 1
                if (
                    download.lookup_failures
                    >= config.abandon_after_lookup_failures
                ):
                    self.abandon_download(download)
                continue
            download.lookup_failures = 0
            download.known_providers.update(providers)
            self._register_at_providers(download, providers)

    def abandon_download(self, download: DownloadState) -> None:
        """Cancel a download whose object left the network.

        Every copy of a rarely-held object can be evicted while a
        request is outstanding; rather than pinning a pending slot
        forever, the peer gives up (as a user would cancel a dead
        download) and requests something locatable instead.
        """
        object_id = download.object.object_id
        for transfer in list(download.transfers.values()):
            transfer.terminate(TerminationReason.REQUESTER_CANCELLED, requeue=False)
        for provider_id in list(download.registered_at):
            self.ctx.peer(provider_id).irq.remove(self.peer_id, object_id)
        download.registered_at.clear()
        self.pending.pop(object_id, None)
        self.ctx.metrics.count("download.abandoned")
        if self.workload is not None:
            self.fill_pending()

    def on_download_complete(self, download: DownloadState) -> None:
        """The last block arrived: store, publish, record, re-request."""
        object_id = download.object.object_id
        for transfer in list(download.transfers.values()):
            transfer.terminate(TerminationReason.COMPLETED)
        self.pending.pop(object_id, None)
        for provider_id in list(download.registered_at):
            provider = self.ctx.peer(provider_id)
            provider.irq.remove(self.peer_id, object_id)
        download.registered_at.clear()
        newly_stored = self.store.add_if_absent(object_id)
        if newly_stored and self.shares:
            self.ctx.lookup.register(self.peer_id, object_id)
        self.ctx.metrics.add_download(
            peer_id=self.peer_id,
            object_id=object_id,
            request_time=download.request_time,
            complete_time=self.ctx.now,
            size_kbit=download.object.size_kbit,
            peer_is_sharer=self.behavior.shares,
            class_name=self.class_name,
        )
        if self.workload is not None:
            self.fill_pending()

    def storage_check(self) -> None:
        """Periodic storage cleanup (paper §IV-A): evict random overflow.

        Eviction skips pinned objects (ongoing exchanges).  Evicting an
        object that a *normal* upload is serving terminates that upload
        ("the source deletes the object").
        """
        if not self.store.over_capacity:
            return
        evicted = self.store.evict_random_overflow(self._rand)
        if not evicted:
            return
        evicted_set = set(evicted)
        if self.shares:  # offline peers are already out of the index
            for object_id in evicted:
                self.ctx.lookup.unregister(self.peer_id, object_id)
        for transfer in self.active_uploads():
            if transfer.object.object_id in evicted_set:
                transfer.terminate(TerminationReason.SOURCE_DELETED)
        self.ctx.metrics.count("storage.evicted", len(evicted))

    # ------------------------------------------------------------------
    # upload registry (maintained by Transfer)
    # ------------------------------------------------------------------
    def register_upload(self, transfer: "Transfer") -> None:
        """Record a started upload (one per requester/object edge)."""
        key = (transfer.requester.peer_id, transfer.object.object_id)
        if key in self._uploads:
            raise ProtocolError(
                f"peer {self.peer_id} already uploads object {key[1]} to peer {key[0]}"
            )
        self._uploads[key] = transfer
        if transfer.is_exchange:
            self._exchange_uploads += 1

    def unregister_upload(self, transfer: "Transfer") -> None:
        """Drop a terminated upload from the registry."""
        key = (transfer.requester.peer_id, transfer.object.object_id)
        if self._uploads.get(key) is not transfer:
            raise ProtocolError(
                f"peer {self.peer_id}: unregister of unknown upload {key}"
            )
        del self._uploads[key]
        if transfer.is_exchange:
            self._exchange_uploads -= 1

    def note_upload_downgraded(self) -> None:
        """An exchange upload became a normal one (ring downgrade)."""
        if self._exchange_uploads <= 0:
            raise ProtocolError(
                f"peer {self.peer_id}: downgrade with no exchange uploads"
            )
        self._exchange_uploads -= 1

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Peer({self.peer_id}, {self.behavior.name}, "
            f"store={len(self.store)}/{self.store.capacity}, "
            f"pending={len(self.pending)}, irq={len(self.irq)})"
        )
