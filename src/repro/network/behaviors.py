"""Peer behaviour profiles.

The paper's population splits into *sharing* peers (serve their stored
objects, participate in exchanges) and *non-sharing* peers /
free-riders (consume only).  The security extensions (§III-B) add
cheating profiles in :mod:`repro.security.middleman`; they subclass
:class:`PeerBehavior` so the rest of the system stays agnostic.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class PeerBehavior:
    """What a peer is willing to do for the network.

    Attributes
    ----------
    name:
        Short label used in metrics and reprs.
    shares:
        Whether the peer serves its stored objects (appears in lookup,
        accepts requests, joins exchanges as a provider).
    honest:
        Whether the peer follows the protocol truthfully.  Cheating
        profiles (middlemen, junk servers) set this False; the core
        simulation treats them like sharers and the security layer
        implements their deviations.
    """

    name: str
    shares: bool
    honest: bool = True

    def __str__(self) -> str:
        return self.name


#: A cooperative peer: shares everything it stores.
SHARER = PeerBehavior(name="sharer", shares=True)

#: A free-rider: downloads but never serves (70% of Gnutella, per the
#: paper's motivation; 50% in the Table II base configuration).
FREELOADER = PeerBehavior(name="freeloader", shares=False)
