"""Baseline incentive mechanisms the paper compares against in §II.

* :mod:`repro.baselines.credit` — the eMule-style pairwise credit
  system: queue rank scored from waiting time times a credit modifier
  derived from per-peer upload/download volumes.
* :mod:`repro.baselines.participation` — the KaZaA-style self-reported
  participation level, trivially subvertible because peers "can claim
  anything with a simple modification to their software".

Both plug into the upload scheduler through the ``scheduler_mode``
configuration field ("fifo" | "credit" | "participation"); the exchange
mechanism itself is orthogonal and usually disabled ("none") when
benchmarking a baseline.
"""

from repro.baselines.credit import CreditLedger, credit_modifier, credit_queue_rank
from repro.baselines.participation import (
    ParticipationReporter,
    participation_priority,
)

__all__ = [
    "CreditLedger",
    "ParticipationReporter",
    "credit_modifier",
    "credit_queue_rank",
    "participation_priority",
]
