"""eMule-style pairwise credit system (paper §II).

"For each request in the upload queue the peer computes the Queue Rank
based on a scoring function that depends on the current waiting time
for the request, as well as the upload and download volumes for the
peer."  The ledger is purely local (no communication), which is the
scheme's main advantage — and the waiting-time term is its main
weakness: "peers that do not have any credit can still use the system
if they are patient enough".

The modifier below follows eMule's documented rules: ratio =
2*uploaded/downloaded, alternatively sqrt(uploaded_MB + 2); the lower
of the two, clamped to [1, 10]; peers that uploaded less than 1 MB get
modifier 1.
"""

from __future__ import annotations

import math
from typing import Dict, Tuple

from repro.errors import ProtocolError
from repro.units import KBIT_PER_MB


def credit_modifier(uploaded_kbit: float, downloaded_kbit: float) -> float:
    """eMule credit modifier for one remote peer.

    ``uploaded_kbit``: data the remote peer sent *to us*;
    ``downloaded_kbit``: data the remote peer took *from us*.
    """
    if uploaded_kbit < 0 or downloaded_kbit < 0:
        raise ProtocolError("credit volumes cannot be negative")
    uploaded_mb = uploaded_kbit / KBIT_PER_MB
    if uploaded_mb < 1.0:
        return 1.0
    if downloaded_kbit <= 0:
        ratio = 10.0
    else:
        ratio = 2.0 * uploaded_kbit / downloaded_kbit
    alternative = math.sqrt(uploaded_mb + 2.0)
    modifier = min(ratio, alternative)
    return max(1.0, min(10.0, modifier))


def credit_queue_rank(waiting_seconds: float, modifier: float) -> float:
    """eMule queue rank: waiting time scaled by the credit modifier."""
    if waiting_seconds < 0:
        raise ProtocolError(f"waiting time cannot be negative: {waiting_seconds}")
    return waiting_seconds * modifier


class CreditLedger:
    """One peer's local per-remote upload/download volume bookkeeping."""

    __slots__ = ("owner_id", "_volumes")

    def __init__(self, owner_id: int) -> None:
        self.owner_id = owner_id
        # remote -> (they_uploaded_to_me, they_downloaded_from_me), kbit
        self._volumes: Dict[int, Tuple[float, float]] = {}

    def record_received(self, remote_id: int, kbit: float) -> None:
        """The remote peer uploaded ``kbit`` to us."""
        up, down = self._volumes.get(remote_id, (0.0, 0.0))
        self._volumes[remote_id] = (up + kbit, down)

    def record_served(self, remote_id: int, kbit: float) -> None:
        """The remote peer downloaded ``kbit`` from us."""
        up, down = self._volumes.get(remote_id, (0.0, 0.0))
        self._volumes[remote_id] = (up, down + kbit)

    def volumes(self, remote_id: int) -> Tuple[float, float]:
        """``(they_uploaded_to_me, they_downloaded_from_me)`` in kbit."""
        return self._volumes.get(remote_id, (0.0, 0.0))

    def modifier(self, remote_id: int) -> float:
        """The eMule credit modifier for one remote peer."""
        uploaded, downloaded = self.volumes(remote_id)
        return credit_modifier(uploaded, downloaded)

    def rank(self, remote_id: int, waiting_seconds: float) -> float:
        """Queue rank of a request from ``remote_id`` (higher = served first)."""
        return credit_queue_rank(waiting_seconds, self.modifier(remote_id))

    def known_peers(self) -> int:
        """How many remote peers have ledger entries."""
        return len(self._volumes)
