"""KaZaA-style self-reported participation level (paper §I/§II).

"Each peer announces its participation level, computed locally as a
function of uptime, download and upload volume, and [peers] give
priority to remote peers that claim high participation levels.
However, this is easily subverted since peers can claim anything with
a simple modification to their software."

:class:`ParticipationReporter` computes the honest score; a cheater
simply reports the maximum.  The scheduler then priority-orders by the
*claimed* value — which is exactly the hole the bench demonstrates.
"""

from __future__ import annotations

from repro.errors import ProtocolError

#: KaZaA clamps the reported level to [0, 1000]; we normalize to [0, 1].
MAX_LEVEL = 1.0


class ParticipationReporter:
    """Tracks one peer's true volumes and reports a participation level."""

    __slots__ = ("owner_id", "cheats", "uploaded_kbit", "downloaded_kbit")

    def __init__(self, owner_id: int, cheats: bool = False) -> None:
        self.owner_id = owner_id
        self.cheats = cheats
        self.uploaded_kbit = 0.0
        self.downloaded_kbit = 0.0

    def record_uploaded(self, kbit: float) -> None:
        """Account ``kbit`` of served upload volume."""
        if kbit < 0:
            raise ProtocolError("upload volume cannot be negative")
        self.uploaded_kbit += kbit

    def record_downloaded(self, kbit: float) -> None:
        """Account ``kbit`` of received download volume."""
        if kbit < 0:
            raise ProtocolError("download volume cannot be negative")
        self.downloaded_kbit += kbit

    @property
    def honest_level(self) -> float:
        """KaZaA's ratio-style level: upload / max(download, upload)."""
        denominator = max(self.uploaded_kbit, self.downloaded_kbit, 1.0)
        return min(MAX_LEVEL, self.uploaded_kbit / denominator)

    @property
    def claimed_level(self) -> float:
        """What the peer tells the world — the cheat is one line of code."""
        if self.cheats:
            return MAX_LEVEL
        return self.honest_level


def participation_priority(claimed_level: float, waiting_seconds: float) -> float:
    """Queue priority under the participation scheme (higher first).

    Claimed level dominates; waiting time breaks ties so the queue still
    drains.
    """
    if not 0.0 <= claimed_level <= MAX_LEVEL:
        raise ProtocolError(f"claimed level out of range: {claimed_level}")
    if waiting_seconds < 0:
        raise ProtocolError(f"waiting time cannot be negative: {waiting_seconds}")
    return claimed_level * 1_000_000.0 + waiting_seconds
