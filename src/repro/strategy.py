"""Adaptive strategy dynamics: peers that revise whether to share.

The paper's populations are *fixed*: a peer built as a free-rider stays
one for the whole run, and the incentive mechanisms are evaluated by
comparing the two static classes.  The game-theoretic related work goes
one step further — Salek et al. ("You Share, I Share") and Buragohain
et al. ("A Game Theoretic Framework for Incentives in P2P Systems")
model sharing as a *strategic decision* that peers revise in response
to observed payoffs, and ask which sharing level the population
converges to under each incentive mechanism.  This module closes that
gap.

A :class:`StrategySpec` declares how one peer class revises its
behaviour: every ``revision_period`` seconds the peer evaluates its
*realized payoff* over a sliding ``window`` — mean download time,
exchange-session fraction, and its credit/participation standing from
its :class:`~repro.core.disciplines.ServiceDiscipline` — minus a
``sharing_cost`` charged while it serves.  A pluggable update rule then
decides whether to keep sharing, start sharing, or start free-riding:

* ``best-response`` — compare the mean realized payoff of currently
  sharing peers against currently free-riding peers and adopt the
  better strategy (best response to the population's observed payoffs);
* ``imitate`` — sample one other peer and copy its strategy if its
  realized payoff beats your own (imitation / replicator-style
  dynamics);
* ``epsilon-greedy`` — best response with probability ``1 - epsilon``,
  a uniformly random strategy with probability ``epsilon``
  (exploration noise);
* ``static`` — never revise (the paper's model, and the default).

Switching is implemented with the same world-mutation machinery the
scenario layer uses: :meth:`~repro.network.peer.Peer.set_sharing`
republishes or withdraws the peer's store, terminates its uploads and
drains its request queue, so a mid-run convert behaves exactly like a
built-that-way peer from the next instant on.

Determinism: all strategy randomness draws from the dedicated
``"strategy"`` RNG stream, revisions walk peers in enrollment (peer id)
order, and a fully static configuration constructs no director,
schedules no events and consumes no RNG — static runs replay
pre-strategy builds bit-identically (the golden fig7 pins guard this).
"""

from __future__ import annotations

import math
from collections import deque
from dataclasses import dataclass
from typing import TYPE_CHECKING, Deque, Dict, List, Optional, Tuple

from repro.errors import ConfigError
from repro.sim.processes import PeriodicProcess
from repro.units import seconds_to_minutes

if TYPE_CHECKING:  # pragma: no cover - hints only
    from repro.network.peer import Peer
    from repro.scenario import StrategyShock
    from repro.simulation import FileSharingSimulation

#: Update-rule names accepted by :attr:`StrategySpec.rule`.
STRATEGY_RULES = ("static", "best-response", "imitate", "epsilon-greedy")


@dataclass(frozen=True)
class StrategySpec:
    """How one peer class revises its sharing strategy.

    The default is ``static`` — never revise — which is the paper's
    fixed-population model and is guaranteed to add no events and
    consume no RNG.  Payoffs are measured in minutes-of-download-time
    units: larger is better, and the components are

    ``- mean download time (min)``
        realized service over the sliding window;
    ``+ exchange_weight × exchange-session fraction``
        how much of the peer's traffic ran at exchange priority;
    ``+ standing_weight × discipline standing``
        the peer's credit/participation standing (its upload/download
        ratio, in ``[0, 1]``) as reported by its service discipline;
    ``- sharing_cost`` (while sharing)
        the contribution cost of serving: upload bandwidth, slots and
        storage pinned for others (Buragohain et al.'s cost term).
    """

    #: One of :data:`STRATEGY_RULES`.
    rule: str = "static"
    #: Seconds between revision epochs.
    revision_period: float = 2_000.0
    #: Sliding payoff window in seconds (records older than this are
    #: forgotten at revision time).
    window: float = 6_000.0
    #: When revisions begin: the first epoch fires one period after
    #: this instant.  ``None`` defers to the config's measurement
    #: ``warmup`` — early transients (empty queues, cold caches) are
    #: not representative payoffs to revise on.
    start: Optional[float] = None
    #: Probability that a peer revises at each epoch (revision inertia:
    #: values < 1 smooth the dynamics and prevent all-flip oscillation).
    revision_probability: float = 0.5
    #: Proportional-switching scale (minutes): a revising peer switches
    #: with probability ``min(1, payoff_gap / payoff_sensitivity)``, so
    #: switch pressure fades as the population nears the equilibrium
    #: where the gap closes (the classic proportional-imitation /
    #: Smith-dynamic smoothing).
    payoff_sensitivity: float = 15.0
    #: Payoff cost (minutes-equivalent) charged per epoch while sharing.
    sharing_cost: float = 6.0
    #: Weight of the exchange-session fraction payoff term.
    exchange_weight: float = 10.0
    #: Weight of the discipline-standing payoff term.
    standing_weight: float = 2.0
    #: Exploration probability for the ``epsilon-greedy`` rule.
    epsilon: float = 0.1

    @property
    def is_static(self) -> bool:
        """Whether this spec never revises (no director, no RNG)."""
        return self.rule == "static"

    def validate(self) -> None:
        """Raise :class:`~repro.errors.ConfigError` on the first invalid field."""
        if self.rule not in STRATEGY_RULES:
            raise ConfigError(
                f"unknown strategy rule {self.rule!r}; expected one of "
                f"{STRATEGY_RULES}"
            )
        if not (self.revision_period > 0 and math.isfinite(self.revision_period)):
            raise ConfigError(
                f"revision_period must be positive and finite, got "
                f"{self.revision_period}"
            )
        if not (self.window > 0 and math.isfinite(self.window)):
            raise ConfigError(f"window must be positive and finite, got {self.window}")
        if self.start is not None and not (
            self.start >= 0 and math.isfinite(self.start)
        ):
            raise ConfigError(f"start must be >= 0 and finite, got {self.start}")
        if not 0.0 < self.revision_probability <= 1.0:
            raise ConfigError(
                "revision_probability must be in (0,1], got "
                f"{self.revision_probability}"
            )
        if not (self.payoff_sensitivity > 0 and math.isfinite(self.payoff_sensitivity)):
            raise ConfigError(
                "payoff_sensitivity must be positive and finite, got "
                f"{self.payoff_sensitivity}"
            )
        if not 0.0 <= self.epsilon <= 1.0:
            raise ConfigError(f"epsilon must be in [0,1], got {self.epsilon}")
        for name in ("sharing_cost", "exchange_weight", "standing_weight"):
            value = getattr(self, name)
            if not (math.isfinite(value) and value >= 0.0):
                raise ConfigError(f"{name} must be >= 0 and finite, got {value}")


#: The never-revise spec inherited when neither the class nor the
#: global config declares a strategy.
STATIC = StrategySpec()


class _PeerWindow:
    """One peer's sliding-window observations (incrementally maintained)."""

    __slots__ = ("downloads", "sessions")

    def __init__(self) -> None:
        #: ``(complete_time, download_minutes)`` of completed downloads.
        self.downloads: Deque[Tuple[float, float]] = deque()
        #: ``(end_time, is_exchange)`` of sessions the peer requested.
        self.sessions: Deque[Tuple[float, bool]] = deque()

    def evict_before(self, cutoff: float) -> None:
        """Forget observations that slid out of the window."""
        downloads = self.downloads
        while downloads and downloads[0][0] < cutoff:
            downloads.popleft()
        sessions = self.sessions
        while sessions and sessions[0][0] < cutoff:
            sessions.popleft()


class StrategyDirector:
    """Runs the revision epochs for every strategy-enabled peer.

    Constructed by :meth:`~repro.simulation.FileSharingSimulation.build`
    (after the :class:`~repro.scenario.ScenarioDirector`, so scenario
    events scheduled at build time always apply *before* a strategy
    revision at the same timestamp — the engine breaks equal-time ties
    by scheduling sequence).  Peers enroll per class; classes sharing an
    identical :class:`StrategySpec` share one periodic revision process.
    """

    def __init__(self, sim: "FileSharingSimulation") -> None:
        self.sim = sim
        self.ctx = sim.ctx
        self._rand = self.ctx.rng.stream("strategy")
        self._windows: Dict[int, _PeerWindow] = {}
        #: peer id → time of its last behaviour switch.  Records whose
        #: *request* predates the switch are ignored: a download issued
        #: as a sharer completes at exchange/credit priority long after
        #: the peer turned free-rider, and would credit the wrong side.
        self._last_switch: Dict[int, float] = {}
        #: spec → enrolled peer ids, in enrollment (= peer id) order.
        self._groups: Dict[StrategySpec, List[int]] = {}
        self._processes: Dict[StrategySpec, PeriodicProcess] = {}
        self._download_index = 0
        self._session_index = 0
        self._epoch = 0
        self._payoff_bias = 0.0
        self._bias_until = -math.inf

    # ------------------------------------------------------------------
    # enrollment
    # ------------------------------------------------------------------
    def enroll(self, peer: "Peer", spec: StrategySpec) -> None:
        """Register one peer for periodic revision under ``spec``.

        Static specs are ignored.  The first enrollment for a given
        spec starts that spec's revision process (first epoch one full
        ``revision_period`` from now).
        """
        if spec.is_static:
            return
        self._windows[peer.peer_id] = _PeerWindow()
        group = self._groups.setdefault(spec, [])
        group.append(peer.peer_id)
        if spec not in self._processes:
            # First epoch one period after the spec's start (default:
            # the measurement warmup) — or after *now* for groups born
            # mid-run, whose world is already warm.
            start = spec.start if spec.start is not None else self.sim.config.warmup
            now = self.ctx.now
            delay = max(start + spec.revision_period - now, spec.revision_period)
            process = PeriodicProcess(
                self.ctx.engine,
                spec.revision_period,
                lambda s=spec: self._revise(s),
                name=f"strategy.revision.{len(self._processes)}",
                start_delay=delay,
            )
            self._processes[spec] = process
            self.sim.register_process(process)

    @property
    def enrolled_count(self) -> int:
        """Number of peers under strategy revision."""
        return len(self._windows)

    # ------------------------------------------------------------------
    # payoff evaluation
    # ------------------------------------------------------------------
    def _ingest_new_records(self) -> None:
        """Fold records landed since the last epoch into the windows."""
        metrics = self.ctx.metrics
        windows = self._windows
        last_switch = self._last_switch
        # Incremental row feeds: scalar tuples rather than record objects,
        # so the columnar backend never materializes dataclasses here.
        num_downloads = metrics.num_downloads
        for peer_id, request_time, complete_time, download_time in (
            metrics.download_rows_since(self._download_index)
        ):
            window = windows.get(peer_id)
            if window is not None and request_time >= last_switch.get(peer_id, 0.0):
                window.downloads.append(
                    (complete_time, seconds_to_minutes(download_time))
                )
        self._download_index = num_downloads
        num_sessions = metrics.num_sessions
        for requester_id, request_time, end_time, is_exchange in (
            metrics.session_rows_since(self._session_index)
        ):
            window = windows.get(requester_id)
            if window is not None and request_time >= last_switch.get(
                requester_id, 0.0
            ):
                window.sessions.append((end_time, is_exchange))
        self._session_index = num_sessions

    def payoff(self, peer: "Peer", spec: StrategySpec) -> Optional[float]:
        """The peer's realized payoff over its window; None without data.

        Payoff (minutes-equivalent, higher is better) = −mean download
        time + ``exchange_weight`` × exchange-session fraction +
        ``standing_weight`` × discipline standing − ``sharing_cost``
        while sharing.  A peer that completed no download inside the
        window has no realized payoff and returns ``None``.
        """
        window = self._windows.get(peer.peer_id)
        if window is None or not window.downloads:
            return None
        mean_time = sum(t for _, t in window.downloads) / len(window.downloads)
        value = -mean_time
        if window.sessions:
            exchange = sum(1 for _, is_x in window.sessions if is_x)
            value += spec.exchange_weight * (exchange / len(window.sessions))
        value += spec.standing_weight * peer.discipline.standing()
        if peer.behavior.shares:
            value -= spec.sharing_cost
        return value

    # ------------------------------------------------------------------
    # revision epochs
    # ------------------------------------------------------------------
    def _side_payoff(
        self, spec: StrategySpec, members: List[Tuple["Peer", Optional[float]]], sharing: bool
    ) -> Optional[float]:
        """Pooled realized payoff of one strategy side.

        Pools every window record of the side's peers (weighting peers
        by how much they observed) instead of averaging per-peer means:
        at revision granularity most peers hold only a handful of
        records, and the pooled estimate is what keeps best-response
        dynamics tracking the mechanism's discrimination rather than
        sampling noise.  Only *veterans* — peers on this side for at
        least one full window — contribute: a recent convert's counted
        completions are exactly the fast ones (its slow requests have
        not completed yet), and that right-censoring would make
        whichever side is gaining members look spuriously good and herd
        the population.  ``None`` when the side completed no download.
        """
        now = self.ctx.now
        last_switch = self._last_switch
        total_time = 0.0
        downloads = 0
        exchange_sessions = 0
        sessions = 0
        standing_total = 0.0
        veterans = 0
        for peer, _ in members:
            if now - last_switch.get(peer.peer_id, 0.0) < spec.window:
                continue
            veterans += 1
            window = self._windows[peer.peer_id]
            downloads += len(window.downloads)
            total_time += sum(minutes for _, minutes in window.downloads)
            sessions += len(window.sessions)
            exchange_sessions += sum(1 for _, is_x in window.sessions if is_x)
            standing_total += peer.discipline.standing()
        if not downloads:
            return None
        value = -total_time / downloads
        if sessions:
            value += spec.exchange_weight * (exchange_sessions / sessions)
        value += spec.standing_weight * (standing_total / veterans)
        if sharing:
            value -= spec.sharing_cost
        return value

    def _revise(self, spec: StrategySpec) -> None:
        """One revision epoch for the peers enrolled under ``spec``."""
        ctx = self.ctx
        now = ctx.now
        self._ingest_new_records()
        cutoff = now - spec.window
        peers = ctx.peers
        group: List[Tuple["Peer", Optional[float]]] = []
        for peer_id in self._groups[spec]:
            peer = peers[peer_id]
            if peer.departed:
                continue
            window = self._windows[peer_id]
            window.evict_before(cutoff)
            group.append((peer, self.payoff(peer, spec)))

        sharers = [(p, v) for p, v in group if p.behavior.shares]
        freeloaders = [(p, v) for p, v in group if not p.behavior.shares]
        mean_sharing = self._side_payoff(spec, sharers, sharing=True)
        mean_freeloading = self._side_payoff(spec, freeloaders, sharing=False)
        biased_sharing = mean_sharing
        if mean_sharing is not None and now < self._bias_until:
            biased_sharing = mean_sharing + self._payoff_bias

        revised = 0
        to_sharing = 0
        to_freeloading = 0
        candidates = [(peer, p) for peer, p in group if peer.online and p is not None]
        for peer, own_payoff in group:
            # Offline peers are not experiencing the system; they revise
            # when they are back with fresh observations.
            if not peer.online:
                continue
            if self._rand.random() >= spec.revision_probability:
                continue
            revised += 1
            target = self._target(
                spec, peer, own_payoff, biased_sharing, mean_freeloading, candidates
            )
            if target is None:
                continue
            gap, target = target
            if target == peer.behavior.shares:
                continue
            # Proportional switching: the pull toward the better
            # strategy scales with how much better it looks, so switch
            # pressure vanishes as the payoff gap closes and the
            # population settles instead of all-flip oscillating.
            if gap < spec.payoff_sensitivity and (
                self._rand.random() >= gap / spec.payoff_sensitivity
            ):
                continue
            if self._switch(peer, target):
                if target:
                    to_sharing += 1
                else:
                    to_freeloading += 1

        self._epoch += 1
        enrolled, sharing = self._enrolled_sharing_counts()
        ctx.metrics.count("strategy.epoch")
        ctx.metrics.add_strategy_epoch(
            time=now,
            epoch=self._epoch,
            enrolled=enrolled,
            sharing=sharing,
            revised=revised,
            switched_to_sharing=to_sharing,
            switched_to_freeloading=to_freeloading,
            mean_payoff_sharing=mean_sharing,
            mean_payoff_freeloading=mean_freeloading,
        )

    def _target(
        self,
        spec: StrategySpec,
        peer: "Peer",
        own_payoff: Optional[float],
        mean_sharing: Optional[float],
        mean_freeloading: Optional[float],
        candidates: List[Tuple["Peer", float]],
    ) -> Optional[Tuple[float, bool]]:
        """The behaviour ``spec.rule`` picks for one revising peer.

        Returns ``(payoff_gap, share?)`` — the gap feeds proportional
        switching — or ``None`` to keep the current behaviour (ties and
        missing data never force a switch).
        """
        if spec.rule == "imitate":
            others = [(q, p) for q, p in candidates if q is not peer]
            if not others:
                return None
            model, model_payoff = others[int(self._rand.random() * len(others))]
            if own_payoff is None:
                return (spec.payoff_sensitivity, model.behavior.shares)
            if model_payoff > own_payoff:
                return (model_payoff - own_payoff, model.behavior.shares)
            return None
        if spec.rule == "epsilon-greedy" and self._rand.random() < spec.epsilon:
            # Exploration ignores payoffs entirely — full-strength jump.
            return (spec.payoff_sensitivity, self._rand.random() < 0.5)
        # best-response (also epsilon-greedy's exploit branch).
        if mean_sharing is None or mean_freeloading is None:
            return None
        if mean_sharing > mean_freeloading:
            return (mean_sharing - mean_freeloading, True)
        if mean_sharing < mean_freeloading:
            return (mean_freeloading - mean_sharing, False)
        return None

    def _switch(self, peer: "Peer", share: bool) -> bool:
        """Flip one peer's behaviour and keep the accounting straight."""
        if not peer.set_sharing(share):
            return False
        # The window reflects the old strategy's payoffs; judging the
        # new behaviour by them would pollute both sides' pools.
        self._windows[peer.peer_id] = _PeerWindow()
        self._last_switch[peer.peer_id] = self.ctx.now
        self.sim.note_behavior_change(peer)
        self.ctx.metrics.count(
            "strategy.switch_to_sharing" if share else "strategy.switch_to_freeloading"
        )
        return True

    def _enrolled_sharing_counts(self) -> Tuple[int, int]:
        """(alive enrolled peers, how many of them currently share)."""
        peers = self.ctx.peers
        enrolled = 0
        sharing = 0
        for peer_id in self._windows:
            peer = peers[peer_id]
            if peer.departed:
                continue
            enrolled += 1
            if peer.behavior.shares:
                sharing += 1
        return enrolled, sharing

    # ------------------------------------------------------------------
    # scenario integration
    # ------------------------------------------------------------------
    def apply_shock(self, event: "StrategyShock") -> None:
        """Apply a :class:`~repro.scenario.StrategyShock` scenario event.

        ``flip_fraction`` forcibly flips that fraction of the enrolled
        (alive, online) peers — a perturbation to probe equilibrium
        stability; ``payoff_bias`` is added to the sharing side of every
        best-response comparison until ``event.duration`` elapses — a
        perceived-payoff shock (subsidy when positive, scare when
        negative).
        """
        ctx = self.ctx
        if event.flip_fraction > 0.0:
            eligible = sorted(
                peer_id
                for peer_id in self._windows
                if not ctx.peers[peer_id].departed and ctx.peers[peer_id].online
            )
            count = int(round(len(eligible) * event.flip_fraction))
            for peer_id in self._rand.sample(eligible, count):
                peer = ctx.peers[peer_id]
                if self._switch(peer, not peer.behavior.shares):
                    ctx.metrics.count("strategy.shock_flip")
        if event.payoff_bias != 0.0:
            self._payoff_bias = event.payoff_bias
            self._bias_until = ctx.now + event.duration
