"""Initial object placement.

"We initially place objects on each peer based on the peer's category
preferences" (§IV-A).  Each peer's store is filled up to
``fill_fraction`` of its capacity with distinct objects drawn the same
way requests are drawn: category from the local preference, object from
the category's rank popularity.  Rejection-sampling with a bounded
number of attempts handles small categories gracefully.
"""

from __future__ import annotations

import random
from typing import List

from repro.content.catalog import Catalog
from repro.content.interests import InterestProfile
from repro.content.popularity import PopularityCache
from repro.content.storage import ObjectStore
from repro.errors import ConfigError

#: Draw attempts per placement slot before giving up on filling it; a
#: peer interested only in a 3-object category simply ends up with
#: fewer initial objects than capacity, which is fine.
_MAX_ATTEMPTS_PER_SLOT = 50


def place_objects_for_peer(
    catalog: Catalog,
    profile: InterestProfile,
    store: ObjectStore,
    rand: random.Random,
    object_factor: float,
    popularity_cache: PopularityCache,
    fill_fraction: float = 1.0,
) -> List[int]:
    """Fill one peer's store; returns the placed object ids."""
    if not 0.0 <= fill_fraction <= 1.0:
        raise ConfigError(f"fill_fraction must be in [0, 1], got {fill_fraction}")
    target = int(round(store.capacity * fill_fraction))
    placed: List[int] = []
    attempts = 0
    budget = max(target, 1) * _MAX_ATTEMPTS_PER_SLOT
    while len(store) < target and attempts < budget:
        attempts += 1
        category = catalog.category(profile.choose_category(rand))
        distribution = popularity_cache.get(category.size, object_factor)
        obj = category.objects[distribution.sample_index(rand)]
        if store.add_if_absent(obj.object_id):
            placed.append(obj.object_id)
    return placed


def initial_placement(
    catalog: Catalog,
    profiles: List[InterestProfile],
    stores: List[ObjectStore],
    rand: random.Random,
    object_factor: float,
    fill_fraction: float = 1.0,
) -> List[List[int]]:
    """Place initial objects for every peer; returns per-peer placements."""
    if len(profiles) != len(stores):
        raise ConfigError(
            f"{len(profiles)} profiles but {len(stores)} stores in placement"
        )
    cache = PopularityCache()
    placements: List[List[int]] = []
    for profile, store in zip(profiles, stores):
        placements.append(
            place_objects_for_peer(
                catalog,
                profile,
                store,
                rand,
                object_factor,
                cache,
                fill_fraction=fill_fraction,
            )
        )
    return placements
