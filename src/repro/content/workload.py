"""Request workload generation.

Each peer keeps up to ``max_pending`` outstanding object requests and
issues a fresh one the moment a download completes (§IV-A).  A candidate
request is a (category, object) draw; candidates already stored locally
("cache hits") or already pending are discarded and the draw repeats
until a miss is found — exactly the paper's procedure for avoiding
misleading cache-hit effects.
"""

from __future__ import annotations

import random
from typing import Callable, Optional, Set

from repro.content.catalog import Catalog, ContentObject
from repro.content.interests import InterestProfile
from repro.content.popularity import PopularityCache
from repro.errors import ConfigError

#: Default bound on miss-finding attempts (overridable per generator
#: via ``max_miss_attempts``, wired to ``config.max_miss_attempts`` by
#: the simulation assembly).  A peer whose categories are almost fully
#: cached may legitimately fail to find a miss; the generator then
#: returns None and the caller retries on the next completion/scan.
DEFAULT_MAX_MISS_ATTEMPTS = 200


class RequestGenerator:
    """Draws request candidates for one peer.

    Parameters
    ----------
    is_known:
        Predicate returning True for objects that must NOT be requested
        (already stored locally or already pending).  Injected so the
        generator stays decoupled from peer internals and is trivially
        testable.
    is_locatable:
        Predicate returning True for objects the search mechanism can
        currently locate (some provider shares them).  Users of real
        file-sharing systems request out of search results, so draws
        that search cannot resolve are skipped like cache hits are; the
        paper's workload keeps ``max_pending`` downloads *active* per
        peer, which presumes locatable targets.  Pass ``None`` to
        disable the filter.
    """

    __slots__ = (
        "_catalog",
        "_profile",
        "_rand",
        "_object_factor",
        "_is_known",
        "_is_locatable",
        "_cache",
        "_max_miss_attempts",
        "candidates_drawn",
        "hits_skipped",
        "unlocatable_skipped",
    )

    def __init__(
        self,
        catalog: Catalog,
        profile: InterestProfile,
        rand: random.Random,
        object_factor: float,
        is_known: Callable[[int], bool],
        is_locatable: Optional[Callable[[int], bool]] = None,
        popularity_cache: Optional[PopularityCache] = None,
        max_miss_attempts: int = DEFAULT_MAX_MISS_ATTEMPTS,
    ) -> None:
        if object_factor < 0:
            raise ConfigError(f"object_factor must be >= 0, got {object_factor}")
        if max_miss_attempts < 1:
            raise ConfigError(
                f"max_miss_attempts must be >= 1, got {max_miss_attempts}"
            )
        self._catalog = catalog
        self._profile = profile
        self._rand = rand
        self._object_factor = object_factor
        self._is_known = is_known
        self._is_locatable = is_locatable
        # ``is not None``, not truthiness: PopularityCache defines
        # __len__, so a shared-but-still-empty cache is falsy and a
        # plain ``or`` would silently hand every generator its own
        # private cache (50k duplicate rank tables at the huge preset).
        self._cache = (
            popularity_cache if popularity_cache is not None else PopularityCache()
        )
        self._max_miss_attempts = max_miss_attempts
        self.candidates_drawn = 0
        self.hits_skipped = 0
        self.unlocatable_skipped = 0

    def set_profile(self, profile: InterestProfile) -> None:
        """Swap the interest profile mid-run (scenario demand shifts)."""
        self._profile = profile

    def draw_candidate(self) -> ContentObject:
        """One raw (category, object) draw, hit or miss."""
        category = self._catalog.category(self._profile.choose_category(self._rand))
        distribution = self._cache.get(category.size, self._object_factor)
        self.candidates_drawn += 1
        return category.objects[distribution.sample_index(self._rand)]

    def next_request(self) -> Optional[ContentObject]:
        """Draw candidates until a locatable miss is found; None if none.

        Returning ``None`` (rather than raising) keeps a fully-saturated
        peer alive: it simply has no feasible request this instant.
        """
        for _ in range(self._max_miss_attempts):
            candidate = self.draw_candidate()
            if self._is_known(candidate.object_id):
                self.hits_skipped += 1
                continue
            if self._is_locatable is not None and not self._is_locatable(
                candidate.object_id
            ):
                self.unlocatable_skipped += 1
                continue
            return candidate
        return None


def pending_and_stored_filter(
    stored: Set[int], pending: Set[int]
) -> Callable[[int], bool]:
    """Convenience ``is_known`` predicate over two live sets.

    The sets are captured by reference, so the predicate always sees the
    peer's current state.
    """

    def is_known(object_id: int) -> bool:
        return object_id in stored or object_id in pending

    return is_known
