"""Content substrate: objects, categories, popularity, storage, workload.

Implements the object-popularity model of Schlosser, Condie & Kamvar
("Simulating a P2P file-sharing network", 2002) that the paper adopts in
Section IV-A: objects live in ranked categories, category and object
popularity follow a rank power law with factor *f*, and each peer has a
private interest profile over a handful of categories.
"""

from repro.content.catalog import Catalog, Category, ContentObject
from repro.content.interests import InterestProfile, build_interest_profile
from repro.content.placement import initial_placement
from repro.content.popularity import RankPopularity
from repro.content.storage import ObjectStore
from repro.content.workload import RequestGenerator

__all__ = [
    "Catalog",
    "Category",
    "ContentObject",
    "InterestProfile",
    "ObjectStore",
    "RankPopularity",
    "RequestGenerator",
    "build_interest_profile",
    "initial_placement",
]
