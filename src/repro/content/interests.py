"""Per-peer interest profiles.

Each peer is interested in ``k ~ uniform(1, categories_per_peer_max)``
categories, chosen at initialization according to the *global* category
popularity, and weighted by a *local preference distribution* with
uniformly random weights that is independent of global popularity
(paper §IV-A).  Requests draw a category from the local preference and
then an object from the category's rank distribution.
"""

from __future__ import annotations

import random
from typing import List, Sequence, Tuple

from repro.content.catalog import Catalog
from repro.content.popularity import RankPopularity
from repro.errors import ConfigError


class InterestProfile:
    """A peer's categories of interest and its local preference weights."""

    __slots__ = ("category_ids", "weights", "_cumulative")

    def __init__(self, category_ids: Sequence[int], weights: Sequence[float]) -> None:
        if not category_ids:
            raise ConfigError("interest profile needs at least one category")
        if len(category_ids) != len(weights):
            raise ConfigError(
                f"{len(category_ids)} categories but {len(weights)} weights"
            )
        if len(set(category_ids)) != len(category_ids):
            raise ConfigError(f"duplicate categories in profile: {category_ids}")
        total = float(sum(weights))
        if total <= 0:
            raise ConfigError("interest weights must have positive total")
        self.category_ids: Tuple[int, ...] = tuple(category_ids)
        self.weights: Tuple[float, ...] = tuple(w / total for w in weights)
        self._cumulative: List[float] = []
        acc = 0.0
        for w in self.weights:
            acc += w
            self._cumulative.append(acc)
        self._cumulative[-1] = 1.0

    def choose_category(self, rand: random.Random) -> int:
        """Draw a category id from the local preference distribution."""
        point = rand.random()
        for index, bound in enumerate(self._cumulative):
            if point < bound:
                return self.category_ids[index]
        return self.category_ids[-1]

    def with_category(
        self, category_id: int, boost: float = 1.0
    ) -> "InterestProfile":
        """A new profile with ``category_id`` at the favourite's weight.

        Flash-crowd attraction: the category enters (or is promoted in)
        the profile at ``boost`` times the current maximum weight, so
        the drawn-in peer requests the hot category about as often as
        its favourite.  The receiver is unchanged — callers swap the
        returned profile in via
        :meth:`repro.network.peer.Peer.retarget_interests`.
        """
        if boost <= 0:
            raise ConfigError(f"boost must be positive, got {boost}")
        target = max(self.weights) * boost
        ids = list(self.category_ids)
        weights = list(self.weights)
        if category_id in self.category_ids:
            weights[ids.index(category_id)] = target
        else:
            ids.append(category_id)
            weights.append(target)
        return InterestProfile(ids, weights)

    def __contains__(self, category_id: int) -> bool:
        return category_id in self.category_ids

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"InterestProfile(categories={self.category_ids})"


def build_interest_profile(
    catalog: Catalog,
    category_popularity: RankPopularity,
    rand: random.Random,
    num_categories: int,
) -> InterestProfile:
    """Build one peer's profile.

    Categories are sampled *without replacement* proportionally to the
    global category popularity (rank r has weight 1/r^f): repeated draws
    from the rank distribution, skipping duplicates.  Local preference
    weights are independent uniform(0, 1) draws, normalized.
    """
    if num_categories <= 0:
        raise ConfigError(f"num_categories must be positive, got {num_categories}")
    num_categories = min(num_categories, catalog.num_categories)
    chosen: List[int] = []
    seen = set()
    # Rejection sampling terminates quickly because num_categories is
    # small (<= 8 in the paper) relative to the catalog (300 categories).
    while len(chosen) < num_categories:
        rank = category_popularity.sample_rank(rand)
        category_id = rank - 1  # category ids are 0-based, ranks 1-based
        if category_id in seen:
            continue
        seen.add(category_id)
        chosen.append(category_id)
    weights = [rand.random() for _ in chosen]
    # A pathological all-zero draw is astronomically unlikely but cheap
    # to guard: fall back to uniform weights.
    if sum(weights) <= 0:
        weights = [1.0] * len(chosen)
    return InterestProfile(chosen, weights)
