"""Object and category catalog.

The catalog is the global universe of content: categories ranked 1..C,
each holding a random number of objects ranked 1..n_c.  The paper's
model is a fixed library built once per simulation from the seeded RNG;
the scenario extension adds exactly one mutation,
:meth:`Catalog.inject_object`, so flash-crowd timelines can introduce
new hot content mid-run.  Object ids are append-only and never reused,
and existing :class:`ContentObject` instances are never replaced, so
references held by in-flight downloads stay valid across injections.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from repro.errors import ConfigError
from repro.sim.rng import RandomSource


@dataclass(frozen=True)
class ContentObject:
    """A single shareable object (a "file").

    ``rank`` is the object's popularity rank *within its category*
    (1 = most popular); ``size_kbit`` is the full object size.  The
    paper fixes all objects at 20 MB; we keep per-object sizes so the
    partial-transfer machinery is exercised realistically and the
    heterogeneous-size extension needs no schema change.
    """

    object_id: int
    category_id: int
    rank: int
    size_kbit: float

    def __post_init__(self) -> None:
        if self.size_kbit <= 0:
            raise ConfigError(
                f"object {self.object_id} has non-positive size {self.size_kbit}"
            )


@dataclass(frozen=True)
class Category:
    """A ranked content category holding a tuple of objects."""

    category_id: int
    rank: int
    objects: Tuple[ContentObject, ...] = field(default=())

    @property
    def size(self) -> int:
        """Number of objects in the category."""
        return len(self.objects)


class Catalog:
    """The immutable universe of categories and objects."""

    def __init__(self, categories: List[Category]) -> None:
        if not categories:
            raise ConfigError("catalog needs at least one category")
        self.categories: Tuple[Category, ...] = tuple(categories)
        self._objects: Dict[int, ContentObject] = {}
        for category in self.categories:
            if not category.objects:
                raise ConfigError(f"category {category.category_id} has no objects")
            for obj in category.objects:
                if obj.object_id in self._objects:
                    raise ConfigError(f"duplicate object id {obj.object_id}")
                self._objects[obj.object_id] = obj
        self._next_object_id = max(self._objects) + 1

    # ------------------------------------------------------------------
    @property
    def num_categories(self) -> int:
        """Number of content categories."""
        return len(self.categories)

    @property
    def num_objects(self) -> int:
        """Total objects across all categories (injections included)."""
        return len(self._objects)

    def object(self, object_id: int) -> ContentObject:
        """Look up an object by id; KeyError on unknown ids is a bug upstream."""
        return self._objects[object_id]

    def category(self, category_id: int) -> Category:
        """Look up a category by id; IndexError on unknown ids is a bug."""
        return self.categories[category_id]

    def all_objects(self) -> List[ContentObject]:
        """All objects, ordered by object id (stable for seeded sampling)."""
        return [self._objects[oid] for oid in sorted(self._objects)]

    # ------------------------------------------------------------------
    def inject_object(
        self, category_id: int, size_kbit: float, position: int = 0
    ) -> ContentObject:
        """Add a new object to a category mid-run (flash-crowd scenarios).

        The object is inserted at ``position`` in the category's rank
        order (0 = most popular), so within-category popularity
        re-ranks instantly: request draws are positional, and every
        workload's next draw over this category sees the new ordering.
        The ``rank`` fields of the displaced objects are *not* rewritten
        — they are frozen metadata recording the build-time rank, while
        position in ``Category.objects`` is what popularity sampling
        actually uses.
        """
        if not 0 <= category_id < len(self.categories):
            raise ConfigError(
                f"category {category_id} outside [0, {len(self.categories)})"
            )
        category = self.categories[category_id]
        position = max(0, min(position, category.size))
        obj = ContentObject(
            object_id=self._next_object_id,
            category_id=category_id,
            rank=position + 1,
            size_kbit=size_kbit,
        )
        self._next_object_id += 1
        self._objects[obj.object_id] = obj
        objects = (
            category.objects[:position] + (obj,) + category.objects[position:]
        )
        replacement = Category(
            category_id=category.category_id, rank=category.rank, objects=objects
        )
        self.categories = (
            self.categories[:category_id]
            + (replacement,)
            + self.categories[category_id + 1:]
        )
        return obj

    # ------------------------------------------------------------------
    @classmethod
    def build(
        cls,
        rng: RandomSource,
        num_categories: int,
        objects_per_category_min: int,
        objects_per_category_max: int,
        object_size_kbit: float,
    ) -> "Catalog":
        """Build a catalog per the paper's Table II.

        Category ``i`` (0-based id) has popularity rank ``i + 1`` and a
        uniform(min, max) number of objects, each of ``object_size_kbit``.
        """
        if num_categories <= 0:
            raise ConfigError(f"num_categories must be positive, got {num_categories}")
        if objects_per_category_min <= 0:
            raise ConfigError(
                f"objects_per_category_min must be positive, got {objects_per_category_min}"
            )
        if objects_per_category_max < objects_per_category_min:
            raise ConfigError(
                "objects_per_category range reversed: "
                f"[{objects_per_category_min}, {objects_per_category_max}]"
            )
        categories: List[Category] = []
        next_object_id = 0
        for category_id in range(num_categories):
            count = rng.uniform_int(
                objects_per_category_min, objects_per_category_max, stream="catalog"
            )
            objects = []
            for rank in range(1, count + 1):
                objects.append(
                    ContentObject(
                        object_id=next_object_id,
                        category_id=category_id,
                        rank=rank,
                        size_kbit=object_size_kbit,
                    )
                )
                next_object_id += 1
            categories.append(
                Category(category_id=category_id, rank=category_id + 1, objects=tuple(objects))
            )
        return cls(categories)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Catalog(categories={self.num_categories}, objects={self.num_objects})"
