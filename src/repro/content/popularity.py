"""Rank-based power-law popularity (the paper's factor *f* model).

The probability of rank ``r`` among ``n`` ranks is::

    p(r) = (1 / r**f) / sum_{i=1..n} (1 / i**f)

With ``f = 0`` the distribution is uniform; with ``f = 1`` it is
zipf-like.  The paper uses the same family for category popularity and
for object popularity within a category (both with f = 0.2 by default).

Sampling uses a precomputed cumulative table and binary search, because
workload generation draws from these distributions millions of times per
run.
"""

from __future__ import annotations

import bisect
import random
from typing import List

from repro.errors import ConfigError


class RankPopularity:
    """Power-law distribution over ranks ``1..n`` with skew factor ``f``."""

    def __init__(self, num_ranks: int, factor: float) -> None:
        if num_ranks <= 0:
            raise ConfigError(f"num_ranks must be positive, got {num_ranks}")
        if factor < 0:
            raise ConfigError(f"popularity factor must be >= 0, got {factor}")
        self.num_ranks = num_ranks
        self.factor = factor
        weights = [1.0 / (rank ** factor) for rank in range(1, num_ranks + 1)]
        total = sum(weights)
        self._probabilities = [w / total for w in weights]
        self._cumulative: List[float] = []
        acc = 0.0
        for p in self._probabilities:
            acc += p
            self._cumulative.append(acc)
        # Guard against floating point drift so bisect never falls off the end.
        self._cumulative[-1] = 1.0

    # ------------------------------------------------------------------
    def probability(self, rank: int) -> float:
        """Probability of ``rank`` (1-based)."""
        if not 1 <= rank <= self.num_ranks:
            raise ConfigError(f"rank {rank} outside [1, {self.num_ranks}]")
        return self._probabilities[rank - 1]

    def probabilities(self) -> List[float]:
        """All rank probabilities (copy), in rank order 1..n."""
        return list(self._probabilities)

    def sample_rank(self, rand: random.Random) -> int:
        """Draw a rank in ``1..n`` from the distribution."""
        point = rand.random()
        index = bisect.bisect_left(self._cumulative, point)
        if index >= self.num_ranks:  # point == 1.0 edge case
            index = self.num_ranks - 1
        return index + 1

    def sample_index(self, rand: random.Random) -> int:
        """Draw a 0-based index (``rank - 1``), handy for list lookups."""
        return self.sample_rank(rand) - 1

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"RankPopularity(n={self.num_ranks}, f={self.factor})"


class PopularityCache:
    """Memoized :class:`RankPopularity` instances keyed by ``(n, f)``.

    Categories frequently share the same object count, and every request
    draw needs the category's object distribution; caching avoids
    rebuilding cumulative tables in the hot path.
    """

    def __init__(self) -> None:
        self._cache: dict = {}

    def get(self, num_ranks: int, factor: float) -> RankPopularity:
        """The (cached) rank distribution for ``(num_ranks, factor)``."""
        key = (num_ranks, factor)
        dist = self._cache.get(key)
        if dist is None:
            dist = RankPopularity(num_ranks, factor)
            self._cache[key] = dist
        return dist

    def __len__(self) -> int:
        return len(self._cache)
