"""Per-peer object storage with capacity limits and exchange pinning.

The paper's model (§IV-A): each peer stores up to a maximum number of
objects; "in regular intervals, peers examine their storage and remove
random objects if the maximum number of objects is exceeded", and "a
peer postpones removing an object if it is used in an ongoing exchange".

:class:`ObjectStore` therefore allows *temporary* overflow (a completed
download is always stored) and exposes :meth:`eviction_candidates` for
the periodic cleanup to sample from.  Pinning is reference-counted
because one object can be served in several concurrent exchanges.
"""

from __future__ import annotations

import random
from typing import Dict, Iterable, List, Optional, Set

from repro.errors import StorageError


class ObjectStore:
    """A bounded set of fully-stored object ids with pin counts."""

    __slots__ = ("capacity", "_objects", "_pins")

    def __init__(self, capacity: int) -> None:
        if capacity <= 0:
            raise StorageError(f"storage capacity must be positive, got {capacity}")
        self.capacity = capacity
        self._objects: Set[int] = set()
        self._pins: Dict[int, int] = {}

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def __contains__(self, object_id: int) -> bool:
        return object_id in self._objects

    def __len__(self) -> int:
        return len(self._objects)

    @property
    def over_capacity(self) -> bool:
        """Whether the store currently holds more than its capacity."""
        return len(self._objects) > self.capacity

    @property
    def overflow(self) -> int:
        """How many objects above capacity are currently stored."""
        return max(0, len(self._objects) - self.capacity)

    def object_ids(self) -> List[int]:
        """Stored object ids in sorted order (stable for seeded sampling)."""
        return sorted(self._objects)

    def is_pinned(self, object_id: int) -> bool:
        """Whether the object is protected from eviction."""
        return self._pins.get(object_id, 0) > 0

    def pin_count(self, object_id: int) -> int:
        """Reference count of pins on one object (0 = evictable)."""
        return self._pins.get(object_id, 0)

    # ------------------------------------------------------------------
    # mutation
    # ------------------------------------------------------------------
    def add(self, object_id: int) -> None:
        """Store an object; duplicates indicate an upstream bug."""
        if object_id in self._objects:
            raise StorageError(f"object {object_id} already stored")
        self._objects.add(object_id)

    def add_if_absent(self, object_id: int) -> bool:
        """Store an object unless present; returns True if newly stored."""
        if object_id in self._objects:
            return False
        self._objects.add(object_id)
        return True

    def remove(self, object_id: int) -> None:
        """Delete an object; pinned objects must be unpinned first."""
        if object_id not in self._objects:
            raise StorageError(f"object {object_id} not stored, cannot remove")
        if self.is_pinned(object_id):
            raise StorageError(f"object {object_id} is pinned, cannot remove")
        self._objects.remove(object_id)

    def pin(self, object_id: int) -> None:
        """Protect an object from eviction (reference counted)."""
        if object_id not in self._objects:
            raise StorageError(f"cannot pin object {object_id}: not stored")
        self._pins[object_id] = self._pins.get(object_id, 0) + 1

    def unpin(self, object_id: int) -> None:
        """Release one pin reference; unpinning a non-pinned object raises."""
        count = self._pins.get(object_id, 0)
        if count <= 0:
            raise StorageError(f"cannot unpin object {object_id}: not pinned")
        if count == 1:
            del self._pins[object_id]
        else:
            self._pins[object_id] = count - 1

    # ------------------------------------------------------------------
    # eviction
    # ------------------------------------------------------------------
    def eviction_candidates(self) -> List[int]:
        """Unpinned stored objects, in sorted order."""
        return [oid for oid in sorted(self._objects) if not self.is_pinned(oid)]

    def evict_random_overflow(
        self, rand: random.Random, protect: Optional[Iterable[int]] = None
    ) -> List[int]:
        """Evict random unpinned objects until within capacity.

        ``protect`` lists additional object ids to spare this round
        (e.g. objects currently being served in non-exchange uploads may
        be sacrificed or spared depending on caller policy).  Returns
        the evicted ids.  If everything over capacity is pinned the
        store simply stays overfull until pins are released — matching
        the paper's "postpone removing" semantics.
        """
        protected = set(protect) if protect is not None else set()
        evicted: List[int] = []
        while self.over_capacity:
            candidates = [
                oid for oid in self.eviction_candidates() if oid not in protected
            ]
            if not candidates:
                break
            victim = rand.choice(candidates)
            self._objects.remove(victim)
            evicted.append(victim)
        return evicted

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"ObjectStore(stored={len(self._objects)}/{self.capacity}, "
            f"pinned={len(self._pins)})"
        )
