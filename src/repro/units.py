"""Unit conventions and conversion helpers.

The simulator uses a single canonical unit per dimension so that code
never has to guess what a number means:

* **time** — seconds (float)
* **bandwidth** — kbit/s (float)
* **data size** — kbit (float)

The paper reports download times in *minutes*, object sizes in *MB* and
session volumes in *kb*; the helpers below convert at the reporting
boundary only.  1 MB is taken as 2**20 bytes = 8192 kbit, matching the
paper's networking convention of kbit = 1000... — the paper is a 2003
systems paper and uses the classic "20 MB object, 10 kbit/s slot"
arithmetic; we pick MB = 8 * 1024 kbit and document it here so every
module agrees.
"""

from __future__ import annotations

#: kbit per megabyte (2**20 bytes * 8 bits / 1000 ≈ 8388.6; we use the
#: power-of-two convention 8 * 1024 = 8192 kbit consistently).
KBIT_PER_MB = 8 * 1024

#: Seconds per minute, for reporting download times the way the paper does.
SECONDS_PER_MINUTE = 60.0


def mb_to_kbit(megabytes: float) -> float:
    """Convert a size in MB to kbit."""
    return megabytes * KBIT_PER_MB


def kbit_to_mb(kbit: float) -> float:
    """Convert a size in kbit to MB."""
    return kbit / KBIT_PER_MB


def kbit_to_kb(kbit: float) -> float:
    """Convert kbit to kilobytes (the unit of the paper's Fig. 7 x-axis)."""
    return kbit / 8.0


def seconds_to_minutes(seconds: float) -> float:
    """Convert seconds to minutes (the unit of the paper's figures)."""
    return seconds / SECONDS_PER_MINUTE


def minutes_to_seconds(minutes: float) -> float:
    """Convert minutes to seconds."""
    return minutes * SECONDS_PER_MINUTE


def transfer_seconds(size_kbit: float, rate_kbit_per_s: float) -> float:
    """Time to move ``size_kbit`` at ``rate_kbit_per_s``.

    Raises :class:`ValueError` for non-positive rates because a zero rate
    would silently produce ``inf`` event times and hang the event loop.
    """
    if rate_kbit_per_s <= 0:
        raise ValueError(f"transfer rate must be positive, got {rate_kbit_per_s}")
    if size_kbit < 0:
        raise ValueError(f"transfer size must be non-negative, got {size_kbit}")
    return size_kbit / rate_kbit_per_s
