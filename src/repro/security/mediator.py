"""Trusted-mediator encrypted exchange (paper §III-B).

Against freeriding middlemen the paper proposes: encrypt both directions
of the exchange with per-sender secret keys known only to the sender and
a trusted mediator; include an (encrypted) *peer-of-origin* identifier
in each block's control header; after verifying sample blocks, the
mediator releases each key **to the peer named in the control header**
— so a middleman relaying ciphertext between two real traders never
obtains the keys and "his participation in the transfer would offer him
no benefit".

Keys and ciphers are abstract: an :class:`EncryptedBlock` is readable by
a peer iff that peer holds the sender's session key.  The incentive
analysis only needs that reachability relation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Set, Tuple

from repro.errors import ProtocolError


@dataclass(frozen=True)
class EncryptedBlock:
    """One block ciphered with the sender's session key.

    ``origin_id`` is the control-header peer-of-origin: the identity the
    *sender* stamped (and the mediator trusts, since the header is
    encrypted too).  ``carried_by`` tracks the path for diagnostics.
    """

    sender_id: int
    origin_id: int
    object_id: int
    index: int
    valid: bool = True
    carried_by: Tuple[int, ...] = ()


@dataclass
class _SessionSide:
    sender_id: int
    receiver_claimed: int
    blocks: List[EncryptedBlock] = field(default_factory=list)


class Mediator:
    """The trusted third party holding session keys until verification."""

    def __init__(self, sample_size: int = 2) -> None:
        if sample_size < 1:
            raise ProtocolError(f"sample size must be >= 1, got {sample_size}")
        self.sample_size = sample_size
        self._sessions: Dict[int, Tuple[_SessionSide, _SessionSide]] = {}
        self._next_session = 0
        #: peer -> set of sender ids whose key the peer received.
        self.keys_released: Dict[int, Set[int]] = {}

    # ------------------------------------------------------------------
    def open_session(self, side_a: Tuple[int, int], side_b: Tuple[int, int]) -> int:
        """Register an exchange; each side is (sender, claimed receiver)."""
        session_id = self._next_session
        self._next_session += 1
        self._sessions[session_id] = (
            _SessionSide(*side_a),
            _SessionSide(*side_b),
        )
        return session_id

    def record_block(self, session_id: int, block: EncryptedBlock) -> None:
        """Buffer one encrypted block on its sender's side of the session."""
        session = self._sessions.get(session_id)
        if session is None:
            raise ProtocolError(f"unknown session {session_id}")
        for side in session:
            if side.sender_id == block.sender_id:
                side.blocks.append(block)
                return
        raise ProtocolError(
            f"block from peer {block.sender_id} does not belong to session {session_id}"
        )

    def complete_exchange(self, session_id: int) -> Dict[int, Set[int]]:
        """Verify samples and release keys to the control-header origins.

        Returns ``{peer_id: {sender keys received}}`` for this session.
        A side whose sampled blocks are junk gets nothing released to it
        (neither side's key reaches a cheater's partner-view).
        """
        session = self._sessions.get(session_id)
        if session is None:
            raise ProtocolError(f"unknown session {session_id}")
        side_a, side_b = session
        released: Dict[int, Set[int]] = {}
        for side, other in ((side_a, side_b), (side_b, side_a)):
            if not side.blocks or not other.blocks:
                # No reciprocal stream: nothing was exchanged, so no key
                # leaves the mediator (this is what starves a middleman
                # who only relays one direction of a fabricated session).
                continue
            sample = side.blocks[: self.sample_size]
            if any(not block.valid for block in sample):
                continue  # this sender cheated: withhold its key entirely
            # The key to decrypt `side.sender`'s data goes to the peers
            # that the OTHER side's control headers name as origin — the
            # true trading counterparties, never a relaying middleman
            # (headers are encrypted, so a relay cannot rewrite them).
            recipients = {block.origin_id for block in other.blocks}
            for recipient in recipients:
                released.setdefault(recipient, set()).add(side.sender_id)
        for recipient, keys in released.items():
            self.keys_released.setdefault(recipient, set()).update(keys)
        return released

    def keys_for(self, peer_id: int) -> Set[int]:
        """The sender ids whose keys ``peer_id`` holds, as a *copy*.

        The internal release table is live mutable state; handing the
        set itself out would let a caller mint decryption rights by
        mutating it (the same leak class as the pre-PR-1
        ``LookupService.providers``).
        """
        return set(self.keys_released.get(peer_id, set()))

    def can_decrypt(self, peer_id: int, block: EncryptedBlock) -> bool:
        """Whether ``peer_id`` holds the key for this block's sender."""
        return block.sender_id in self.keys_released.get(peer_id, set())


class MediatedExchange:
    """Convenience driver: run one two-sided exchange to key release."""

    def __init__(self, mediator: Mediator, peer_a: int, peer_b: int) -> None:
        self.mediator = mediator
        self.peer_a = peer_a
        self.peer_b = peer_b
        self.session_id = mediator.open_session((peer_a, peer_b), (peer_b, peer_a))

    def transfer(self, sender_id: int, origin_id: int, object_id: int,
                 blocks: int, valid: bool = True) -> List[EncryptedBlock]:
        """Send ``blocks`` encrypted blocks from one side through the mediator."""
        sent = []
        for index in range(blocks):
            block = EncryptedBlock(
                sender_id=sender_id,
                origin_id=origin_id,
                object_id=object_id,
                index=index,
                valid=valid,
            )
            self.mediator.record_block(self.session_id, block)
            sent.append(block)
        return sent

    def settle(self) -> Dict[int, Set[int]]:
        """Complete the exchange: both sides' keys are released atomically."""
        return self.mediator.complete_exchange(self.session_id)
