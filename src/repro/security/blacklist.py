"""Local and cooperative blacklisting of cheaters (paper §III-B).

"Peers can locally blacklist cheating peers and refuse to serve them
later.  In a large and dynamic system this is likely to be ineffective
as cheaters may perform well enough even if they can cheat each peer
only once.  Cooperative blacklisting could help ... the problem
persists if it is easy for a peer to assume a new identity."

The models below expose exactly these dynamics: a cheap-pseudonym
cheater defeats both lists by re-registering; the cooperative list
amplifies one observation into network-wide refusal at the cost of
trusting reports.
"""

from __future__ import annotations

from typing import Dict, Set

from repro.errors import ProtocolError


class LocalBlacklist:
    """One peer's private list of identities it refuses to serve."""

    def __init__(self, owner_id: int) -> None:
        self.owner_id = owner_id
        self._banned: Set[int] = set()
        self.refusals = 0

    def report(self, peer_id: int) -> None:
        """Ban a peer locally (self-bans are protocol errors)."""
        if peer_id == self.owner_id:
            raise ProtocolError(f"peer {peer_id} cannot blacklist itself")
        self._banned.add(peer_id)

    def allows(self, peer_id: int) -> bool:
        """Whether the peer may be served; refused lookups are counted."""
        if peer_id in self._banned:
            self.refusals += 1
            return False
        return True

    def __len__(self) -> int:
        return len(self._banned)


class CooperativeBlacklist:
    """A shared list: a threshold of distinct reporters bans an identity.

    The threshold guards against a single malicious reporter banning
    honest peers — the extra mechanism (and attack surface) the paper
    warns about.
    """

    def __init__(self, report_threshold: int = 2) -> None:
        if report_threshold < 1:
            raise ProtocolError(
                f"report threshold must be >= 1, got {report_threshold}"
            )
        self.report_threshold = report_threshold
        self._reports: Dict[int, Set[int]] = {}
        self.refusals = 0

    def report(self, reporter_id: int, peer_id: int) -> None:
        """File one reporter's complaint against ``peer_id``."""
        if reporter_id == peer_id:
            raise ProtocolError("self-reports are ignored by design")
        self._reports.setdefault(peer_id, set()).add(reporter_id)

    def is_banned(self, peer_id: int) -> bool:
        """Whether distinct complaints reached the ban threshold."""
        reports = self._reports.get(peer_id)
        return reports is not None and len(reports) >= self.report_threshold

    def allows(self, peer_id: int) -> bool:
        """Whether the peer may be served; refused lookups are counted."""
        if self.is_banned(peer_id):
            self.refusals += 1
            return False
        return True

    def reporters_of(self, peer_id: int) -> Set[int]:
        """The distinct reporters that complained about ``peer_id``."""
        return set(self._reports.get(peer_id, set()))


def cheap_pseudonym_gain(
    num_victims: int, blacklist_shared: bool, identities_available: int
) -> int:
    """How many one-block cheats a pseudonym-switching cheater lands.

    With local lists a cheater can hit every victim once *per identity*;
    with a shared list, one hit per identity total.  This is the
    arithmetic behind the paper's scepticism (citing Friedman &
    Resnick's "social cost of cheap pseudonyms").
    """
    if num_victims < 0 or identities_available < 0:
        raise ProtocolError("counts must be non-negative")
    if blacklist_shared:
        return identities_available
    return num_victims * identities_available
