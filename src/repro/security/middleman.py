"""The freeriding middleman and the Table I / Fig. 3 scenario (§III-B).

Attack: peers A (has x, wants y) and B (has y, wants x) could exchange
directly.  Middleman M — who wants x — tells A "I have y" and B "I have
x", then relays blocks between them, enjoying exchange priority while
contributing nothing.  With the trusted-mediator protocol, M only ever
holds ciphertext: the keys go to the control-header origins A and B.

The module also reproduces Table I / Fig. 3: when a peer genuinely has
no exchangeable object but spare upload capacity, a *non-ring* mixed
object-capacity exchange strictly improves on the pure pairwise
exchange — peer A ends up receiving x at rate 10 instead of 5, and
peer B gets y at rate 5 instead of not participating at all.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from repro.errors import ProtocolError
from repro.security.mediator import EncryptedBlock, Mediator


@dataclass
class MiddlemanOutcome:
    """What each party can actually read after a relayed exchange."""

    blocks_relayed: int
    middleman_readable: int
    endpoints_readable: int

    @property
    def attack_succeeded(self) -> bool:
        """Whether the middleman could read any relayed content."""
        return self.middleman_readable > 0


def run_middleman_attack(
    blocks: int = 8, use_mediator: bool = True
) -> MiddlemanOutcome:
    """Drive the relay attack with or without the mediator protocol.

    Without the mediator, everything the middleman relays is plaintext:
    it reads all ``blocks`` of the object it wanted.  With the mediator,
    the keys are released to the peers named in the control headers —
    the honest endpoints — and the middleman reads nothing.
    """
    if blocks < 1:
        raise ProtocolError(f"blocks must be >= 1, got {blocks}")
    peer_a, peer_b, middleman = 1, 2, 99
    if not use_mediator:
        return MiddlemanOutcome(
            blocks_relayed=2 * blocks,
            middleman_readable=blocks,  # it wanted x; it saw all of x
            endpoints_readable=2 * blocks,
        )
    mediator = Mediator(sample_size=2)
    # The middleman brokers what looks like an exchange, but every block
    # it relays still carries the true sender's encrypted control header:
    # the x-stream says sender/origin A, the y-stream says sender/origin
    # B.  From the mediator's viewpoint the session's two streams are
    # therefore A's and B's, whatever M claims.
    session = mediator.open_session((peer_a, middleman), (peer_b, middleman))
    for index in range(blocks):
        mediator.record_block(
            session,
            EncryptedBlock(
                sender_id=peer_a,
                origin_id=peer_a,
                object_id=10,
                index=index,
                carried_by=(middleman,),
            ),
        )
        mediator.record_block(
            session,
            EncryptedBlock(
                sender_id=peer_b,
                origin_id=peer_b,
                object_id=20,
                index=index,
                carried_by=(middleman,),
            ),
        )
    released = mediator.complete_exchange(session)
    middleman_keys = len(released.get(middleman, ()))
    endpoint_keys = len(released.get(peer_a, ())) + len(released.get(peer_b, ()))
    return MiddlemanOutcome(
        blocks_relayed=2 * blocks,
        middleman_readable=middleman_keys * blocks,
        endpoints_readable=endpoint_keys * blocks,
    )


# ---------------------------------------------------------------------------
# Table I / Fig. 3 — mixed object-capacity exchange
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class ScenarioPeer:
    """One row of Table I."""

    name: str
    upload: float
    has: str
    wants: str


def table1_scenario() -> List[ScenarioPeer]:
    """The paper's Table I population, verbatim."""
    return [
        ScenarioPeer("A", 10.0, "-", "x"),
        ScenarioPeer("B", 5.0, "x", "y"),
        ScenarioPeer("C", 10.0, "y", "x"),
        ScenarioPeer("D", 10.0, "y", "x"),
    ]


def capacity_exchange_rates() -> Dict[str, Dict[str, float]]:
    """Receive rates under the pure vs the mixed exchange (Fig. 3).

    Pure pairwise exchange: B trades x for y with C (or D) — both
    constrained by B's 5-unit uplink; A cannot participate at all.

    Mixed object-capacity exchange (Fig. 3): B sends x to A (5 units);
    A forwards x to C and D (5 units each); C and D each send y to B
    (5 units each).  The paper's outcome: B now receives y at rate 10
    (both C and D feed it) instead of 5, and A receives x at rate 5
    "when he would not be able to participate at all in a pure object
    exchange"; C and D do no worse than under the pure exchange.
    """
    pure = {
        "A": {"x": 0.0},
        "B": {"y": 5.0},
        "C": {"x": 5.0},
        "D": {"x": 0.0},
    }
    # Wait-free bookkeeping of Fig. 3's arrows:
    #   B -> A : x at 5      A -> C : x at 5     A -> D : x at 5
    #   C -> B : y at 5      D -> B : y at 5
    mixed = {
        "A": {"x": 5.0},
        "B": {"y": 10.0},
        "C": {"x": 5.0},
        "D": {"x": 5.0},
    }
    return {"pure": pure, "mixed": mixed}


def mixed_exchange_is_pareto_improvement() -> bool:
    """No peer receives less, and at least one receives more (Fig. 3)."""
    rates = capacity_exchange_rates()
    improved = False
    for peer, pure_rates in rates["pure"].items():
        for obj, pure_rate in pure_rates.items():
            mixed_rate = rates["mixed"][peer][obj]
            if mixed_rate < pure_rate:
                return False
            if mixed_rate > pure_rate:
                improved = True
    return improved
