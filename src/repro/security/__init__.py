"""Cheating and defenses (paper §III-B).

The paper analyses four protection mechanisms for the exchange economy;
each has a model here:

* synchronous block validation against a trusted checksum source
  (:mod:`repro.security.checksums`),
* windowed exchange pacing that bounds a cheater's haul to the window
  size (:mod:`repro.security.windows`),
* local and cooperative blacklists (:mod:`repro.security.blacklist`),
* adversarial peer populations driving the above inside full runs —
  whitewashers, sybil rings, collusion cliques
  (:mod:`repro.security.adversaries`),
* the trusted-mediator encrypted exchange that defeats freeriding
  middlemen (:mod:`repro.security.mediator`), and
* the middleman attack itself plus the Table I / Fig. 3 non-ring
  mixed object-capacity exchange (:mod:`repro.security.middleman`).

Cryptography is modelled abstractly: what matters for incentives is
*who can decrypt what after which checks*, not the ciphers themselves.
"""

from repro.security.adversaries import ADVERSARIES, AdversaryState, SybilRing
from repro.security.blacklist import CooperativeBlacklist, LocalBlacklist
from repro.security.checksums import BlockValidator, ChecksumService
from repro.security.mediator import EncryptedBlock, Mediator, MediatedExchange
from repro.security.middleman import (
    MiddlemanOutcome,
    capacity_exchange_rates,
    run_middleman_attack,
    table1_scenario,
)
from repro.security.windows import WindowedExchange, max_exchange_rate

__all__ = [
    "ADVERSARIES",
    "AdversaryState",
    "BlockValidator",
    "ChecksumService",
    "CooperativeBlacklist",
    "EncryptedBlock",
    "LocalBlacklist",
    "MediatedExchange",
    "Mediator",
    "MiddlemanOutcome",
    "SybilRing",
    "WindowedExchange",
    "capacity_exchange_rates",
    "max_exchange_rate",
    "run_middleman_attack",
    "table1_scenario",
]
