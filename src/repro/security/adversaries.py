"""Adversarial peer populations (paper §V).

The paper's §V security discussion names the attacks every
differential-service mechanism must survive: *cheap pseudonyms* (a
detected cheater re-registers under a fresh identity and its standing
debt evaporates — Friedman & Resnick's whitewashing), *sybil* identity
farms (one principal controls many identities that vouch for each
other), and *collusion* (a clique that satisfies the mechanism's
letter — reciprocating internally — while contributing nothing to
outsiders).  The security primitives under :mod:`repro.security` model
the defenses in isolation; this module drives them with hostile
*populations* inside a full simulation, so the exchange, credit and
participation mechanisms can be ranked by how much honest peers lose.

Three attacker kinds, selected per peer class via
:attr:`repro.population.PeerClassSpec.adversary`:

* ``"whitewash"`` — free-riders that, driven by
  :class:`~repro.scenario.IdentityWhitewash` events, periodically retire
  and re-arrive under a fresh peer id (ids are never reused — the
  :class:`~repro.core.peer_table.PeerStateTable` monotonic-id
  invariant), shedding any blacklist entries against the old identity.
  They do not fake participation: the attack's whole value is that a
  fresh identity is priced by the mechanism itself — worthless under
  exchange, bottom-of-queue under participation, but served on patience
  alone under eMule-style credit.
* ``"sybil"`` — one principal's identity farm: a
  :class:`~repro.scenario.SybilSpawn` event spawns ``count`` identities
  at once and binds them into a :class:`SybilRing` whose members
  cross-report standing (the ring's *best* honest level shields every
  member) and fake participation for each other.
* ``"collusion"`` — sharers that serve only their own clique: every
  request from outside the clique is refused at admission, so the
  clique satisfies the exchange token pass internally while extracting
  from honest peers.

The defense modelled here is the paper's cooperative blacklist: honest
providers that currently hold a suspect's requests act as witnesses in
a periodic audit, and once ``report_threshold`` distinct witnesses have
complained, every honest peer refuses the identity at admission
(:meth:`AdversaryState.allows`, called from
:meth:`~repro.network.peer.Peer.register_request_at`).  Whitewashing
defeats the list exactly as §V predicts — the fresh identity starts
clean, counted as ``adversary.blacklist_evasion``.

Determinism: this layer draws no randomness of its own.  Scenario-driven
attacks (whitewash target sampling) draw from the dedicated
``"adversary"`` RNG stream owned by the
:class:`~repro.scenario.ScenarioDirector`; the audit walks peers in
sorted-id order.  A run with no adversary classes constructs no
:class:`AdversaryState` and is bit-identical to a pre-adversary run.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, List, Optional, Set, Tuple

from repro.errors import ProtocolError
from repro.security.blacklist import CooperativeBlacklist

if TYPE_CHECKING:  # pragma: no cover - hints only
    from repro.network.peer import Peer
    from repro.population import ResolvedPeerClass
    from repro.simulation import FileSharingSimulation

#: Attacker kinds accepted by :attr:`repro.population.PeerClassSpec.adversary`.
ADVERSARIES = ("whitewash", "sybil", "collusion")

#: Distinct honest witnesses required before the cooperative blacklist
#: bans an identity (paper §III-B: a threshold guards against a single
#: malicious reporter banning honest peers).
REPORT_THRESHOLD = 2

#: An identity becomes suspect once its honest participation level sits
#: below this while it claims the maximum (the KaZaA cheat's visible
#: claim/behaviour mismatch).
SUSPECT_LEVEL = 0.1


class SybilRing:
    """One principal's identity farm.

    The first (lowest-id) member is the principal.  While the ring is
    active every member fakes participation and the ring cross-reports
    standing: :meth:`standing` returns the *best* member's honest level,
    so one token upload by any identity shields the whole farm from the
    audit's claim/behaviour check.  :meth:`~AdversaryState.teardown_ring`
    restores each member's honest accounting.
    """

    __slots__ = ("principal_id", "member_ids", "active")

    def __init__(self, member_ids) -> None:
        members = sorted(member_ids)
        if len(members) < 2:
            raise ProtocolError(
                f"a sybil ring needs >= 2 identities, got {len(members)}"
            )
        if len(set(members)) != len(members):
            raise ProtocolError(f"duplicate sybil member ids: {members}")
        self.principal_id = members[0]
        self.member_ids: Tuple[int, ...] = tuple(members)
        self.active = True

    def __len__(self) -> int:
        return len(self.member_ids)


class AdversaryState:
    """All live attacker bookkeeping for one simulation run.

    Created lazily by the simulation when the first adversarial peer
    class enrolls a peer, and published on the context as
    ``ctx.adversary`` so the admission gate in
    :meth:`~repro.network.peer.Peer.register_request_at` can consult it
    (a ``None`` context slot is the only cost for non-adversarial runs).
    """

    def __init__(self, sim: "FileSharingSimulation") -> None:
        self.sim = sim
        self.ctx = sim.ctx
        self.blacklist = CooperativeBlacklist(report_threshold=REPORT_THRESHOLD)
        #: peer id -> attacker kind, for every identity ever enrolled
        #: (retired whitewash identities stay recorded — the audit skips
        #: departed peers, and tests assert ids are never reused).
        self.kind_of: Dict[int, str] = {}
        #: Peer-class names that enrolled at least one adversary.
        self.class_names: Set[str] = set()
        self.rings: List[SybilRing] = []
        self._ring_of: Dict[int, SybilRing] = {}
        #: Collusion cliques, one shared member set per peer class (the
        #: class *is* the conspiracy); every member maps to the same set
        #: object, so later enrollments extend every member's view.
        self._cliques: Dict[str, Set[int]] = {}
        self._clique_of: Dict[int, Set[int]] = {}
        self._banned_already: Set[int] = set()

    # ------------------------------------------------------------------
    # enrollment (simulation assembly)
    # ------------------------------------------------------------------
    def enroll(self, peer: "Peer", peer_class: "ResolvedPeerClass") -> None:
        """Wire one newly created peer into its class's attack."""
        kind = peer_class.adversary
        if kind not in ADVERSARIES:
            raise ProtocolError(f"unknown adversary kind {kind!r}")
        self.kind_of[peer.peer_id] = kind
        self.class_names.add(peer_class.name)
        if kind == "sybil":
            # Ring members run the cheap KaZaA cheat — claim the maximum
            # participation level regardless of the config's global
            # freeloaders_fake_participation switch — until teardown.
            # Whitewashers deliberately do NOT cheat: theirs is a pure
            # identity-churn attack, so each mechanism prices the fresh
            # identity by its own rules (eMule credit admits it at
            # modifier 1 via patience; participation starts it at the
            # bottom; exchange ignores identity entirely).
            peer.participation.cheats = True
        elif kind == "collusion":
            clique = self._cliques.setdefault(peer_class.name, set())
            clique.add(peer.peer_id)
            self._clique_of[peer.peer_id] = clique

    def clique_of(self, peer_id: int) -> Optional[Set[int]]:
        """A *copy* of the peer's collusion clique, or ``None``."""
        clique = self._clique_of.get(peer_id)
        return set(clique) if clique is not None else None

    # ------------------------------------------------------------------
    # admission gate (Peer.register_request_at)
    # ------------------------------------------------------------------
    def allows(self, provider: "Peer", requester_id: int) -> bool:
        """Whether ``provider`` admits a request from ``requester_id``.

        Two refusal modes: colluders refuse everyone outside their
        clique (the attack), and honest providers refuse identities the
        cooperative blacklist has banned (the defense).  Adversaries do
        not enforce the blacklist — cheaters have no incentive to spend
        slots policing other cheaters.
        """
        clique = self._clique_of.get(provider.peer_id)
        if clique is not None and requester_id not in clique:
            self.ctx.metrics.count("adversary.collusion_refusal")
            return False
        if provider.peer_id not in self.kind_of and self.blacklist.is_banned(
            requester_id
        ):
            self.ctx.metrics.count("adversary.blacklist_hit")
            return False
        return True

    # ------------------------------------------------------------------
    # attacks (scenario-driven)
    # ------------------------------------------------------------------
    def whitewash(self, peer: "Peer") -> "Peer":
        """Retire ``peer`` and re-arrive as a fresh identity of its class.

        The cheap-pseudonym move: the fresh id inherits nothing — no
        blacklist entries, no credit debt, no participation history.
        Reuses the scenario layer's :meth:`retire_peer`/:meth:`spawn_peer`
        primitives, so id allocation stays monotonic and the teardown is
        the audited departure path.
        """
        if self.kind_of.get(peer.peer_id) != "whitewash":
            raise ProtocolError(
                f"peer {peer.peer_id} is not a whitewashing adversary"
            )
        if self.blacklist.is_banned(peer.peer_id):
            self.ctx.metrics.count("adversary.blacklist_evasion")
        peer_class = self.sim.class_by_name(peer.class_name)
        self.sim.retire_peer(peer)
        fresh = self.sim.spawn_peer(peer_class)
        self.ctx.metrics.count("adversary.whitewash")
        return fresh

    def form_ring(self, members) -> SybilRing:
        """Bind freshly spawned sybil identities into one ring."""
        for peer in members:
            if self.kind_of.get(peer.peer_id) != "sybil":
                raise ProtocolError(
                    f"peer {peer.peer_id} is not a sybil adversary"
                )
        ring = SybilRing([peer.peer_id for peer in members])
        self.rings.append(ring)
        for peer in members:
            self._ring_of[peer.peer_id] = ring
        return ring

    def teardown_ring(self, ring: SybilRing) -> None:
        """Dissolve a ring: every member returns to honest accounting.

        The members stop faking participation (``cheats = False``), so
        their claimed level equals their honest level again — the
        property the ring-teardown tests pin.
        """
        ring.active = False
        for peer_id in ring.member_ids:
            self._ring_of.pop(peer_id, None)
            peer = self.ctx.peers.get(peer_id)
            if peer is not None:
                peer.participation.cheats = False

    def standing(self, peer_id: int) -> float:
        """The audit-visible honest level of one identity.

        Active sybil rings cross-report: every member shows the ring's
        best member's honest level.  Everyone else shows their own.
        """
        ring = self._ring_of.get(peer_id)
        if ring is not None and ring.active:
            best = 0.0
            for member_id in ring.member_ids:
                peer = self.ctx.peers.get(member_id)
                if peer is not None:
                    best = max(best, peer.participation.honest_level)
            return best
        peer = self.ctx.peer(peer_id)
        return peer.participation.honest_level

    # ------------------------------------------------------------------
    # the defense: periodic cooperative-blacklist audit
    # ------------------------------------------------------------------
    def audit(self) -> int:
        """One detection pass; returns the number of fresh bans.

        For every live standing-laundering identity (whitewash or sybil)
        whose audit-visible honest level sits below
        :data:`SUSPECT_LEVEL` after it extracted at least one object's
        worth of data, the honest providers currently holding its
        requests act as witnesses and file cooperative-blacklist
        reports.  Draws no randomness; iterates in sorted peer-id order.
        """
        min_kbit = self.ctx.config.object_size_kbit
        fresh_bans = 0
        for peer_id in sorted(self.kind_of):
            if self.kind_of[peer_id] not in ("whitewash", "sybil"):
                continue
            peer = self.ctx.peers.get(peer_id)
            if peer is None or peer.departed:
                continue
            if peer.participation.downloaded_kbit < min_kbit:
                continue
            if self.standing(peer_id) >= SUSPECT_LEVEL:
                continue
            for witness_id in self._witnesses(peer):
                self.blacklist.report(witness_id, peer_id)
            if (
                self.blacklist.is_banned(peer_id)
                and peer_id not in self._banned_already
            ):
                self._banned_already.add(peer_id)
                self.ctx.metrics.count("adversary.blacklisted")
                fresh_bans += 1
        return fresh_bans

    def _witnesses(self, peer: "Peer") -> List[int]:
        """Honest providers currently holding ``peer``'s requests.

        Only peers the suspect is actively soliciting can observe the
        claim/behaviour mismatch; adversaries never witness (a cheater
        reporting a cheater would launder credibility into the list).
        """
        observed: Set[int] = set()
        for download in peer.pending.values():
            observed |= download.registered_at
            observed.update(download.transfers)
        return sorted(
            witness_id
            for witness_id in observed
            if witness_id not in self.kind_of and witness_id != peer.peer_id
        )
