"""Windowed synchronous exchange (paper §III-B).

With fully synchronous one-block-at-a-time validation, the exchange
rate is capped at ``block_size / rtt`` — possibly below the slot
capacity — so the paper suggests a window protocol: "start the exchange
with a small window and increase after a number of rounds", trading
throughput against risk (a cheater's maximum haul equals the current
window).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.errors import ProtocolError
from repro.security.checksums import Block, BlockValidator


def max_exchange_rate(block_kbit: float, rtt_seconds: float, window: int = 1) -> float:
    """Achievable exchange rate in kbit/s for a given window.

    The paper's bound with window 1: ``S_block / T_rtt``; a window of w
    in-flight blocks scales it w-fold (until the slot rate caps it —
    the caller compares against the slot capacity).
    """
    if block_kbit <= 0:
        raise ProtocolError(f"block size must be positive, got {block_kbit}")
    if rtt_seconds <= 0:
        raise ProtocolError(f"rtt must be positive, got {rtt_seconds}")
    if window < 1:
        raise ProtocolError(f"window must be >= 1, got {window}")
    return window * block_kbit / rtt_seconds


def window_for_rate(
    block_kbit: float, rtt_seconds: float, target_rate_kbit: float
) -> int:
    """Smallest window that fills ``target_rate_kbit`` (e.g. slot rate)."""
    if target_rate_kbit <= 0:
        raise ProtocolError(f"target rate must be positive, got {target_rate_kbit}")
    per_window = max_exchange_rate(block_kbit, rtt_seconds, window=1)
    window = 1
    while window * per_window < target_rate_kbit:
        window *= 2
    return window


@dataclass
class RoundResult:
    """Outcome of one windowed exchange round."""

    round_index: int
    window: int
    blocks_sent: int
    junk_received: int
    aborted: bool


class WindowedExchange:
    """One side of a windowed exchange against a possibly-cheating peer.

    Starts at ``initial_window`` and doubles after every fully-valid
    round up to ``max_window``.  Junk in a round aborts the exchange;
    the cheater's haul is whatever we sent in that round (== window).
    """

    def __init__(
        self,
        validator: BlockValidator,
        initial_window: int = 1,
        max_window: int = 8,
    ) -> None:
        if initial_window < 1 or max_window < initial_window:
            raise ProtocolError(
                f"bad window bounds [{initial_window}, {max_window}]"
            )
        self._validator = validator
        self.window = initial_window
        self.max_window = max_window
        self.rounds: List[RoundResult] = []
        self.blocks_lost_to_cheater = 0
        self.aborted = False

    def run_round(self, received: List[Block]) -> RoundResult:
        """Validate one round's incoming blocks; grow or abort."""
        if self.aborted:
            raise ProtocolError("exchange already aborted")
        if len(received) > self.window:
            raise ProtocolError(
                f"peer sent {len(received)} blocks into a window of {self.window}"
            )
        junk = sum(1 for block in received if not self._validator.validate(block))
        result = RoundResult(
            round_index=len(self.rounds),
            window=self.window,
            blocks_sent=self.window,
            junk_received=junk,
            aborted=junk > 0,
        )
        self.rounds.append(result)
        if junk > 0:
            # We shipped a full window against junk: that is the haul.
            self.blocks_lost_to_cheater += self.window
            self.aborted = True
        else:
            self.window = min(self.max_window, self.window * 2)
        return result

    @property
    def total_rounds(self) -> int:
        """How many windowed rounds the exchange ran."""
        return len(self.rounds)

    def maximum_cheater_haul(self) -> int:
        """Worst-case blocks a cheater can take: the final window size.

        A cheater must play honestly to grow the window ("a cheater
        would need to have at least a few real blocks in order to
        increase the window"), so its haul is bounded by the window it
        defects at.
        """
        return self.window


def simulate_defection(
    defect_round: int,
    initial_window: int = 1,
    max_window: int = 8,
    service: Optional["object"] = None,
) -> WindowedExchange:
    """Drive an exchange where the peer defects at ``defect_round``.

    Returns the finished exchange; useful for tabulating haul vs. the
    honesty investment (rounds of real blocks) a cheater must make.
    """
    from repro.security.checksums import ChecksumService

    checksums = service if service is not None else ChecksumService()
    exchange = WindowedExchange(
        BlockValidator(checksums),
        initial_window=initial_window,
        max_window=max_window,
    )
    round_index = 0
    while not exchange.aborted:
        cheat_now = round_index >= defect_round
        blocks = [
            Block(object_id=1, index=round_index * max_window + i, valid=not cheat_now)
            for i in range(exchange.window)
        ]
        exchange.run_round(blocks)
        round_index += 1
        if round_index > defect_round + 64:  # honest forever: stop the tabletop
            break
    return exchange
