"""Block validation against a trusted checksum source.

"It is possible to limit the damage done by cheating by exchanging
blocks synchronously and validating each received block before
transferring the next one.  This requires a trustworthy source of
information for the actual valid checksums of the blocks being probed."
(§III-B)

The model: a :class:`ChecksumService` knows the true digest of every
(object, block) pair; a :class:`BlockValidator` checks received blocks
against it.  Blocks carry a ``valid`` payload bit — honest peers send
valid blocks, cheaters send junk — so "digest" comparison reduces to
that bit plus bookkeeping of how much junk slipped through before
detection.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass

from repro.errors import ProtocolError


@dataclass(frozen=True)
class Block:
    """One transferred block: identity plus payload validity."""

    object_id: int
    index: int
    valid: bool = True
    sender_id: int = -1


class ChecksumService:
    """Trusted oracle of block digests (e.g. published file hashes)."""

    def __init__(self, salt: str = "repro") -> None:
        self._salt = salt
        self.digests_served = 0

    def digest(self, object_id: int, index: int) -> str:
        """The authoritative digest of a block."""
        self.digests_served += 1
        payload = f"{self._salt}:{object_id}:{index}:valid"
        return hashlib.sha256(payload.encode("utf-8")).hexdigest()

    def digest_of_block(self, block: Block) -> str:
        """The digest the given block's payload actually hashes to."""
        marker = "valid" if block.valid else "junk"
        payload = f"{self._salt}:{block.object_id}:{block.index}:{marker}"
        return hashlib.sha256(payload.encode("utf-8")).hexdigest()


class BlockValidator:
    """Per-session synchronous validation: check, then request the next.

    Tracks how many junk blocks a cheater delivered before being caught;
    with window size 1 (fully synchronous) the maximum benefit for a
    cheater is exactly one block (§III-B).
    """

    def __init__(self, service: ChecksumService) -> None:
        self._service = service
        self.blocks_checked = 0
        self.junk_detected = 0
        self.valid_accepted = 0

    def validate(self, block: Block) -> bool:
        """Check one block against the trusted digest; counts the outcome."""
        if block.index < 0:
            raise ProtocolError(f"invalid block index {block.index}")
        self.blocks_checked += 1
        expected = self._service.digest(block.object_id, block.index)
        actual = self._service.digest_of_block(block)
        if expected == actual:
            self.valid_accepted += 1
            return True
        self.junk_detected += 1
        return False

    @property
    def detection_rate(self) -> float:
        """Fraction of checked blocks that turned out to be junk."""
        if self.blocks_checked == 0:
            return 0.0
        return self.junk_detected / self.blocks_checked
