"""Shared simulation context.

:class:`SimContext` bundles the services every component needs — the
event engine, configuration, RNG, lookup oracle, metrics sink and the
peer registry — so constructors take one argument instead of six and
tests can assemble partial contexts cheaply.
"""

from __future__ import annotations

import math
from typing import TYPE_CHECKING, Dict, Optional

from repro.config import SimulationConfig
from repro.core.peer_table import PeerStateTable
from repro.metrics.collectors import MetricsCollector
from repro.metrics.columnar import ColumnarCollector
from repro.metrics.summary import AnyCollector
from repro.sim.counters import PerfCounters
from repro.sim.engine import Engine
from repro.sim.rng import RandomSource

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, hints only
    from repro.content.catalog import Catalog
    from repro.network.lookup import LookupService
    from repro.network.peer import Peer
    from repro.security.adversaries import AdversaryState


class SimContext:
    """Service locator for one simulation run."""

    def __init__(
        self,
        config: SimulationConfig,
        engine: Optional[Engine] = None,
        rng: Optional[RandomSource] = None,
        metrics: Optional["AnyCollector"] = None,
    ) -> None:
        self.config = config
        #: Per-subsystem perf counters (see :mod:`repro.sim.counters`);
        #: disabled unless the config asks — every instrumented path
        #: guards on the flag, so a disabled set costs one branch.  When
        #: a prebuilt engine is passed in, its counter set (if any) wins
        #: so engine-internal tallies and context tallies stay one set.
        if engine is not None:
            self.engine = engine
            self.counters = (
                engine.counters
                if engine.counters is not None
                else PerfCounters(enabled=config.perf_counters)
            )
        else:
            self.counters = PerfCounters(enabled=config.perf_counters)
            self.engine = Engine(counters=self.counters)
        self.rng = rng if rng is not None else RandomSource(config.seed)
        if metrics is not None:
            self.metrics: "AnyCollector" = metrics
        elif config.metrics_backend == "columnar":
            self.metrics = ColumnarCollector(
                retention=config.metrics_retention,
                warmup=config.warmup,
                perf_counters=self.counters,
            )
        else:
            self.metrics = MetricsCollector()
        self.peers: Dict[int, "Peer"] = {}
        #: Columnar mirror of scan-relevant peer state (see
        #: :mod:`repro.core.peer_table`); peers push updates here from
        #: their own mutation points.
        self.peer_table = PeerStateTable()
        self.catalog: Optional["Catalog"] = None
        self.lookup: Optional["LookupService"] = None
        #: Attacker bookkeeping (see :mod:`repro.security.adversaries`),
        #: set by the simulation iff some peer class declares an
        #: ``adversary`` kind.  ``None`` for every honest run — the
        #: admission gate's single ``is None`` check is the only cost.
        self.adversary: Optional["AdversaryState"] = None
        self._ring_counter = 0
        self._blocks_cache: Dict[int, int] = {}

    @property
    def now(self) -> float:
        """Current simulated time in seconds (the engine's clock)."""
        return self.engine.now

    def peer(self, peer_id: int) -> "Peer":
        """Peer lookup; a missing id is always a bug, so let KeyError fly."""
        return self.peers[peer_id]

    def next_ring_id(self) -> int:
        """Monotonic ring identifiers for metrics and debugging."""
        self._ring_counter += 1
        return self._ring_counter

    def blocks_for(self, object_id: int) -> int:
        """Blocks needed for one object (memoized: sizes are immutable).

        Sits on the scheduler/validation hot path via
        :meth:`~repro.network.peer.Peer.available_blocks`, so the
        catalog lookup and ceiling division run once per object, not
        once per call.
        """
        blocks = self._blocks_cache.get(object_id)
        if blocks is None:
            size_kbit = self.catalog.object(object_id).size_kbit
            blocks = max(1, math.ceil(size_kbit / self.config.block_size_kbit))
            self._blocks_cache[object_id] = blocks
        return blocks

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"SimContext(peers={len(self.peers)}, t={self.engine.now:.1f})"
