"""Ring search: finding feasible n-way exchanges.

"Let G be the directed graph whose vertices are nodes in the
peer-to-peer system, and whose labeled edges represent requests ... any
cycle of length n in G represents a feasible n-way exchange" (§III-A).

A peer P searches its *composite request tree* — its IRQ entries plus
the tree snapshots they carry — for any peer X that provides an object P
wants.  X at composite depth *d* (root = depth 1) closes a ring of *d*
peers.  Ownership knowledge comes from provider lists (the paper: P
"can use the original provider list to compute a cycle containing a
peer Pj even if it did not originally transmit a request to Pj").

The search here is a set intersection per wanted object, against the
IRQ's inverted peer index, so its cost is proportional to the number of
*hits*, not the tree size.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, Dict, Iterable, List, Optional, Set

from repro.core.peer_table import BITSET_MIN
from repro.core.request_tree import Path

if TYPE_CHECKING:  # pragma: no cover - hints only
    from repro.core.irq import IncomingRequestQueue, RequestEntry
    from repro.core.peer_table import PeerStateTable


class RingCandidate:
    """A feasible ring: a tree path plus the closing wanted object.

    ``path[i]`` is ``(peer_id, object_id)`` — the object that peer
    requested from its predecessor (the search root for ``i == 0``).
    The ring has ``len(path) + 1`` members: the searching peer plus the
    path peers; the last path peer provides ``want_object_id`` back to
    the searcher.
    """

    __slots__ = ("want_object_id", "path", "entry", "size")

    def __init__(self, want_object_id: int, path: Path, entry: "RequestEntry") -> None:
        self.want_object_id = want_object_id
        self.path = path
        self.entry = entry  # the IRQ entry the path came from (liveness check)
        # Ring size if committed: the path plus the searching peer.  A
        # plain attribute, not a property — the policy layer reads it
        # per candidate per ordering pass, millions of times per run.
        self.size = len(path) + 1

    @property
    def closing_peer_id(self) -> int:
        """The peer that will provide the wanted object."""
        return self.path[-1][0]

    def peers(self) -> List[int]:
        """Peer ids along the candidate path (closing peer last)."""
        return [step[0] for step in self.path]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"RingCandidate(size={self.size}, want={self.want_object_id}, "
            f"via={self.peers()})"
        )


def path_is_usable(path: Path, searcher_id: int, max_ring: int) -> bool:
    """Reject paths that cannot close into a valid ring for ``searcher_id``.

    Paths with duplicate peers were already filtered at index-build
    time; here we additionally reject paths through the searcher itself
    (a ring visits distinct peers) and paths too long for the policy.
    """
    if len(path) + 1 > max_ring:
        return False
    for peer_id, _object_id in path:
        if peer_id == searcher_id:
            return False
    return True


def find_candidates(
    searcher_id: int,
    irq: "IncomingRequestQueue",
    wants: Dict[int, Set[int]],
    max_ring: int,
    entries: Optional[Iterable["RequestEntry"]] = None,
    peer_table: Optional["PeerStateTable"] = None,
    object_version_of: Optional[Callable[[int, int], int]] = None,
) -> List[RingCandidate]:
    """Enumerate ring candidates for a searching peer.

    Parameters
    ----------
    wants:
        ``{object_id: provider_peer_ids}`` for the searcher's open
        requests (provider sets from lookup; may be shared live sets —
        they are only read).
    entries:
        Restrict the search to these IRQ entries (receive-side check of
        one incoming request); None searches the whole queue.
    peer_table / object_version_of:
        When both are given, the provider ∩ request-index intersection
        goes through :meth:`~repro.core.peer_table.PeerStateTable.
        sorted_intersection` — provider-mask fancy-indexed by the IRQ's
        sorted key array for large operands, same ascending hit order
        either way (``object_version_of`` is
        ``lookup.object_versions().get``, keying the mask cache).

    Returns candidates in deterministic discovery order (objects sorted,
    providers sorted, FIFO entries); the policy layer re-orders them.
    """
    if max_ring < 2 or not wants or irq.is_empty:
        return []
    candidates: List[RingCandidate] = []
    if entries is None:
        index_keys = irq.index_key_set()
        use_table = peer_table is not None and object_version_of is not None
        # The sorted key array only matters on the mask path, and
        # sorted_intersection takes that path only when *both* operands
        # clear BITSET_MIN — so probe the provider sizes before paying
        # the rebuild (O(index log index) on every IRQ version bump,
        # measured ~11% of a whole 50k-peer run when built eagerly for
        # provider sets that never grow past a handful).
        index_keys_arr = (
            irq.index_keys_array()
            if use_table
            and len(index_keys) >= BITSET_MIN
            and any(len(p) >= BITSET_MIN for p in wants.values())
            else None
        )
        for object_id in sorted(wants):
            providers = wants[object_id]
            if use_table:
                hits_sorted = peer_table.sorted_intersection(
                    object_id,
                    object_version_of(object_id, 0),
                    providers,
                    index_keys_arr,
                    index_keys,
                )
            else:
                hits_sorted = sorted(providers & index_keys)
            for provider_id in hits_sorted:
                for entry, path in irq.paths_to(provider_id):
                    if path_is_usable(path, searcher_id, max_ring):
                        candidates.append(RingCandidate(object_id, path, entry))
    else:
        wanted_ids = sorted(wants)
        for entry in entries:
            if not entry.active:
                continue
            occurrences = entry.occurrences()
            occ_keys = occurrences.keys()
            for object_id in wanted_ids:
                providers = wants[object_id]
                for provider_id in sorted(providers & occ_keys):
                    for path in occurrences[provider_id]:
                        if path_is_usable(path, searcher_id, max_ring):
                            candidates.append(RingCandidate(object_id, path, entry))
    return candidates
