"""Incoming request queue (IRQ) with a tree-occurrence index.

Every peer keeps an IRQ "where remote peers register their interest for
a local file" (paper §III).  Entries are FIFO for non-exchange service
and carry the requester's frozen request-tree snapshot for ring search.

To make ring search cheap, the queue maintains an inverted index from
*every peer appearing in any attached tree* to the entries (and paths)
where it appears.  Ring search then reduces to one set intersection per
wanted object.  Removal marks entries inactive; the index compacts
lazily when dead entries accumulate.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Dict, Iterator, List, Optional, Set, Tuple

from repro.core.request_tree import Path, RequestTreeNode, occurrence_index
from repro.errors import ProtocolError


class RequestEntry:
    """One registered request: (requester, object) plus its tree snapshot.

    A request stays registered for its whole life — *queued* while
    waiting and *attached* to the transfer currently satisfying it.  The
    paper's request graph G consists of live requests regardless of
    service state: a request being served by a normal transfer is still
    a usable ring edge (the ring "cancels and replaces" the session),
    so entries must not vanish from the searchable graph at serve time.
    """

    __slots__ = (
        "requester_id",
        "object_id",
        "arrival_time",
        "tree",
        "active",
        "transfer",
        "_occ",
    )

    def __init__(
        self,
        requester_id: int,
        object_id: int,
        arrival_time: float,
        tree: Optional[RequestTreeNode] = None,
    ) -> None:
        self.requester_id = requester_id
        self.object_id = object_id
        self.arrival_time = arrival_time
        self.tree = tree
        self.active = True
        #: The transfer currently serving this request (None = queued).
        self.transfer = None
        self._occ: Optional[Dict[int, List[Path]]] = None

    @property
    def key(self) -> Tuple[int, int]:
        return (self.requester_id, self.object_id)

    @property
    def queued(self) -> bool:
        """Waiting for service (live and unattached)."""
        return self.active and self.transfer is None

    def occurrences(self) -> Dict[int, List[Path]]:
        """peer_id → paths (cached until the tree is refreshed)."""
        if self._occ is None:
            self._occ = occurrence_index(self.requester_id, self.object_id, self.tree)
        return self._occ

    def set_tree(self, tree: Optional[RequestTreeNode]) -> None:
        """Replace the attached snapshot (invalidates the path cache)."""
        self.tree = tree
        self._occ = None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "active" if self.active else "dead"
        return (
            f"RequestEntry(req={self.requester_id}, obj={self.object_id}, "
            f"t={self.arrival_time:.1f}, {state})"
        )


class IncomingRequestQueue:
    """Bounded FIFO of :class:`RequestEntry` with per-peer tree index."""

    def __init__(self, capacity: int) -> None:
        if capacity <= 0:
            raise ProtocolError(f"IRQ capacity must be positive, got {capacity}")
        self.capacity = capacity
        self._entries: "OrderedDict[Tuple[int, int], RequestEntry]" = OrderedDict()
        self._peer_index: Dict[int, List[RequestEntry]] = {}
        self._dead_in_index = 0
        self.rejected_full = 0
        self.rejected_duplicate = 0
        #: Bumped on every content change; snapshot caches key off it.
        self.version = 0

    # ------------------------------------------------------------------
    # basic container protocol
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: Tuple[int, int]) -> bool:
        return key in self._entries

    @property
    def is_empty(self) -> bool:
        return not self._entries

    @property
    def is_full(self) -> bool:
        return len(self._entries) >= self.capacity

    # ------------------------------------------------------------------
    # mutation
    # ------------------------------------------------------------------
    def add(self, entry: RequestEntry) -> bool:
        """Register a request; False if the queue is full or a duplicate.

        The paper allows "only one registered request on a given peer
        for a given object", so duplicates are rejected, not replaced.
        """
        if entry.key in self._entries:
            self.rejected_duplicate += 1
            return False
        if len(self._entries) >= self.capacity:
            self.rejected_full += 1
            return False
        self._entries[entry.key] = entry
        for peer_id in entry.occurrences():
            self._peer_index.setdefault(peer_id, []).append(entry)
        self.version += 1
        return True

    def remove(self, requester_id: int, object_id: int) -> Optional[RequestEntry]:
        """Remove (deactivate) an entry; None if absent."""
        entry = self._entries.pop((requester_id, object_id), None)
        if entry is None:
            return None
        entry.active = False
        self._dead_in_index += len(entry.occurrences())
        self.version += 1
        self._maybe_compact()
        return entry

    def pop_entry(self, entry: RequestEntry) -> None:
        """Remove a specific entry object (used when serving it)."""
        current = self._entries.get(entry.key)
        if current is not entry:
            raise ProtocolError(f"entry {entry!r} is not queued here")
        self.remove(entry.requester_id, entry.object_id)

    def refresh_tree(self, entry: RequestEntry, tree) -> None:
        """Replace an entry's snapshot with a fresher one.

        Models the paper's incremental request-tree updates (§V) at
        scan granularity.  Index lists for peers that vanished from the
        tree become harmless garbage (``paths_to`` re-reads the entry's
        occurrence map) and are purged by the next compaction.
        """
        if self._entries.get(entry.key) is not entry:
            raise ProtocolError(f"cannot refresh unknown entry {entry!r}")
        old_peers = set(entry.occurrences())
        entry.set_tree(tree)
        new_peers = set(entry.occurrences())
        for peer_id in new_peers - old_peers:
            self._peer_index.setdefault(peer_id, []).append(entry)
        self._dead_in_index += len(old_peers - new_peers)
        self.version += 1
        self._maybe_compact()

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def get(self, requester_id: int, object_id: int) -> Optional[RequestEntry]:
        return self._entries.get((requester_id, object_id))

    def active_entries(self) -> Iterator[RequestEntry]:
        """FIFO iteration over live entries (snapshot; safe to mutate)."""
        return iter(list(self._entries.values()))

    def queued_entries(self) -> Iterator[RequestEntry]:
        """FIFO iteration over entries awaiting service."""
        return iter([e for e in self._entries.values() if e.transfer is None])

    def tree_entries(self) -> Iterator[RequestEntry]:
        """Entries visible as request-graph edges.

        Exchange-served requests are excluded: the paper allows one
        exchange per registered request, so such an edge can never be
        recruited into another ring.
        """
        return iter(
            [
                e
                for e in self._entries.values()
                if e.transfer is None or not e.transfer.is_exchange
            ]
        )

    def indexed_peers(self) -> Set[int]:
        """Peers appearing in any attached tree (may include stale keys)."""
        return set(self._peer_index.keys())

    def index_view(self) -> Dict[int, List[RequestEntry]]:
        """The raw peer index (read-only by convention; used for set ops)."""
        return self._peer_index

    def paths_to(self, peer_id: int) -> Iterator[Tuple[RequestEntry, Path]]:
        """(entry, path) pairs for usable occurrences of ``peer_id``.

        Exchange-served entries are skipped — their request edge is
        already committed to a ring and cannot anchor another one.
        """
        entries = self._peer_index.get(peer_id)
        if not entries:
            return
        for entry in entries:
            if not entry.active:
                continue
            if entry.transfer is not None and entry.transfer.is_exchange:
                continue
            for path in entry.occurrences().get(peer_id, ()):
                yield entry, path

    # ------------------------------------------------------------------
    def _maybe_compact(self) -> None:
        """Rebuild the index when dead occurrences dominate.

        Amortized: a rebuild costs O(live occurrences) and happens at
        most once per max(64, live) removals; an emptied queue clears
        its index immediately so idle peers hold no garbage.
        """
        if self._dead_in_index <= 0:
            return
        if self._entries and (
            self._dead_in_index < 64 or self._dead_in_index < len(self._entries)
        ):
            return
        new_index: Dict[int, List[RequestEntry]] = {}
        for entry in self._entries.values():
            for peer_id in entry.occurrences():
                new_index.setdefault(peer_id, []).append(entry)
        self._peer_index = new_index
        self._dead_in_index = 0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"IncomingRequestQueue({len(self._entries)}/{self.capacity})"
