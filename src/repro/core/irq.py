"""Incoming request queue (IRQ) with a tree-occurrence index.

Every peer keeps an IRQ "where remote peers register their interest for
a local file" (paper §III).  Entries are FIFO for non-exchange service
and carry the requester's frozen request-tree snapshot for ring search.

To make ring search cheap, the queue maintains an inverted index from
*every peer appearing in any attached tree* to the entries (and paths)
where it appears.  Ring search then reduces to one set intersection per
wanted object.  Removal marks entries inactive; the index compacts
lazily when dead entries accumulate.

Index buckets are **unboxed when singular**: a peer occurring in exactly
one attached tree maps straight to that :class:`RequestEntry`, and only
a second occurrence promotes the bucket to a list.  ~90% of buckets at
the ``huge`` preset are singular, so this removes millions of
one-element list allocations — the measured top RSS consumer of the
50k-peer run — and halves the allocation work of request registration,
the measured insertion hotspot.  Ring search additionally reads the
index keys as a sorted id array (cached per
:attr:`~IncomingRequestQueue.version`) to fancy-index provider masks in
the columnar peer table.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Dict, Iterator, KeysView, List, Optional, Set, Tuple

import numpy as np

from repro.core.request_tree import (
    Path,
    RequestTreeNode,
    occurrence_index,
    occurrence_subindex,
    prune,
    tree_peer_set,
)
from repro.errors import ProtocolError

_NO_PATHS: tuple = ()

#: Shared empty CSR arrays (an empty queue holds no per-instance numpy).
_EMPTY_IDS = np.zeros(0, dtype=np.intc)


class RequestEntry:
    """One registered request: (requester, object) plus its tree snapshot.

    A request stays registered for its whole life — *queued* while
    waiting and *attached* to the transfer currently satisfying it.  The
    paper's request graph G consists of live requests regardless of
    service state: a request being served by a normal transfer is still
    a usable ring edge (the ring "cancels and replaces" the session),
    so entries must not vanish from the searchable graph at serve time.
    """

    __slots__ = (
        "requester_id",
        "object_id",
        "arrival_time",
        "tree",
        "active",
        "transfer",
        "_occ",
        "_paths",
        "_indexed",
        "_pruned",
    )

    def __init__(
        self,
        requester_id: int,
        object_id: int,
        arrival_time: float,
        tree: Optional[RequestTreeNode] = None,
    ) -> None:
        self.requester_id = requester_id
        self.object_id = object_id
        self.arrival_time = arrival_time
        self.tree = tree
        self.active = True
        #: The transfer currently serving this request (None = queued).
        self.transfer = None
        self._occ: Optional[Dict[int, List[Path]]] = None
        #: Per-peer materialized path lists (lazier than ``_occ``: ring
        #: search usually probes one or two providers per entry, not
        #: every peer in the tree).
        self._paths: Optional[Dict[int, List[Path]]] = None
        #: The peer-id set this entry is indexed under in its queue —
        #: the cheap :func:`tree_peer_set` walk, not the occurrence
        #: keys, so the full path index stays lazy until ring search
        #: actually queries this entry.
        self._indexed: Set[int] = frozenset()
        #: Cached ``(levels, children, node_count)`` of the attached
        #: tree's depth-pruned view (see :meth:`pruned_children`).
        self._pruned: Optional[Tuple[int, Tuple[RequestTreeNode, ...], int]] = None

    @property
    def key(self) -> Tuple[int, int]:
        """``(requester_id, object_id)`` — the queue's identity for this entry."""
        return (self.requester_id, self.object_id)

    @property
    def queued(self) -> bool:
        """Waiting for service (live and unattached)."""
        return self.active and self.transfer is None

    def occurrences(self) -> Dict[int, List[Path]]:
        """peer_id → paths (cached until the tree is refreshed).

        Shared through the snapshot root: the same frozen tree travels
        to every provider in a request's fanout, so sibling entries for
        the same (requester, object) reuse one index instead of each
        walking the tree.  The shared index is read-only by convention.
        """
        occ = self._occ
        if occ is None:
            tree = self.tree
            if tree is None:
                occ = occurrence_index(self.requester_id, self.object_id, None)
            else:
                cache = tree.occurrence_cache()
                key = (self.requester_id, self.object_id)
                occ = cache.get(key)
                if occ is None:
                    occ = occurrence_index(self.requester_id, self.object_id, tree)
                    cache[key] = occ
            self._occ = occ
        return occ

    def paths_for(self, peer_id: int) -> List[Path]:
        """This entry's usable paths ending at one peer (lazy, cached).

        Equivalent to ``occurrences().get(peer_id, [])`` but only
        materializes the requested peer's bucket — ring search probes a
        couple of providers per entry, not the whole tree.
        """
        occ = self._occ
        if occ is not None:
            return occ.get(peer_id, _NO_PATHS)
        cache = self._paths
        if cache is None:
            cache = {}  # simlint: disable=HOT001 -- lazy once-per-entry path cache (amortizes per-event work); dropped on set_tree
            self._paths = cache
        paths = cache.get(peer_id)
        if paths is None:
            prefix: Path = ((self.requester_id, self.object_id),)
            if peer_id == self.requester_id:
                paths = [prefix]
            else:
                subs = occurrence_subindex(self.requester_id, self.tree).get(peer_id)
                paths = [prefix + sub for sub in subs] if subs else _NO_PATHS
            cache[peer_id] = paths
        return paths

    def pruned_children(
        self, levels: int
    ) -> Tuple[Tuple[RequestTreeNode, ...], int]:
        """The attached tree's children pruned to ``levels``, cached.

        Returns ``(children, total_node_count)`` of the *unbudgeted*
        prune; :func:`~repro.core.request_tree.build_snapshot` adopts it
        whenever the count fits its remaining node budget (where the
        budgeted per-node prune would reproduce it node for node) and
        falls back to the budgeted prune otherwise.

        The view is a pure function of the (immutable) tree and
        ``levels``, so it is cached on the tree *root* and shared by
        every entry the snapshot is attached to: one request's fanout
        parks the same frozen tree at ``request_fanout`` providers, and
        each provider re-prunes it on every snapshot rebuild.  The
        entry-level ``_pruned`` tuple only short-circuits the root-cache
        dict probe.
        """
        cached = self._pruned
        if cached is not None and cached[0] == levels:
            return cached[1], cached[2]
        tree = self.tree
        if tree is None:
            view: Tuple[Tuple[RequestTreeNode, ...], int] = ((), 0)
        else:
            cache = tree.occurrence_cache()
            key = ("pruned", levels)
            view = cache.get(key)
            if view is None:
                kids: List[RequestTreeNode] = []
                for sub in tree.children:
                    copied = prune(sub, levels)
                    if copied is not None:
                        kids.append(copied)
                children = tuple(kids)
                view = (children, sum(kid.node_count() for kid in children))
                cache[key] = view
        self._pruned = (levels, view[0], view[1])
        return view

    def set_tree(self, tree: Optional[RequestTreeNode]) -> None:
        """Replace the attached snapshot (invalidates the path caches)."""
        self.tree = tree
        self._occ = None
        self._paths = None
        self._pruned = None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "active" if self.active else "dead"
        return (
            f"RequestEntry(req={self.requester_id}, obj={self.object_id}, "
            f"t={self.arrival_time:.1f}, {state})"
        )


class IncomingRequestQueue:
    """Bounded FIFO of :class:`RequestEntry` with per-peer tree index."""

    __slots__ = (
        "capacity",
        "_entries",
        "_index",
        "_keys_array",
        "_keys_array_version",
        "_dead_in_index",
        "rejected_full",
        "rejected_duplicate",
        "version",
        "binding_epoch",
        "_snapshot",
        "_snapshot_version",
        "_counters",
    )

    def __init__(self, capacity: int, counters=None) -> None:
        if capacity <= 0:
            raise ProtocolError(f"IRQ capacity must be positive, got {capacity}")
        self.capacity = capacity
        #: Perf-counter sink (:class:`repro.sim.counters.PerfCounters`),
        #: kept only when enabled so every bump site pays one ``is not
        #: None`` branch in the common disabled case.
        self._counters = (
            counters if counters is not None and counters.enabled else None
        )
        self._entries: "OrderedDict[Tuple[int, int], RequestEntry]" = OrderedDict()
        #: Inverted index: peer id → RequestEntry (single occurrence,
        #: the common case, stored unboxed) or List[RequestEntry] in
        #: append order.
        self._index: Dict[int, object] = {}
        #: Sorted unique indexed peer ids (for mask fancy-indexing);
        #: built on demand, keyed off ``version``.
        self._keys_array = _EMPTY_IDS
        self._keys_array_version = -1
        self._dead_in_index = 0
        self.rejected_full = 0
        self.rejected_duplicate = 0
        #: Bumped on every content change; snapshot caches key off it.
        self.version = 0
        #: Bumped when an entry's transfer attachment changes (bind,
        #: release, ring downgrade).  Attachment affects which entries
        #: are usable ring-search edges but not the queue's content, so
        #: it gets its own counter: search gating keys off
        #: ``(version, binding_epoch)`` while tree-snapshot caches keep
        #: keying off ``version`` alone, exactly as before.
        self.binding_epoch = 0
        self._snapshot: Optional[List[RequestEntry]] = None
        self._snapshot_version = -1

    # ------------------------------------------------------------------
    # basic container protocol
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: Tuple[int, int]) -> bool:
        return key in self._entries

    @property
    def is_empty(self) -> bool:
        """Whether no entry is queued or attached."""
        return not self._entries

    @property
    def is_full(self) -> bool:
        """Whether the queue reached its capacity bound."""
        return len(self._entries) >= self.capacity

    # ------------------------------------------------------------------
    # mutation
    # ------------------------------------------------------------------
    def add(self, entry: RequestEntry) -> bool:
        """Register a request; False if the queue is full or a duplicate.

        The paper allows "only one registered request on a given peer
        for a given object", so duplicates are rejected, not replaced.
        """
        if entry.key in self._entries:
            self.rejected_duplicate += 1
            return False
        if len(self._entries) >= self.capacity:
            self.rejected_full += 1
            return False
        self._entries[entry.key] = entry
        entry._indexed = tree_peer_set(entry.requester_id, entry.tree)
        index = self._index
        index_get = index.get  # bound once: add() runs ~1M times at 50k peers
        for peer_id in entry._indexed:
            bucket = index_get(peer_id)
            if bucket is None:
                index[peer_id] = entry
            elif type(bucket) is list:
                bucket.append(entry)
            else:
                index[peer_id] = [bucket, entry]
        self.version += 1
        if self._counters is not None:
            self._counters.bump("irq.adds")
        return True

    def remove(self, requester_id: int, object_id: int) -> Optional[RequestEntry]:
        """Remove (deactivate) an entry; None if absent."""
        entry = self._entries.pop((requester_id, object_id), None)
        if entry is None:
            return None
        entry.active = False
        self._dead_in_index += len(entry._indexed)
        self.version += 1
        if self._counters is not None:
            self._counters.bump("irq.removes")
        self._maybe_compact()
        return entry

    def note_binding_change(self) -> None:
        """An entry was attached to / detached from a transfer."""
        self.binding_epoch += 1

    def pop_entry(self, entry: RequestEntry) -> None:
        """Remove a specific entry object (used when serving it)."""
        current = self._entries.get(entry.key)
        if current is not entry:
            raise ProtocolError(f"entry {entry!r} is not queued here")
        self.remove(entry.requester_id, entry.object_id)

    def refresh_tree(self, entry: RequestEntry, tree: Optional[RequestTreeNode]) -> None:
        """Replace an entry's snapshot with a fresher one.

        Models the paper's incremental request-tree updates (§V) at
        scan granularity.  Index lists for peers that vanished from the
        tree become harmless garbage (``paths_to`` re-reads the entry's
        occurrence map) and are purged by the next compaction.
        """
        if self._entries.get(entry.key) is not entry:
            raise ProtocolError(f"cannot refresh unknown entry {entry!r}")
        old_peers = entry._indexed
        entry.set_tree(tree)
        new_peers = tree_peer_set(entry.requester_id, tree)
        if new_peers != old_peers:
            entry._indexed = new_peers
            index = self._index
            for peer_id in new_peers - old_peers:
                bucket = index.get(peer_id)
                if bucket is None:
                    index[peer_id] = entry
                elif type(bucket) is list:
                    bucket.append(entry)
                else:
                    index[peer_id] = [bucket, entry]
            self._dead_in_index += len(old_peers - new_peers)
        self.version += 1
        if self._counters is not None:
            self._counters.bump("irq.tree_refreshes")
        self._maybe_compact()

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def get(self, requester_id: int, object_id: int) -> Optional[RequestEntry]:
        """The live entry for ``(requester_id, object_id)``, or None."""
        return self._entries.get((requester_id, object_id))

    def snapshot(self) -> List[RequestEntry]:
        """FIFO list of current entries, cached until the queue changes.

        Scheduling passes iterate the queue far more often than its
        membership changes, so the list is rebuilt only on a version
        bump.  Callers must treat the list as read-only; it stays valid
        (entries merely turn inactive) if the queue mutates mid-walk.
        """
        if self._snapshot is None or self._snapshot_version != self.version:
            self._snapshot = list(self._entries.values())
            self._snapshot_version = self.version
        return self._snapshot

    def active_entries(self) -> Iterator[RequestEntry]:
        """FIFO iteration over live entries (snapshot; safe to mutate)."""
        return iter(self.snapshot())

    def tree_entries(self) -> Iterator[RequestEntry]:
        """Entries visible as request-graph edges.

        Exchange-served requests are excluded: the paper allows one
        exchange per registered request, so such an edge can never be
        recruited into another ring.  Backed by the cached snapshot
        (stable under mutation), filtered lazily — snapshot building
        iterates this on every rebuild.
        """
        for entry in self.snapshot():
            if entry.transfer is None or not entry.transfer.is_exchange:
                yield entry

    def indexed_peers(self) -> Set[int]:
        """Peers appearing in any attached tree (may include stale keys)."""
        return set(self._index)

    def index_keys_array(self) -> np.ndarray:
        """Sorted unique indexed peer ids as an int array (read-only).

        Ring search fancy-indexes provider masks with this array; it is
        exactly ``sorted(indexed_peers())``.  Built on demand and cached
        per version — callers that stay on the small-set intersection
        path never pay for it.
        """
        if self._keys_array_version != self.version:
            index = self._index
            self._keys_array = np.fromiter(
                sorted(index), dtype=np.intc, count=len(index)
            )
            self._keys_array_version = self.version
        return self._keys_array

    def index_key_set(self) -> "KeysView[int]":
        """Indexed peer ids as a set-like view (read-only, live)."""
        return self._index.keys()

    def index_view(self) -> Dict[int, List[RequestEntry]]:
        """Materialized peer → entry-list adjacency, in append order.

        Diagnostics and tests only — the hot path reads unboxed buckets
        through :meth:`paths_to` and never builds the list form.
        """
        view: Dict[int, List[RequestEntry]] = {}  # simlint: disable=HOT001 -- diagnostics/test-only materialization; hot path uses unboxed buckets
        for peer_id, bucket in self._index.items():
            view[peer_id] = list(bucket) if type(bucket) is list else [bucket]
        return view

    def paths_to(self, peer_id: int) -> Iterator[Tuple[RequestEntry, Path]]:
        """(entry, path) pairs for usable occurrences of ``peer_id``.

        Exchange-served entries are skipped — their request edge is
        already committed to a ring and cannot anchor another one.
        Entries come out in append order, matching the old per-peer
        bucket order exactly.
        """
        bucket = self._index.get(peer_id)
        if bucket is None:
            return
        entries = bucket if type(bucket) is list else (bucket,)
        for entry in entries:
            if not entry.active:
                continue
            if entry.transfer is not None and entry.transfer.is_exchange:
                continue
            for path in entry.paths_for(peer_id):
                yield entry, path

    # ------------------------------------------------------------------
    def _maybe_compact(self) -> None:
        """Rebuild the index when dead occurrences dominate.

        Amortized: a rebuild costs O(live occurrences) and happens at
        most once per max(64, live) removals; an emptied queue clears
        its index immediately so idle peers hold no garbage.
        """
        if self._dead_in_index <= 0:
            return
        if self._entries and (
            self._dead_in_index < 64 or self._dead_in_index < len(self._entries)
        ):
            return
        new_index: Dict[int, object] = {}  # simlint: disable=HOT001 -- amortized compaction: runs once per 64+ dead entries, not per event
        for entry in self._entries.values():
            for peer_id in entry._indexed:
                bucket = new_index.get(peer_id)
                if bucket is None:
                    new_index[peer_id] = entry
                elif type(bucket) is list:
                    bucket.append(entry)
                else:
                    new_index[peer_id] = [bucket, entry]
        self._index = new_index
        self._keys_array_version = -1
        self._dead_in_index = 0
        if self._counters is not None:
            self._counters.bump("irq.compactions")

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"IncomingRequestQueue({len(self._entries)}/{self.capacity})"
