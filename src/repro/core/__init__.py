"""The paper's primary contribution: exchange mechanisms.

Submodules implement the incoming request queue (:mod:`repro.core.irq`),
request trees (:mod:`repro.core.request_tree`), the n-way ring search
(:mod:`repro.core.ring_search`), candidate-ordering policies
(:mod:`repro.core.policies`), ring lifecycle and token validation
(:mod:`repro.core.ring`, :mod:`repro.core.token_protocol`), the
exchange-priority upload scheduler (:mod:`repro.core.scheduler`) and the
exchange manager that ties them together
(:mod:`repro.core.exchange_manager`).  The Bloom-filter request-tree
variant sketched in the paper's §V lives in :mod:`repro.core.bloom_tree`.
"""

from repro.core.irq import IncomingRequestQueue, RequestEntry
from repro.core.policies import (
    ExchangePolicy,
    LongestFirstPolicy,
    NoExchangePolicy,
    PairwiseOnlyPolicy,
    ShortestFirstPolicy,
    parse_mechanism,
)
from repro.core.request_tree import RequestTreeNode, build_snapshot
from repro.core.ring import ExchangeRing, RingEdge, edges_from_candidate
from repro.core.ring_search import RingCandidate, find_candidates
from repro.core.token_protocol import validate_ring

__all__ = [
    "ExchangePolicy",
    "ExchangeRing",
    "IncomingRequestQueue",
    "LongestFirstPolicy",
    "NoExchangePolicy",
    "PairwiseOnlyPolicy",
    "RequestEntry",
    "RequestTreeNode",
    "RingCandidate",
    "RingEdge",
    "ShortestFirstPolicy",
    "build_snapshot",
    "edges_from_candidate",
    "find_candidates",
    "parse_mechanism",
    "validate_ring",
]
