"""Exchange ring lifecycle.

A ring of *n* peers carries *n* edges; on edge ``(requester, provider,
object)`` the provider serves the object to the requester, so "each
peer provides an object to their predecessor and gets an object from
their successor" (§III-A).

Rings break as soon as any member transfer terminates — most commonly
because a member completed its download (§III: "It is quite common for
one side to terminate first, when it completes its own download").  The
configured break policy decides what happens to the surviving
transfers: ``terminate`` ends them (they re-queue as normal requests),
``downgrade`` lets them continue as preemptible non-exchange sessions.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import TYPE_CHECKING, List, Tuple

from repro.errors import RingError
from repro.metrics.records import TerminationReason

if TYPE_CHECKING:  # pragma: no cover - hints only
    from repro.core.ring_search import RingCandidate
    from repro.network.transfer import Transfer


@dataclass(frozen=True)
class RingEdge:
    """One request edge of a ring: requester ← provider, labelled object."""

    requester_id: int
    provider_id: int
    object_id: int


def edges_from_candidate(initiator_id: int, candidate: "RingCandidate") -> List[RingEdge]:
    """Expand a search candidate into the full ring edge list.

    Walking the tree path from the initiator: each path step requested
    its object from the previous peer; the initiator closes the cycle by
    requesting the wanted object from the last path peer.
    """
    edges: List[RingEdge] = []
    previous = initiator_id
    for peer_id, object_id in candidate.path:
        edges.append(
            RingEdge(requester_id=peer_id, provider_id=previous, object_id=object_id)
        )
        previous = peer_id
    edges.append(
        RingEdge(
            requester_id=initiator_id,
            provider_id=previous,
            object_id=candidate.want_object_id,
        )
    )
    return edges


class RingState(enum.Enum):
    """Lifecycle of a ring: forming -> active -> broken."""
    FORMING = "forming"
    ACTIVE = "active"
    BROKEN = "broken"


class ExchangeRing:
    """A committed n-way exchange and its member transfers."""

    def __init__(self, ring_id: int, edges: List[RingEdge], break_policy: str) -> None:
        if len(edges) < 2:
            raise RingError(f"a ring needs >= 2 edges, got {len(edges)}")
        if break_policy not in ("terminate", "downgrade"):
            raise RingError(f"unknown ring break policy {break_policy!r}")
        peers = [edge.requester_id for edge in edges]
        if len(set(peers)) != len(peers):
            raise RingError(f"ring has duplicate members: {peers}")
        providers = sorted(edge.provider_id for edge in edges)
        if providers != sorted(peers):
            raise RingError("ring edges do not form a single cycle")
        self.ring_id = ring_id
        self.edges: Tuple[RingEdge, ...] = tuple(edges)
        self.break_policy = break_policy
        self.state = RingState.FORMING
        self.formed_at = 0.0
        self.transfers: List["Transfer"] = []

    @property
    def size(self) -> int:
        """Number of members (= edges) in the ring."""
        return len(self.edges)

    def member_ids(self) -> List[int]:
        """The ring's member peer ids, in edge order."""
        return [edge.requester_id for edge in self.edges]

    def attach(self, transfer: "Transfer") -> None:
        """Bind one member transfer to the forming ring."""
        if self.state is RingState.BROKEN:
            raise RingError(f"cannot attach a transfer to broken ring {self.ring_id}")
        self.transfers.append(transfer)

    def activate(self, now: float) -> None:
        """All edges attached: the ring goes active at ``now``."""
        if len(self.transfers) != len(self.edges):
            raise RingError(
                f"ring {self.ring_id} activated with {len(self.transfers)} "
                f"transfers for {len(self.edges)} edges"
            )
        self.state = RingState.ACTIVE
        self.formed_at = now

    # ------------------------------------------------------------------
    def on_transfer_terminated(self, transfer: "Transfer", reason: TerminationReason) -> None:
        """A member transfer ended: break the ring (idempotent)."""
        if transfer in self.transfers:
            self.transfers.remove(transfer)
        if self.state is RingState.BROKEN:
            return
        self.state = RingState.BROKEN
        survivors = [t for t in self.transfers if t.active]
        if self.break_policy == "terminate":
            for survivor in survivors:
                survivor.terminate(TerminationReason.RING_BROKEN)
        else:
            for survivor in survivors:
                survivor.downgrade_to_normal()
            self.transfers.clear()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"ExchangeRing(id={self.ring_id}, size={self.size}, "
            f"state={self.state.value}, members={self.member_ids()})"
        )
