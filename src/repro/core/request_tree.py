"""Request trees (paper §III-A).

A peer's request tree has the peer as implicit root and, for each entry
in its incoming request queue (IRQ), a child labelled with the requester
and the requested object; beneath each child hangs the (pruned) request
tree that accompanied that request.  An edge therefore reads "child
requested *object* from parent", and a path root→X of depth *d* closes
into a feasible *d*-way exchange ring whenever X owns something the root
wants.

Trees travel with requests as **frozen snapshots**: when peer R sends a
request it attaches its current tree pruned to ``max_ring - 1`` levels,
so that placed under the recipient's root the composite never exceeds
``max_ring`` levels — the paper's empirical cut-off ("limit the search
for cycles to chains of up to 5 predecessors").

A configurable node budget bounds snapshot size (the paper's §V concedes
the full tree "may be prohibitive" and proposes Bloom filters, which we
implement separately in :mod:`repro.core.bloom_tree`).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterator, List, Optional, Tuple

if TYPE_CHECKING:  # pragma: no cover - hints only
    from repro.core.irq import IncomingRequestQueue

#: One step of a root→node path: (peer_id, object the peer requested
#: from its path predecessor).
PathStep = Tuple[int, int]
Path = Tuple[PathStep, ...]


class RequestTreeNode:
    """A node of a request tree.

    ``object_id`` is the object this peer requested from its parent;
    it is ``None`` only for the implicit root.
    """

    __slots__ = ("peer_id", "object_id", "children")

    def __init__(
        self,
        peer_id: int,
        object_id: Optional[int],
        children: Tuple["RequestTreeNode", ...] = (),
    ) -> None:
        self.peer_id = peer_id
        self.object_id = object_id
        self.children = children

    # ------------------------------------------------------------------
    def node_count(self) -> int:
        """Total nodes in this subtree, root included."""
        return 1 + sum(child.node_count() for child in self.children)

    def depth(self) -> int:
        """Levels in this subtree (a lone root has depth 1)."""
        if not self.children:
            return 1
        return 1 + max(child.depth() for child in self.children)

    def iter_nodes(self) -> Iterator["RequestTreeNode"]:
        yield self
        for child in self.children:
            yield from child.iter_nodes()

    # ------------------------------------------------------------------
    # (de)serialization — used by tests, debugging and the examples
    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        return {
            "peer": self.peer_id,
            "object": self.object_id,
            "children": [child.to_dict() for child in self.children],
        }

    @classmethod
    def from_dict(cls, data: dict) -> "RequestTreeNode":
        children = tuple(cls.from_dict(child) for child in data.get("children", ()))
        return cls(data["peer"], data.get("object"), children)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"RequestTreeNode(peer={self.peer_id}, object={self.object_id}, "
            f"children={len(self.children)})"
        )


def prune(
    node: RequestTreeNode, levels: int, budget: Optional[List[int]] = None
) -> Optional[RequestTreeNode]:
    """Copy ``node`` limited to ``levels`` levels and a shared node budget.

    ``budget`` is a single-element mutable list so recursion shares it;
    pass None for unbounded.  Returns None when levels or budget hit 0.
    """
    if levels <= 0:
        return None
    if budget is not None:
        if budget[0] <= 0:
            return None
        budget[0] -= 1
    children: List[RequestTreeNode] = []
    for child in node.children:
        copied = prune(child, levels - 1, budget)
        if copied is not None:
            children.append(copied)
    return RequestTreeNode(node.peer_id, node.object_id, tuple(children))


def build_snapshot(
    peer_id: int,
    irq: "IncomingRequestQueue",
    levels: int,
    node_budget: int,
) -> Optional[RequestTreeNode]:
    """The tree a peer attaches to an outgoing request.

    ``levels`` counts node levels including this peer as the (snapshot)
    root; with the paper's max ring of 5 the snapshot carries
    ``levels = 4``.  Returns None when ``levels <= 0`` (no-exchange or
    ring-size-1 configurations attach nothing).
    """
    if levels <= 0:
        return None
    budget = [max(0, node_budget - 1)]  # root consumes one slot
    children: List[RequestTreeNode] = []
    if levels > 1:
        for entry in irq.tree_entries():
            if budget[0] <= 0:
                break
            budget[0] -= 1  # the entry's own node
            child_children: Tuple[RequestTreeNode, ...] = ()
            if entry.tree is not None and levels > 2:
                grandchildren: List[RequestTreeNode] = []
                for sub in entry.tree.children:
                    copied = prune(sub, levels - 2, budget)
                    if copied is not None:
                        grandchildren.append(copied)
                child_children = tuple(grandchildren)
            children.append(
                RequestTreeNode(entry.requester_id, entry.object_id, child_children)
            )
    return RequestTreeNode(peer_id, None, tuple(children))


def iter_occurrences(
    requester_id: int, object_id: int, tree: Optional[RequestTreeNode]
) -> Iterator[Tuple[int, Path]]:
    """All (peer, path) occurrences contributed by one IRQ entry.

    The entry itself is the first occurrence (the direct requester at
    composite depth 2, i.e. a pairwise candidate with path length 1);
    deeper occurrences come from the attached snapshot.  Paths with
    repeated peers are *not* yielded — a ring must consist of distinct
    peers, and filtering here keeps the per-entry index clean.
    """
    root_step: PathStep = (requester_id, object_id)
    yield requester_id, (root_step,)
    if tree is None:
        return

    def walk(
        node: RequestTreeNode, path: Tuple[PathStep, ...], seen: frozenset
    ) -> Iterator[Tuple[int, Path]]:
        for child in node.children:
            if child.object_id is None:
                continue  # malformed: non-root without an edge label
            if child.peer_id in seen:
                continue
            step: PathStep = (child.peer_id, child.object_id)
            child_path = path + (step,)
            yield child.peer_id, child_path
            yield from walk(child, child_path, seen | {child.peer_id})

    yield from walk(tree, (root_step,), frozenset((requester_id,)))


def occurrence_index(
    requester_id: int, object_id: int, tree: Optional[RequestTreeNode]
) -> dict:
    """``{peer_id: [path, ...]}`` over one entry's occurrences.

    Iterative implementation (this runs on every tree refresh, which is
    the hottest loop of a busy simulation).  Paths are short (max ring
    size), so duplicate-peer filtering scans the path instead of
    carrying a set.
    """
    root_step: PathStep = (requester_id, object_id)
    index: dict = {requester_id: [(root_step,)]}
    if tree is None:
        return index
    stack: List[Tuple[RequestTreeNode, Path]] = [(tree, (root_step,))]
    while stack:
        node, path = stack.pop()
        for child in node.children:
            if child.object_id is None:
                continue  # malformed: non-root without an edge label
            peer_id = child.peer_id
            duplicate = False
            for step_peer, _step_object in path:
                if step_peer == peer_id:
                    duplicate = True
                    break
            if duplicate:
                continue
            child_path = path + ((peer_id, child.object_id),)
            bucket = index.get(peer_id)
            if bucket is None:
                index[peer_id] = [child_path]
            else:
                bucket.append(child_path)
            if child.children:
                stack.append((child, child_path))
    return index
