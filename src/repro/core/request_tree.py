"""Request trees (paper §III-A).

A peer's request tree has the peer as implicit root and, for each entry
in its incoming request queue (IRQ), a child labelled with the requester
and the requested object; beneath each child hangs the (pruned) request
tree that accompanied that request.  An edge therefore reads "child
requested *object* from parent", and a path root→X of depth *d* closes
into a feasible *d*-way exchange ring whenever X owns something the root
wants.

Trees travel with requests as **frozen snapshots**: when peer R sends a
request it attaches its current tree pruned to ``max_ring - 1`` levels,
so that placed under the recipient's root the composite never exceeds
``max_ring`` levels — the paper's empirical cut-off ("limit the search
for cycles to chains of up to 5 predecessors").

A configurable node budget bounds snapshot size (the paper's §V concedes
the full tree "may be prohibitive" and proposes Bloom filters, which we
implement separately in :mod:`repro.core.bloom_tree`).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterator, List, Optional, Set, Tuple

if TYPE_CHECKING:  # pragma: no cover - hints only
    from repro.core.irq import IncomingRequestQueue

#: One step of a root→node path: (peer_id, object the peer requested
#: from its path predecessor).
PathStep = Tuple[int, int]
Path = Tuple[PathStep, ...]


class RequestTreeNode:
    """A node of a request tree.

    ``object_id`` is the object this peer requested from its parent;
    it is ``None`` only for the implicit root.

    Nodes are immutable once built (``children`` is a tuple and is never
    reassigned), which is what lets :func:`prune` share whole subtrees
    between snapshots instead of deep-copying them, and what makes the
    cached ``node_count``/``depth`` values safe.
    """

    __slots__ = (
        "peer_id",
        "object_id",
        "children",
        "_node_count",
        "_depth",
        "_peer_set",
        "_occ_cache",
    )

    def __init__(
        self,
        peer_id: int,
        object_id: Optional[int],
        children: Tuple["RequestTreeNode", ...] = (),
    ) -> None:
        self.peer_id = peer_id
        self.object_id = object_id
        self.children = children
        self._node_count: Optional[int] = None
        self._depth: Optional[int] = None
        #: Root-level caches, shared by every entry holding this
        #: snapshot — one request's fanout attaches the same frozen
        #: tree at ~``request_fanout`` providers, so derived views
        #: (peer set, occurrence indexes) are computed once, not per
        #: provider.  Only populated on roots.
        self._peer_set: Optional[frozenset] = None
        self._occ_cache: Optional[dict] = None

    # ------------------------------------------------------------------
    def node_count(self) -> int:
        """Total nodes in this subtree, root included (cached)."""
        count = self._node_count
        if count is None:
            count = 1
            for child in self.children:
                child_count = child._node_count
                count += child_count if child_count is not None else child.node_count()
            self._node_count = count
        return count

    def depth(self) -> int:
        """Levels in this subtree (a lone root has depth 1; cached)."""
        depth = self._depth
        if depth is None:
            deepest = 0
            for child in self.children:
                child_depth = child._depth
                if child_depth is None:
                    child_depth = child.depth()
                if child_depth > deepest:
                    deepest = child_depth
            depth = 1 + deepest
            self._depth = depth
        return depth

    def occurrence_cache(self) -> dict:
        """The mutable per-root cache used by entry occurrence lookups."""
        cache = self._occ_cache
        if cache is None:
            cache = {}
            self._occ_cache = cache
        return cache

    def iter_nodes(self) -> Iterator["RequestTreeNode"]:
        """Depth-first iteration over this node and its subtree."""
        yield self
        for child in self.children:
            yield from child.iter_nodes()

    # ------------------------------------------------------------------
    # (de)serialization — used by tests, debugging and the examples
    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        """JSON-safe nested dict form (tests, debugging, examples)."""
        return {
            "peer": self.peer_id,
            "object": self.object_id,
            "children": [child.to_dict() for child in self.children],
        }

    @classmethod
    def from_dict(cls, data: dict) -> "RequestTreeNode":
        """Rebuild a tree from :meth:`to_dict` output."""
        children = tuple(cls.from_dict(child) for child in data.get("children", ()))
        return cls(data["peer"], data.get("object"), children)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"RequestTreeNode(peer={self.peer_id}, object={self.object_id}, "
            f"children={len(self.children)})"
        )


def prune(
    node: RequestTreeNode, levels: int, budget: Optional[List[int]] = None
) -> Optional[RequestTreeNode]:
    """``node`` limited to ``levels`` levels and a shared node budget.

    ``budget`` is a single-element mutable list so recursion shares it;
    pass None for unbounded.  Returns None when levels or budget hit 0.

    A subtree that already fits both bounds is returned *as is* (nodes
    are immutable, so sharing is safe) — identical content to the old
    deep copy, including the preorder truncation shape when the budget
    runs out mid-tree, without allocating a node per level per snapshot.
    """
    if levels <= 0:
        return None
    depth = node._depth
    if depth is None:
        depth = node.depth()
    if budget is None:
        if depth <= levels:
            return node
    else:
        remaining = budget[0]
        if remaining <= 0:
            return None
        if depth <= levels:
            count = node._node_count
            if count is None:
                count = node.node_count()
            if count <= remaining:
                budget[0] = remaining - count
                return node
        budget[0] = remaining - 1
    if levels == 1:  # children could only land at level 0 — drop them
        return RequestTreeNode(node.peer_id, node.object_id, ())
    children: List[RequestTreeNode] = []
    for child in node.children:
        copied = prune(child, levels - 1, budget)
        if copied is not None:
            children.append(copied)
    return RequestTreeNode(node.peer_id, node.object_id, tuple(children))


def build_snapshot(
    peer_id: int,
    irq: "IncomingRequestQueue",
    levels: int,
    node_budget: int,
) -> Optional[RequestTreeNode]:
    """The tree a peer attaches to an outgoing request.

    ``levels`` counts node levels including this peer as the (snapshot)
    root; with the paper's max ring of 5 the snapshot carries
    ``levels = 4``.  Returns None when ``levels <= 0`` (no-exchange or
    ring-size-1 configurations attach nothing).
    """
    if levels <= 0:
        return None
    budget = [max(0, node_budget - 1)]  # root consumes one slot
    children: List[RequestTreeNode] = []
    if levels > 1:
        for entry in irq.tree_entries():
            if budget[0] <= 0:
                break
            budget[0] -= 1  # the entry's own node
            child_children: Tuple[RequestTreeNode, ...] = ()
            if entry.tree is not None and levels > 2:
                # Fast path: the entry caches its depth-pruned view;
                # when the whole view fits the remaining budget the
                # budgeted prune below would reproduce it node for
                # node, so the (immutable) view is adopted outright.
                pruned_view, view_count = entry.pruned_children(levels - 2)
                if view_count <= budget[0]:
                    child_children = pruned_view
                    budget[0] -= view_count
                else:
                    grandchildren: List[RequestTreeNode] = []
                    for sub in entry.tree.children:
                        copied = prune(sub, levels - 2, budget)
                        if copied is not None:
                            grandchildren.append(copied)
                    child_children = tuple(grandchildren)
            children.append(
                RequestTreeNode(entry.requester_id, entry.object_id, child_children)
            )
    return RequestTreeNode(peer_id, None, tuple(children))


def iter_occurrences(
    requester_id: int, object_id: int, tree: Optional[RequestTreeNode]
) -> Iterator[Tuple[int, Path]]:
    """All (peer, path) occurrences contributed by one IRQ entry.

    The entry itself is the first occurrence (the direct requester at
    composite depth 2, i.e. a pairwise candidate with path length 1);
    deeper occurrences come from the attached snapshot.  Paths with
    repeated peers are *not* yielded — a ring must consist of distinct
    peers, and filtering here keeps the per-entry index clean.
    """
    root_step: PathStep = (requester_id, object_id)
    yield requester_id, (root_step,)
    if tree is None:
        return

    def walk(
        node: RequestTreeNode, path: Tuple[PathStep, ...], seen: frozenset
    ) -> Iterator[Tuple[int, Path]]:
        for child in node.children:
            if child.object_id is None:
                continue  # malformed: non-root without an edge label
            if child.peer_id in seen:
                continue
            step: PathStep = (child.peer_id, child.object_id)
            child_path = path + (step,)
            yield child.peer_id, child_path
            yield from walk(child, child_path, seen | {child.peer_id})

    yield from walk(tree, (root_step,), frozenset((requester_id,)))


def tree_peer_set(
    requester_id: int, tree: Optional[RequestTreeNode]
) -> Set[int]:
    """All peer ids appearing in one entry's composite tree, cheaply.

    A *superset* of :func:`occurrence_index`'s keys: the walk skips the
    duplicate-peer path filter, so a peer reachable only through paths
    that revisit a peer is still included.  The IRQ's inverted index
    tolerates that — a lookup for such a peer just finds no usable path
    — and in exchange the index can be maintained without materializing
    any path tuples, leaving the expensive occurrence indexing to the
    entries a ring search actually touches.
    """
    if tree is None:
        return {requester_id}
    cached = tree._peer_set
    if cached is None:
        acc = {tree.peer_id}
        add = acc.add
        stack: List[RequestTreeNode] = [tree]
        push = stack.append
        pop = stack.pop
        while stack:
            node = pop()
            for child in node.children:
                if child.object_id is None:
                    continue  # malformed: non-root without an edge label
                add(child.peer_id)
                if child.children:
                    push(child)
        cached = frozenset(acc)
        tree._peer_set = cached
    if tree.peer_id == requester_id:
        # The usual case: the snapshot root *is* the requester, so the
        # cached set can be shared as-is (read-only by convention).
        return cached
    peers = set(cached)
    peers.add(requester_id)
    return peers


#: Reserved key under which a root's object-independent sub-index is
#: cached in its occurrence cache (real keys are (peer, object) tuples).
_SUBINDEX_KEY = "subindex"


def occurrence_subindex(
    requester_id: int, tree: Optional[RequestTreeNode]
) -> dict:
    """The (cached) object-independent half of an entry's occurrences.

    ``{peer_id: [subpath, ...]}`` with the root step stripped; shared
    through the root's cache whenever the root *is* the requester (the
    only shape the protocol produces).  Callers must treat the result
    as read-only.
    """
    if tree is None:
        return {}
    if tree.peer_id == requester_id:
        cache = tree.occurrence_cache()
        sub = cache.get(_SUBINDEX_KEY)
        if sub is None:
            sub = _occurrence_subindex(tree, requester_id)
            cache[_SUBINDEX_KEY] = sub
        return sub
    # Hand-built shape: the root is not the requester, so the walk
    # depends on the requester and cannot be shared through the root.
    return _occurrence_subindex(tree, requester_id)


def _occurrence_subindex(tree: RequestTreeNode, requester_id: int) -> dict:
    """``{peer_id: [subpath, ...]}`` of a snapshot, minus the root step.

    The walk's duplicate-peer filter is seeded with the requester; the
    protocol always makes the requester the snapshot root, in which
    case the result is object-independent — only the root step
    (requester, object) differs between the entries sharing one
    snapshot — so one walk per tree serves every (object, provider)
    combination of the requester's fanout, with
    :func:`occurrence_index` just prefixing the root step.
    """
    index: dict = {}
    bucket_of = index.get
    stack: List[Tuple[RequestTreeNode, Path]] = [(tree, ())]
    push = stack.append
    pop = stack.pop
    while stack:
        node, path = pop()
        for child in node.children:
            if child.object_id is None:
                continue  # malformed: non-root without an edge label
            peer_id = child.peer_id
            if peer_id == requester_id:
                continue  # the requester seeds the duplicate filter
            duplicate = False
            for step_peer, _step_object in path:
                if step_peer == peer_id:
                    duplicate = True
                    break
            if duplicate:
                continue
            child_path = path + ((peer_id, child.object_id),)
            bucket = bucket_of(peer_id)
            if bucket is None:
                index[peer_id] = [child_path]
            else:
                bucket.append(child_path)
            if child.children:
                push((child, child_path))
    return index


def occurrence_index(
    requester_id: int, object_id: int, tree: Optional[RequestTreeNode]
) -> dict:
    """``{peer_id: [path, ...]}`` over one entry's occurrences.

    Paths are short (max ring size), so duplicate-peer filtering scans
    the path instead of carrying a set.  When the snapshot root is the
    requester (the only shape the protocol produces), the expensive
    walk is shared through the root's cache and only the per-object
    root-step prefixing happens here.
    """
    root_step: PathStep = (requester_id, object_id)
    index: dict = {requester_id: [(root_step,)]}
    if tree is None:
        return index
    prefix = (root_step,)
    for peer_id, paths in occurrence_subindex(requester_id, tree).items():
        index[peer_id] = [prefix + path for path in paths]
    return index
