"""Upload-slot scheduling with exchange priority (paper §III).

"A transfer to satisfy a request is initiated if two conditions are
met": capacity on both sides, and the transfer being an exchange — or no
feasible exchange existing in the IRQ.  The exchange manager runs first
on every scheduling pass, so by the time :func:`serve_pending` is
invoked only the spare slots remain, which is exactly the paper's rule:
"Non-exchange transfers will only be served if no exchange is possible
and the peer has a free upload slot, although these slots will be
reclaimed as soon as another exchange becomes possible."

Non-exchange service order is the peer's own
:class:`~repro.core.disciplines.ServiceDiscipline` (FIFO in the paper's
model; eMule-credit and KaZaA-participation for the baseline schemes);
entries that can no longer be served (requester satisfied elsewhere,
object evicted) are dropped as they reach the head.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

from repro.errors import RingError
from repro.metrics.records import TerminationReason
from repro.network.transfer import Transfer

if TYPE_CHECKING:  # pragma: no cover - hints only
    from repro.network.peer import Peer


def serve_pending(peer: "Peer") -> int:
    """Start normal transfers on spare upload slots; returns how many.

    Entries stay registered while served (they remain ring-search
    edges); serving attaches the entry to the transfer so the FIFO scan
    skips it.
    """
    if not peer.shares or peer.upload_pool.free <= 0 or peer.irq.is_empty:
        return 0
    started = 0
    ctx = peer.ctx
    # Service order is the peer's own discipline (FIFO, eMule credit or
    # KaZaA participation) — per peer, not a global mode, so one network
    # can mix disciplines across peer classes.  The queue snapshot is
    # cached by IRQ version and consumed lazily: a pass with two free
    # slots walks two servable entries, not a freshly materialized and
    # fully discipline-sorted copy of the whole queue.
    for entry in peer.discipline.service_iter(peer, peer.irq.snapshot()):
        if peer.upload_pool.free <= 0:
            break
        if not entry.queued:  # attached to a transfer, or consumed this pass
            continue
        requester = ctx.peer(entry.requester_id)
        download = requester.pending.get(entry.object_id)
        if download is None or download.completed:
            # Stale: the requester got the object elsewhere (or gave up).
            peer.irq.remove(entry.requester_id, entry.object_id)
            continue
        if not peer.can_serve(entry.object_id):
            # We evicted the object since the request arrived; the
            # requester must find another provider.
            peer.irq.remove(entry.requester_id, entry.object_id)
            download.registered_at.discard(peer.peer_id)
            continue
        if download.transfer_from(peer.peer_id) is not None:
            # Already serving this object to this requester through a
            # ring's closing edge; the entry is redundant.
            peer.irq.remove(entry.requester_id, entry.object_id)
            download.registered_at.discard(peer.peer_id)
            continue
        if download.unassigned_blocks <= 0:
            # Fully assigned to other sources right now; keep the entry —
            # an in-flight source may fail and return blocks.
            continue
        if not requester.online or requester.download_pool.free <= 0:
            continue
        transfer = Transfer(ctx, provider=peer, requester=requester, download=download)
        transfer.bind_entry(entry)
        transfer.start()
        started += 1
    return started


def pick_preemption_victim(peer: "Peer") -> Optional["Transfer"]:
    """The non-exchange upload to reclaim for a new exchange.

    Picks the most recently started normal upload (LIFO) so the transfer
    that has waited longest keeps its slot; delivered blocks are kept by
    the requester either way, so no work is destroyed.
    """
    victim: Optional[Transfer] = None
    for transfer in peer.active_uploads():
        if transfer.is_exchange:
            continue
        if victim is None or transfer.session_start > victim.session_start:
            victim = transfer
    return victim


def preempt_for_exchange(peer: "Peer") -> None:
    """Free one upload slot by preempting a normal transfer.

    Callers must have validated that a non-exchange upload exists (the
    token pass guarantees ``exchange_upload_count < total``); failure
    here is therefore an invariant violation, not a model outcome.
    """
    victim = pick_preemption_victim(peer)
    if victim is None:
        raise RingError(
            f"peer {peer.peer_id} has no preemptible upload "
            f"({peer.upload_pool.in_use}/{peer.upload_pool.total} slots, "
            f"{peer.exchange_upload_count} exchange)"
        )
    victim.terminate(TerminationReason.PREEMPTED)
