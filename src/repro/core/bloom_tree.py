"""Bloom-filter request-tree summaries (paper §V).

"We can use a set of Bloom filters to represent the set of peers in the
request tree ... We require a different Bloom filter for each level in
the request tree so that peers can trim the request tree by one level
when they initiate a new request."

A :class:`BloomTreeSummary` replaces a full tree snapshot with one
filter per level.  The searcher can detect *that* a ring exists (some
provider of a wanted object appears at level d) but not *who* is on the
path: "the initiator must depend on next-hop lookups at each node
instead of source-routing the request token around the ring, and there
is a non-zero chance of false positives".

:func:`resolve_ring` implements those next-hop lookups against live
IRQs, failing (and reporting why) when a false positive sent the token
down a dead end.  The ablation bench compares wire size and search
accuracy against full trees.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, List, Optional, Tuple

from repro.core.bloom import BloomFilter, optimal_num_hashes
from repro.core.request_tree import Path, RequestTreeNode
from repro.errors import ConfigError

if TYPE_CHECKING:  # pragma: no cover - hints only
    from repro.core.irq import IncomingRequestQueue

#: Default wire budget per level; the paper's point is that this is far
#: smaller than a full subtree of object/peer identifiers.
DEFAULT_BITS_PER_LEVEL = 256


class BloomTreeSummary:
    """Per-level peer filters for one request-tree snapshot.

    ``levels[i]`` summarizes the peers at depth ``i + 1`` below the
    snapshot root (the root itself travels in the clear — it is the
    requester identity on the request).
    """

    def __init__(self, root_peer_id: int, levels: List[BloomFilter]) -> None:
        self.root_peer_id = root_peer_id
        self.levels = levels

    # ------------------------------------------------------------------
    @classmethod
    def from_tree(
        cls,
        tree: RequestTreeNode,
        max_levels: int,
        bits_per_level: int = DEFAULT_BITS_PER_LEVEL,
        expected_per_level: int = 16,
    ) -> "BloomTreeSummary":
        """Summarize a snapshot tree into per-level filters."""
        if max_levels < 0:
            raise ConfigError(f"max_levels must be >= 0, got {max_levels}")
        num_hashes = optimal_num_hashes(bits_per_level, expected_per_level)
        levels = [
            BloomFilter(bits_per_level, num_hashes, seed=depth)
            for depth in range(max_levels)
        ]

        def walk(node: RequestTreeNode, depth: int) -> None:
            if depth >= max_levels:
                return
            for child in node.children:
                levels[depth].add(child.peer_id)
                walk(child, depth + 1)

        walk(tree, 0)
        return cls(tree.peer_id, levels)

    # ------------------------------------------------------------------
    @property
    def size_bytes(self) -> int:
        """Wire size: the filters plus the root identifier (8 bytes)."""
        return 8 + sum(level.size_bytes for level in self.levels)

    def depth_candidates(self, peer_id: int) -> List[int]:
        """Levels (0-based below root) where ``peer_id`` may appear."""
        if peer_id == self.root_peer_id:
            return [-1]  # the root itself
        return [
            depth for depth, level in enumerate(self.levels) if peer_id in level
        ]

    def may_contain(self, peer_id: int) -> bool:
        """Whether the summarized tree may contain ``peer_id`` (no false negatives)."""
        return bool(self.depth_candidates(peer_id)) or peer_id == self.root_peer_id

    def trimmed(self) -> "BloomTreeSummary":
        """Drop the deepest level (re-rooting when forwarding a request)."""
        return BloomTreeSummary(self.root_peer_id, list(self.levels[:-1]))


@dataclass
class RingResolution:
    """Outcome of the next-hop token walk."""

    success: bool
    path: Tuple[int, ...]
    failure_reason: Optional[str] = None
    hops_taken: int = 0


def resolve_ring(
    searcher_id: int,
    irq: "IncomingRequestQueue",
    target_peer_id: int,
    max_depth: int,
) -> RingResolution:
    """Next-hop resolution of a ring toward ``target_peer_id``.

    Walks the *live* request graph hop by hop: at each peer, pick an
    IRQ entry whose subtree can still reach the target (here, ground
    truth paths; a deployment would consult the entry's Bloom summary
    and risk false positives).  Mirrors the §V token walk where "the
    initiator ... can only determine that a cycle exists, but cannot
    identify all the members of the exchange".
    """
    if max_depth < 1:
        return RingResolution(False, (), "max-depth-exhausted")
    best: Optional[Path] = None
    for entry, path in irq.paths_to(target_peer_id):
        if len(path) > max_depth:
            continue
        if any(peer_id == searcher_id for peer_id, _obj in path):
            continue
        if best is None or len(path) < len(best):
            best = path
    if best is None:
        return RingResolution(False, (), "no-live-path", hops_taken=1)
    return RingResolution(
        True,
        tuple(peer_id for peer_id, _obj in best),
        hops_taken=len(best),
    )


def false_positive_probe(
    summary: BloomTreeSummary, present: set, universe: range
) -> Tuple[int, int]:
    """Count (false positives, probes) for peers outside ``present``."""
    false_positives = 0
    probes = 0
    for peer_id in universe:
        if peer_id in present or peer_id == summary.root_peer_id:
            continue
        probes += 1
        if summary.may_contain(peer_id):
            false_positives += 1
    return false_positives, probes


def full_tree_wire_size(tree: RequestTreeNode, id_bytes: int = 20) -> int:
    """Approximate wire size of a full snapshot.

    Modern file-sharing identifiers are ~20-byte hashes (the paper's §V
    points at "the size of object and file identifiers in modern file
    sharing systems"); each node carries a peer id and an object id.
    """
    return tree.node_count() * (2 * id_bytes)
