"""A classic Bloom filter (Bloom, CACM 1970 — the paper's citation [23]).

Used by :mod:`repro.core.bloom_tree` to summarize the set of peers in a
request tree.  Double hashing (Kirsch-Mitzenmacher) derives the k index
functions from one SHA-256 digest, so membership is deterministic
across platforms and runs.
"""

from __future__ import annotations

import hashlib
import math
from typing import Iterable

from repro.errors import ConfigError


def optimal_num_hashes(bits: int, expected_items: int) -> int:
    """The k minimizing the false-positive rate for m bits / n items."""
    if bits <= 0 or expected_items <= 0:
        raise ConfigError("bits and expected_items must be positive")
    k = int(round(bits / expected_items * math.log(2)))
    return max(1, k)


class BloomFilter:
    """Fixed-size bit array with k double-hashed index functions."""

    def __init__(self, bits: int, num_hashes: int, seed: int = 0) -> None:
        if bits <= 0:
            raise ConfigError(f"bloom filter needs positive bits, got {bits}")
        if num_hashes <= 0:
            raise ConfigError(f"bloom filter needs >= 1 hash, got {num_hashes}")
        self.bits = bits
        self.num_hashes = num_hashes
        self.seed = seed
        self._bitmap = 0
        self._items = 0

    # ------------------------------------------------------------------
    def _positions(self, item: int) -> Iterable[int]:
        digest = hashlib.sha256(f"{self.seed}:{item}".encode("utf-8")).digest()
        h1 = int.from_bytes(digest[:8], "big")
        h2 = int.from_bytes(digest[8:16], "big") | 1  # odd => full period
        for i in range(self.num_hashes):
            yield (h1 + i * h2) % self.bits

    def add(self, item: int) -> None:
        """Insert one item (sets its ``num_hashes`` bit positions)."""
        for position in self._positions(item):
            self._bitmap |= 1 << position
        self._items += 1

    def update(self, items: Iterable[int]) -> None:
        """Insert every item of the iterable."""
        for item in items:
            self.add(item)

    def __contains__(self, item: int) -> bool:
        for position in self._positions(item):
            if not (self._bitmap >> position) & 1:
                return False
        return True

    # ------------------------------------------------------------------
    @property
    def items_added(self) -> int:
        """How many insertions the filter has absorbed."""
        return self._items

    @property
    def size_bytes(self) -> int:
        """Wire size of the filter (bits rounded up to whole bytes)."""
        return (self.bits + 7) // 8

    def fill_ratio(self) -> float:
        """Fraction of bits set (the filter's saturation)."""
        return bin(self._bitmap).count("1") / self.bits

    def expected_false_positive_rate(self) -> float:
        """(1 - e^(-kn/m))^k, the standard estimate."""
        if self._items == 0:
            return 0.0
        exponent = -self.num_hashes * self._items / self.bits
        return (1.0 - math.exp(exponent)) ** self.num_hashes

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"BloomFilter(bits={self.bits}, k={self.num_hashes}, "
            f"items={self._items}, fill={self.fill_ratio():.2f})"
        )
