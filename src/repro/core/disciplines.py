"""Per-peer service disciplines for non-exchange upload scheduling.

The paper's model serves the IRQ in FIFO order; the two baseline
incentive schemes it compares against (eMule's pairwise credit, KaZaA's
self-reported participation level) re-order the queue instead.  Each
peer owns one :class:`ServiceDiscipline` strategy object that decides
the service order of its queued entries — which is what lets a single
simulated network mix disciplines across peer classes, something the
old global ``scheduler_mode`` string branch could not express.

The discipline also owns the baseline bookkeeping that used to be bolted
directly onto :class:`~repro.network.peer.Peer`: the per-remote
:class:`~repro.baselines.credit.CreditLedger` and the
:class:`~repro.baselines.participation.ParticipationReporter`.  Both are
maintained under every discipline — the volumes are cheap to track and
let analyses compare what credit *would* have said — but only the
matching discipline consults them for ordering.  The KaZaA cheat (a
free-rider claiming the maximum participation level) is the claimer's
behaviour, decided when its discipline is built from the config flag —
not a build-time peek at a global scheduler mode, which would be wrong
the moment claimer and server run different disciplines.
"""

from __future__ import annotations

import heapq
from typing import TYPE_CHECKING, Iterator, List, Sequence

from repro.baselines.credit import CreditLedger
from repro.baselines.participation import ParticipationReporter, participation_priority
from repro.errors import ConfigError

if TYPE_CHECKING:  # pragma: no cover - hints only
    from repro.core.irq import RequestEntry
    from repro.network.peer import Peer


class ServiceDiscipline:
    """Strategy for ordering one peer's queued IRQ entries.

    Subclasses override :meth:`rank`; the base class carries the
    baseline state (credit ledger + participation reporter) every
    discipline maintains.

    The scheduler consumes :meth:`service_iter`, which yields entries
    *lazily* in service order: FIFO (no rank) streams the queue
    snapshot as-is, and ranked disciplines heapify once — O(n) — and
    pop only as many entries as free slots actually consume, instead of
    fully sorting the queue on every scheduling pass.  The heap's
    ``(key, position)`` tiebreak reproduces a stable sort exactly, so
    the lazy order is bit-identical to the eager one.
    """

    name = "fifo"
    #: Ranked disciplines override :meth:`rank`; FIFO keeps None so the
    #: scheduler can stream the queue without computing keys at all.
    ranked = False

    __slots__ = ("peer_id", "credit", "participation")

    def __init__(self, peer_id: int, cheats: bool = False) -> None:
        self.peer_id = peer_id
        self.credit = CreditLedger(peer_id)
        self.participation = ParticipationReporter(peer_id, cheats=cheats)

    def rank(self, peer: "Peer", entry: "RequestEntry") -> float:
        """Service priority of one entry (higher serves first)."""
        return 0.0

    def standing(self) -> float:
        """The owner's contribution standing in ``[0, 1]``.

        The honest participation level — uploaded volume over the
        larger of uploaded/downloaded — which is exactly the quantity
        both baseline schemes reward (credit multiplies it out per
        remote peer, participation reports it globally).  The strategy
        layer (:mod:`repro.strategy`) feeds it into payoff evaluation;
        every discipline maintains the underlying volumes, so the
        standing is defined under FIFO too.
        """
        return self.participation.honest_level

    def service_iter(
        self, peer: "Peer", entries: Sequence["RequestEntry"]
    ) -> Iterator["RequestEntry"]:
        """Entries in service order, yielded lazily.

        Ranked disciplines drop non-queued entries up front — they can
        never be served this pass, and ranking them would mean a credit
        lookup (or a peer dereference) per attached entry on a queue
        that is mostly attached.  FIFO streams unfiltered; its consumer
        skips non-queued entries for free as it walks.
        """
        if not self.ranked or len(entries) <= 1:
            return iter(entries)
        heap = [
            (-self.rank(peer, entry), position, entry)
            for position, entry in enumerate(entries)
            if entry.queued
        ]
        heapq.heapify(heap)

        def pop_all() -> Iterator["RequestEntry"]:
            while heap:
                yield heapq.heappop(heap)[2]

        return pop_all()

    def order(self, peer: "Peer", entries: List["RequestEntry"]) -> List["RequestEntry"]:
        """Eager view of :meth:`service_iter`, for tests and tooling.

        Inherits its semantics: ranked disciplines return only *queued*
        entries (non-queued ones cannot be served and are dropped at
        heap-build time), FIFO returns the input unchanged.  Production
        scheduling consumes :meth:`service_iter` directly.
        """
        if self.ranked and len(entries) > 1:
            return list(self.service_iter(peer, entries))
        return entries

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}(peer={self.peer_id})"


class FifoDiscipline(ServiceDiscipline):
    """Arrival order — the paper's model."""

    name = "fifo"
    __slots__ = ()


class CreditDiscipline(ServiceDiscipline):
    """eMule queue rank: waiting time x local credit modifier."""

    name = "credit"
    ranked = True
    __slots__ = ()

    def rank(self, peer: "Peer", entry: "RequestEntry") -> float:
        # One second of base waiting keeps the rank multiplicative even
        # for requests scheduled the instant they arrive (eMule gives
        # every queued request a base score for the same reason).
        """eMule queue rank: waiting time scaled by the requester's credit modifier."""
        return self.credit.rank(
            entry.requester_id, peer.ctx.now - entry.arrival_time + 1.0
        )


class ParticipationDiscipline(ServiceDiscipline):
    """KaZaA claimed participation level, waiting time as tiebreak."""

    name = "participation"
    ranked = True
    __slots__ = ()

    def rank(self, peer: "Peer", entry: "RequestEntry") -> float:
        """Priority by the requester's claimed level; waiting time breaks ties."""
        ctx = peer.ctx
        requester = ctx.peer(entry.requester_id)
        return participation_priority(
            requester.participation.claimed_level, ctx.now - entry.arrival_time
        )


_DISCIPLINES = {
    FifoDiscipline.name: FifoDiscipline,
    CreditDiscipline.name: CreditDiscipline,
    ParticipationDiscipline.name: ParticipationDiscipline,
}


def make_discipline(
    name: str,
    peer_id: int,
    shares: bool,
    fake_participation: bool,
) -> ServiceDiscipline:
    """Build the named discipline for one peer.

    A non-sharing peer fakes the maximum participation level when
    ``fake_participation`` is set (the trivial KaZaA hack the paper
    cites).  The claim is the *requester's* lie, consulted by whichever
    server runs the participation discipline — so it cannot depend on
    the claimer's own serving discipline (a freeloader never serves
    anyway).  Under populations with no participation-disciplined peers
    the claimed level is simply never read.
    """
    cls = _DISCIPLINES.get(name)
    if cls is None:
        raise ConfigError(
            f"unknown service discipline {name!r}; expected one of "
            f"{sorted(_DISCIPLINES)}"
        )
    return cls(peer_id, cheats=fake_participation and not shares)
