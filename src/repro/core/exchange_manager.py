"""Exchange formation: search → token pass → commit.

This module glues the ring search, the candidate-ordering policy and the
token protocol into the three trigger points the paper describes:

* before transmitting a request, the requester "inspects the entire
  Request Tree to see if any peer provides o" (:func:`try_form_exchanges`
  with ``only_object``);
* on receipt of a request, the provider checks the incoming tree "for
  any object that P still wants" (``entries=[entry]``);
* and peers "regularly examine" their IRQs (the periodic scan calls the
  unrestricted form).

Commit is atomic within one simulation event: validation and slot
commitment happen back-to-back with no interleaving, which plays the
role of the token's mutual-agreement round.  Competing ring proposals
are serialized by the event loop, exactly like the paper's observation
that "only one will be initiated successfully".
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, Iterable, Optional, Sequence, Set

from repro.core.ring import ExchangeRing, RingEdge, edges_from_candidate
from repro.core.ring_search import find_candidates
from repro.core.scheduler import preempt_for_exchange
from repro.core.token_protocol import validate_ring
from repro.errors import TokenValidationFailed
from repro.metrics.records import TerminationReason
from repro.network.transfer import Transfer

if TYPE_CHECKING:  # pragma: no cover - hints only
    from repro.core.irq import RequestEntry
    from repro.network.peer import Peer


def open_wants(peer: "Peer", only_object: Optional[int] = None) -> Dict[int, Set[int]]:
    """The peer's exchange-eligible wants: object → live provider set.

    A want is eligible while the download is open, has unassigned blocks
    to fetch, and is not already served by an exchange (the paper's
    one-exchange-per-request rule).
    """
    lookup = peer.ctx.lookup
    wants: Dict[int, Set[int]] = {}
    for object_id, download in peer.pending.items():
        if only_object is not None and object_id != only_object:
            continue
        if download.completed or download.unassigned_blocks <= 0:
            continue
        if download.has_exchange_transfer:
            continue
        providers = lookup.providers(object_id, exclude=peer.peer_id)
        if providers:
            wants[object_id] = providers
    return wants


def search_state_key(peer: "Peer") -> tuple:
    """Fingerprint of everything an unrestricted ring search reads.

    Covers the four inputs of :func:`open_wants` + :func:`find_candidates`:
    the peer's IRQ content (``version``), entry↔transfer attachments
    (``binding_epoch`` — they gate which entries are usable edges), the
    provider sets of the peer's pending objects (per-object lookup
    versions — the *only* slice of the index the search reads, so
    unrelated register/unregister churn elsewhere in the network does
    not reopen this peer's gate) and the pending-download ledger (each
    download's ``epoch`` moves on any block/transfer state change).
    Equal keys ⇒ identical search inputs ⇒ a search that found nothing
    will find nothing again, so the periodic scan can skip it outright.
    """
    irq = peer.irq
    lookup = peer.ctx.lookup
    return (
        irq.version,
        irq.binding_epoch,
        tuple(
            (object_id, download.epoch, lookup.object_version(object_id))
            for object_id, download in peer.pending.items()
        ),
    )


def try_form_exchanges(
    peer: "Peer",
    only_object: Optional[int] = None,
    entries: Optional[Iterable["RequestEntry"]] = None,
) -> int:
    """Search for feasible rings through this peer and commit them.

    Returns the number of rings formed.  Candidates are re-validated
    just before each commit because an earlier commit in the same pass
    may have consumed a want or a slot.

    The unrestricted form (the periodic scan) is gated on change
    tracking: a pass whose previous search found *no candidates* and
    whose :func:`search_state_key` has not moved since skips the whole
    search — no provider-set copies, no index intersections.  Searches
    that found candidates are never gated (their outcome also depends
    on remote validation state the key deliberately does not cover),
    so metrics and formed rings are bit-identical to the ungated code.
    """
    policy = peer.policy
    if not policy.enables_exchanges or not peer.shares:
        return 0
    gate_key = None
    if only_object is None and entries is None:
        gate_key = search_state_key(peer)
        if gate_key == peer.idle_search_key:
            return 0
    wants = open_wants(peer, only_object=only_object)
    if not wants:
        if gate_key is not None:
            peer.idle_search_key = gate_key
        return 0
    candidates = find_candidates(
        peer.peer_id, peer.irq, wants, policy.max_ring, entries=entries
    )
    if not candidates:
        if gate_key is not None:
            peer.idle_search_key = gate_key
        return 0
    if gate_key is not None:
        peer.idle_search_key = None
    metrics = peer.ctx.metrics
    formed = 0
    for candidate in policy.order(candidates):
        download = peer.pending.get(candidate.want_object_id)
        if (
            download is None
            or download.completed
            or download.unassigned_blocks <= 0
            or download.has_exchange_transfer
        ):
            continue  # consumed by an earlier commit in this pass
        if not candidate.entry.active:
            continue  # the path's IRQ entry was served or cancelled
        edges = edges_from_candidate(peer.peer_id, candidate)
        metrics.count("ring.attempt")
        try:
            validate_ring(peer.ctx, edges)
        except TokenValidationFailed as veto:
            metrics.count(f"ring.reject.{veto.reason}")
            continue
        commit_ring(peer, edges)
        metrics.count("ring.formed")
        metrics.count(f"ring.formed.size{len(edges)}")
        formed += 1
    return formed


def commit_ring(peer: "Peer", edges: Sequence[RingEdge]) -> ExchangeRing:
    """Commit a validated ring: replace/preempt slots and start transfers.

    Must run in the same event as :func:`~repro.core.token_protocol.validate_ring`
    (no interleaving), which is what makes the per-edge bookkeeping
    below safe without re-checking capacity.
    """
    ctx = peer.ctx
    ring = ExchangeRing(
        ring_id=ctx.next_ring_id(),
        edges=list(edges),
        break_policy=ctx.config.ring_break_policy,
    )
    for edge in ring.edges:
        provider = ctx.peer(edge.provider_id)
        requester = ctx.peer(edge.requester_id)
        download = requester.pending[edge.object_id]
        existing = download.transfer_from(edge.provider_id)
        if existing is not None:
            # The same edge was being served as a normal transfer: the
            # session is "canceled and replaced" by the exchange (§IV-B).
            existing.terminate(TerminationReason.REPLACED_BY_EXCHANGE, requeue=False)
        if provider.upload_pool.free <= 0:
            preempt_for_exchange(provider)
        transfer = Transfer(ctx, provider=provider, requester=requester,
                            download=download, ring=ring)
        entry = provider.irq.get(edge.requester_id, edge.object_id)
        if entry is not None and entry.queued:
            # The registered request is now satisfied by the exchange; it
            # stays registered (and returns to the queue if the ring breaks).
            transfer.bind_entry(entry)
        ring.attach(transfer)
        transfer.start()
    ring.activate(ctx.now)
    return ring
