"""Exchange formation: search → token pass → commit.

This module glues the ring search, the candidate-ordering policy and the
token protocol into the three trigger points the paper describes:

* before transmitting a request, the requester "inspects the entire
  Request Tree to see if any peer provides o" (:func:`try_form_exchanges`
  with ``only_object``);
* on receipt of a request, the provider checks the incoming tree "for
  any object that P still wants" (``entries=[entry]``);
* and peers "regularly examine" their IRQs (the periodic scan calls the
  unrestricted form).

Commit is atomic within one simulation event: validation and slot
commitment happen back-to-back with no interleaving, which plays the
role of the token's mutual-agreement round.  Competing ring proposals
are serialized by the event loop, exactly like the paper's observation
that "only one will be initiated successfully".
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Dict, Iterable, Optional, Sequence, Set, Tuple

from repro.core import token_protocol
from repro.core.ring import ExchangeRing, RingEdge, edges_from_candidate
from repro.core.ring_search import RingCandidate, find_candidates
from repro.core.scheduler import preempt_for_exchange
from repro.core.token_protocol import validate_ring  # noqa: F401  (public API re-export)
from repro.metrics.records import TerminationReason
from repro.network.transfer import Transfer

if TYPE_CHECKING:  # pragma: no cover - hints only
    from repro.core.irq import RequestEntry
    from repro.network.peer import Peer


def open_wants(peer: "Peer", only_object: Optional[int] = None) -> Dict[int, Set[int]]:
    """The peer's exchange-eligible wants: object → live provider set.

    A want is eligible while the download is open, has unassigned blocks
    to fetch, and is not already served by an exchange (the paper's
    one-exchange-per-request rule).

    The provider sets are the lookup service's *live* views, not copies
    (:meth:`~repro.network.lookup.LookupService.provider_view`): ring
    search only reads them, and any path through the searcher itself is
    rejected by ``path_is_usable``, so skipping the per-pass
    copy-with-exclude is observationally identical.
    """
    lookup = peer.ctx.lookup
    wants: Dict[int, Set[int]] = {}  # simlint: disable=HOT001 -- one scratch dict per search pass, not per event; passes are gated by the idle-search version check
    for object_id, download in peer.pending.items():
        if only_object is not None and object_id != only_object:
            continue
        if download.completed or download.unassigned_blocks <= 0:
            continue
        if download.has_exchange_transfer:
            continue
        providers = lookup.provider_view(object_id)
        if providers:
            wants[object_id] = providers
    return wants


def search_state_key(peer: "Peer") -> tuple:
    """Fingerprint of everything an unrestricted ring search reads.

    Covers the four inputs of :func:`open_wants` + :func:`find_candidates`:
    the peer's IRQ content (``version``), entry↔transfer attachments
    (``binding_epoch`` — they gate which entries are usable edges), the
    provider sets of the peer's pending objects (per-object lookup
    versions — the *only* slice of the index the search reads, so
    unrelated register/unregister churn elsewhere in the network does
    not reopen this peer's gate) and the pending-download ledger (each
    download's ``epoch`` moves on any block/transfer state change).
    Equal keys ⇒ identical search inputs ⇒ a search that found nothing
    will find nothing again, so the periodic scan can skip it outright.
    """
    irq = peer.irq
    version_of = peer.ctx.lookup.object_versions().get
    parts = [irq.version, irq.binding_epoch]
    append = parts.append
    for object_id, download in peer.pending.items():
        append(object_id)
        append(download.epoch)
        append(version_of(object_id, 0))
    # Flat tuple: same information as the nested per-download triples
    # (fixed stride, so equal flats ⇔ equal nesteds) without the inner
    # tuple allocations — this runs on every single scan pass.
    return tuple(parts)


def try_form_exchanges(
    peer: "Peer",
    only_object: Optional[int] = None,
    entries: Optional[Iterable["RequestEntry"]] = None,
) -> int:
    """Search for feasible rings through this peer and commit them.

    Returns the number of rings formed.  Candidates are re-validated
    just before each commit because an earlier commit in the same pass
    may have consumed a want or a slot.

    The unrestricted form (the periodic scan) is gated on change
    tracking: a pass whose previous search found *no candidates* and
    whose :func:`search_state_key` has not moved since skips the whole
    search — no provider-set copies, no index intersections.  Searches
    that found candidates are never gated (their outcome also depends
    on remote validation state the key deliberately does not cover),
    so metrics and formed rings are bit-identical to the ungated code.
    """
    policy = peer.policy
    if not policy.enables_exchanges or not peer.shares:
        return 0
    counters = peer.ctx.counters
    counting = counters.enabled
    gate_key = None
    if only_object is None and entries is None:
        gate_key = search_state_key(peer)
        if gate_key == peer.idle_search_key:
            if counting:
                counters.bump("ring_search.gated_skips")
            return 0
    wants = open_wants(peer, only_object=only_object)
    if not wants:
        if gate_key is not None:
            peer.idle_search_key = gate_key
        return 0
    ctx = peer.ctx
    if counting:
        counters.bump("ring_search.searches")
        token = counters.clock()
    candidates = find_candidates(
        peer.peer_id,
        peer.irq,
        wants,
        policy.max_ring,
        entries=entries,
        peer_table=ctx.peer_table,
        object_version_of=ctx.lookup.object_versions().get,
    )
    if counting:
        counters.add_elapsed("ring_search.find_candidates", token)
        counters.bump("ring_search.candidates", len(candidates))
    if not candidates:
        if gate_key is not None:
            peer.idle_search_key = gate_key
        return 0
    if gate_key is not None:
        peer.idle_search_key = None
    metrics = ctx.metrics
    peers = peer.ctx.peers
    peer_id = peer.peer_id
    pending = peer.pending
    formed = 0
    # Per-pass memo of edge vetoes: candidate lists repeat the same
    # (requester, provider, object, size) edges many times (one busy
    # entry anchors hundreds of paths), and between commits nothing a
    # token pass reads can change.  Cleared after every commit.
    memo: Dict[Tuple[int, int, int, int], Optional[Tuple[str, int]]] = {}  # simlint: disable=HOT001 -- one memo per search pass; it exists to *remove* per-candidate work, and passes are version-gated
    for candidate in policy.order(candidates):
        download = pending.get(candidate.want_object_id)
        if (
            download is None
            or download.completed
            or download.unassigned_blocks <= 0
            or download.has_exchange_transfer
        ):
            continue  # consumed by an earlier commit in this pass
        if not candidate.entry.active:
            continue  # the path's IRQ entry was served or cancelled
        metrics.count("ring.attempt")
        veto = _candidate_veto(peers, peer_id, candidate, memo)
        if veto is not None:
            metrics.count(f"ring.reject.{veto[0]}")
            continue
        edges = edges_from_candidate(peer_id, candidate)
        commit_ring(peer, edges)
        memo.clear()
        metrics.count("ring.formed")
        metrics.count(f"ring.formed.size{len(edges)}")
        formed += 1
    if counting and formed:
        counters.bump("ring_search.rings_formed", formed)
    return formed


#: Memo sentinel distinguishing "edge not yet checked" from a cached
#: ``None`` ("edge passed").
_UNCHECKED: Any = object()


def _candidate_veto(
    peers: Dict[int, "Peer"],
    searcher_id: int,
    candidate: RingCandidate,
    memo: Dict[Tuple[int, int, int, int], Optional[Tuple[str, int]]],
) -> Optional[Tuple[str, int]]:
    """First token veto for a candidate's ring, or None if it validates.

    Walks the same edges :func:`~repro.core.ring.edges_from_candidate`
    would build, in the same order, applying the same per-edge checks as
    :func:`~repro.core.token_protocol.validate_ring` — but exception-free,
    without materializing :class:`~repro.core.ring.RingEdge` objects for
    the ~99% of attempts that are vetoed, and memoized per pass (the
    overwhelmingly common veto, ``already-exchanging``, repeats for every
    path anchored at the same busy entry).
    """
    path = candidate.path
    ring_size = len(path) + 1
    provider_id = searcher_id
    for requester_id, object_id in path:
        key = (requester_id, provider_id, object_id, ring_size)
        veto = memo.get(key, _UNCHECKED)
        if veto is _UNCHECKED:
            veto = token_protocol.edge_veto(
                peers[requester_id], peers[provider_id], object_id, ring_size
            )
            memo[key] = veto
        if veto is not None:
            return veto
        provider_id = requester_id
    key = (searcher_id, provider_id, candidate.want_object_id, ring_size)
    veto = memo.get(key, _UNCHECKED)
    if veto is _UNCHECKED:
        veto = token_protocol.edge_veto(
            peers[searcher_id], peers[provider_id], candidate.want_object_id, ring_size
        )
        memo[key] = veto
    return veto


def commit_ring(peer: "Peer", edges: Sequence[RingEdge]) -> ExchangeRing:
    """Commit a validated ring: replace/preempt slots and start transfers.

    Must run in the same event as :func:`~repro.core.token_protocol.validate_ring`
    (no interleaving), which is what makes the per-edge bookkeeping
    below safe without re-checking capacity.
    """
    ctx = peer.ctx
    ring = ExchangeRing(
        ring_id=ctx.next_ring_id(),
        edges=list(edges),
        break_policy=ctx.config.ring_break_policy,
    )
    for edge in ring.edges:
        provider = ctx.peer(edge.provider_id)
        requester = ctx.peer(edge.requester_id)
        download = requester.pending[edge.object_id]
        existing = download.transfer_from(edge.provider_id)
        if existing is not None:
            # The same edge was being served as a normal transfer: the
            # session is "canceled and replaced" by the exchange (§IV-B).
            existing.terminate(TerminationReason.REPLACED_BY_EXCHANGE, requeue=False)
        if provider.upload_pool.free <= 0:
            preempt_for_exchange(provider)
        transfer = Transfer(ctx, provider=provider, requester=requester,
                            download=download, ring=ring)
        entry = provider.irq.get(edge.requester_id, edge.object_id)
        if entry is not None and entry.queued:
            # The registered request is now satisfied by the exchange; it
            # stays registered (and returns to the queue if the ring breaks).
            transfer.bind_entry(entry)
        ring.attach(transfer)
        transfer.start()
    ring.activate(ctx.now)
    return ring
