"""Columnar peer-state table: id-indexed numpy rows behind the registry.

The simulator's hot paths repeatedly ask the same scalar questions of
many peers at once — "which peers are online sharers?", "which of these
providers also appear in my request index?".  Answering them through
the ``Dict[int, Peer]`` registry touches one Python object per peer;
at the ``huge`` preset (50k+ peers) that is 50k attribute loads per
scan.  :class:`PeerStateTable` keeps the *scan-relevant* slice of peer
state as struct-of-arrays numpy columns indexed by peer id, so those
questions become single vectorized mask expressions.

The table is a **mirror, never the source of truth**: :class:`~repro.
network.peer.Peer` objects keep owning their state and push updates
here from the same mutation points that already publish state changes
(construction, ``disconnect``/``reconnect``, ``set_sharing``,
``set_policy``, retirement).  Readers therefore see exactly the state
the object graph holds, one write behind nothing.

Trajectory invariance: every reader is *order-identical* to the loop it
replaces.  Peer ids are allocated monotonically and never reused, so
``np.flatnonzero(mask)`` enumerates exactly the ids an ascending-id
scan (or a ``sorted()`` over registry keys) would produce.  The
provider/index bitset intersection returns the same ascending id list
as ``sorted(providers & index_keys)``, and it is size-gated: tiny sets
(the common case at small scale — provider sets average < 2 peers)
stay on plain set intersection, which is faster there.  Nothing here
filters ring candidates — counter-visible behaviour (``ring.attempt``,
``ring.reject.*``) is untouched.

The per-object provider-mask cache keys off the same version
fingerprint the idle-search gate uses (``LookupService.
object_version``), so a cached mask is exactly as fresh as the gate's
own view of the world.  The request-index side of the intersection
needs no mask at all: the IRQ hands over its sorted CSR key array and
the provider mask is fancy-indexed by it — O(index size) per probe and
zero per-searcher cache (the old per-searcher bool masks were the
single largest RSS consumer at 50k peers).
"""

from __future__ import annotations

from typing import AbstractSet, Dict, Iterable, List, Optional, Set, Tuple

import numpy as np

#: Minimum size of *both* operands before the bitset intersection path
#: engages; below it, plain set intersection wins (measured: provider
#: sets average 1.6 peers at the ``small`` preset, where building a
#: mask would cost more than the whole set operation).
BITSET_MIN = 64

#: Cap on cached per-object provider masks.  Each mask is one byte per
#: table row (~50 KB at the ``huge`` preset), so the cache tops out
#: around a dozen MB instead of scaling with catalog size.  Eviction is
#: insertion-ordered — purely a perf knob, never trajectory-visible.
PROVIDER_MASK_CACHE_MAX = 256

#: Initial row capacity; growth doubles from here.
_INITIAL_CAPACITY = 1024


class PeerStateTable:
    """Struct-of-arrays mirror of scan-relevant peer state."""

    def __init__(self, capacity: int = _INITIAL_CAPACITY) -> None:
        capacity = max(1, capacity)
        #: Rows in use: ``max(peer_id) + 1`` over registered peers.
        self.size = 0
        self.online = np.zeros(capacity, dtype=bool)
        self.shares = np.zeros(capacity, dtype=bool)
        self.enables_exchanges = np.zeros(capacity, dtype=bool)
        self.departed = np.zeros(capacity, dtype=bool)
        self.max_ring = np.zeros(capacity, dtype=np.int32)
        self.class_code = np.zeros(capacity, dtype=np.int32)
        self.registered = np.zeros(capacity, dtype=bool)
        #: Bumped on every column write; readers key caches off it.
        self.version = 0
        # Interned class labels; code 0 is the empty label.
        self._class_labels: List[str] = [""]
        self._class_codes: Dict[str, int] = {"": 0}
        # object_id -> (object_version, capacity, mask); bounded LRU-ish
        # (insertion-ordered, oldest evicted) so a long catalog cannot
        # accumulate masks without bound.
        self._provider_masks: Dict[int, Tuple[int, int, np.ndarray]] = {}

    # ------------------------------------------------------------------
    # registration & mutation (called from Peer / the simulation)
    # ------------------------------------------------------------------
    def _ensure(self, peer_id: int) -> None:
        capacity = self.online.shape[0]
        if peer_id >= capacity:
            new_capacity = capacity
            while peer_id >= new_capacity:
                new_capacity *= 2
            grow = new_capacity - capacity
            for name in (
                "online",
                "shares",
                "enables_exchanges",
                "departed",
                "max_ring",
                "class_code",
                "registered",
            ):
                column = getattr(self, name)
                setattr(
                    self,
                    name,
                    np.concatenate(
                        [column, np.zeros(grow, dtype=column.dtype)]
                    ),
                )
        if peer_id >= self.size:
            self.size = peer_id + 1

    def register(
        self,
        peer_id: int,
        *,
        online: bool,
        shares: bool,
        enables_exchanges: bool,
        max_ring: int,
        class_name: str = "",
    ) -> None:
        """Add (or overwrite) one peer's row; rows are never removed."""
        self._ensure(peer_id)
        self.online[peer_id] = online
        self.shares[peer_id] = shares
        self.enables_exchanges[peer_id] = enables_exchanges
        self.departed[peer_id] = False
        self.max_ring[peer_id] = max_ring
        code = self._class_codes.get(class_name)
        if code is None:
            code = len(self._class_labels)
            self._class_codes[class_name] = code
            self._class_labels.append(class_name)
        self.class_code[peer_id] = code
        self.registered[peer_id] = True
        self.version += 1

    def set_online(self, peer_id: int, online: bool) -> None:
        """Mirror a connectivity flip (disconnect/reconnect)."""
        self._ensure(peer_id)
        self.online[peer_id] = online
        self.version += 1

    def set_shares(self, peer_id: int, shares: bool) -> None:
        """Mirror a sharing-behaviour flip (strategy layer, shocks)."""
        self._ensure(peer_id)
        self.shares[peer_id] = shares
        self.version += 1

    def set_policy(self, peer_id: int, enables_exchanges: bool, max_ring: int) -> None:
        """Mirror a mid-run mechanism switch (adoption ramps)."""
        self._ensure(peer_id)
        self.enables_exchanges[peer_id] = enables_exchanges
        self.max_ring[peer_id] = max_ring
        self.version += 1

    def set_departed(self, peer_id: int) -> None:
        """Mirror permanent retirement (scenario departures)."""
        self._ensure(peer_id)
        self.departed[peer_id] = True
        self.version += 1

    # ------------------------------------------------------------------
    # vectorized scans (order-identical to ascending-id registry loops)
    # ------------------------------------------------------------------
    def _view(self, column: np.ndarray) -> np.ndarray:
        return column[: self.size]

    def alive_ids(self, class_name: Optional[str] = None) -> List[int]:
        """Ascending ids of non-departed peers, optionally one class.

        Replaces ``sorted(id for id, p in peers.items() if not
        p.departed and (class_name is None or p.class_name ==
        class_name))`` — identical output, one mask expression.  A
        class label never registered matches nothing.
        """
        mask = self._view(self.registered) & ~self._view(self.departed)
        if class_name is not None:
            code = self._class_codes.get(class_name)
            if code is None:
                return []
            mask = mask & (self._view(self.class_code) == code)
        ids: List[int] = np.flatnonzero(mask).tolist()
        return ids

    def sharer_ids(self, online_only: bool = True) -> List[int]:
        """Ascending ids of non-departed sharing peers.

        ``online_only=True`` mirrors ``peer.behavior.shares and
        peer.online and not peer.departed``; ``False`` drops the
        connectivity requirement (flash-crowd offline seeding).
        """
        mask = self._view(self.shares) & ~self._view(self.departed)
        if online_only:
            mask = mask & self._view(self.online)
        ids: List[int] = np.flatnonzero(mask).tolist()
        return ids

    def counts(self) -> Dict[str, int]:
        """Population tallies for diagnostics and benchmark artifacts."""
        alive = self._view(self.registered) & ~self._view(self.departed)
        online = self._view(self.online) & alive
        return {
            "registered": int(np.count_nonzero(self._view(self.registered))),
            "alive": int(np.count_nonzero(alive)),
            "online": int(np.count_nonzero(online)),
            "online_sharers": int(
                np.count_nonzero(online & self._view(self.shares))
            ),
        }

    # ------------------------------------------------------------------
    # provider ∩ request-index intersection (ring search)
    # ------------------------------------------------------------------
    def _provider_mask(
        self, object_id: int, object_version: int, providers: Iterable[int]
    ) -> np.ndarray:
        capacity = self.online.shape[0]
        entry = self._provider_masks.get(object_id)
        if (
            entry is not None
            and entry[0] == object_version
            and entry[1] == capacity
        ):
            return entry[2]
        mask = np.zeros(capacity, dtype=bool)
        mask[list(providers)] = True
        cache = self._provider_masks
        if object_id not in cache and len(cache) >= PROVIDER_MASK_CACHE_MAX:
            cache.pop(next(iter(cache)))
        cache[object_id] = (object_version, capacity, mask)  # simlint: disable=VER001 -- mask cache keyed by (object_version, capacity); column writes bump version independently
        return mask

    def sorted_intersection(
        self,
        object_id: int,
        object_version: int,
        providers: Set[int],
        index_keys_sorted: Optional[np.ndarray],
        index_keys: "AbstractSet[int]",
    ) -> List[int]:
        """``sorted(providers & index_keys)``, mask-backed when large.

        ``index_keys_sorted`` must be the ascending unique array form of
        ``index_keys`` (the IRQ's sorted key array), or None to force
        the set path.  Small operands (< :data:`BITSET_MIN` on either
        side) use plain set intersection — measured faster there.  Large
        ones fancy-index a cached per-object provider mask with the key
        array: the key array is ascending, so the selected subsequence
        equals the sorted set intersection exactly, at O(len(index_keys))
        per call instead of an AND over the whole id space.
        """
        if index_keys_sorted is None or len(providers) < BITSET_MIN:
            return sorted(providers & index_keys)
        provider_mask = self._provider_mask(object_id, object_version, providers)
        hits: List[int] = index_keys_sorted[
            provider_mask[index_keys_sorted]
        ].tolist()
        return hits

    def storage_nbytes(self) -> int:
        """Bytes held by the column arrays (mask caches excluded)."""
        return sum(
            int(getattr(self, name).nbytes)
            for name in (
                "online",
                "shares",
                "enables_exchanges",
                "departed",
                "max_ring",
                "class_code",
                "registered",
            )
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"PeerStateTable(size={self.size}, version={self.version})"
