"""Exchange policies: which rings to look for, and in what order.

The paper evaluates four mechanisms:

* **no exchange** — the baseline scheduler, FIFO over the IRQ;
* **pairwise** — only 2-way exchanges;
* **N-2-way** (e.g. ``5-2-way``) — prefer *longer* rings, falling back
  to shorter ones ("aggressively seek out feasible longer exchange
  rings before resorting to shorter rings");
* **2-N-way** (e.g. ``2-5-way``) — prefer *shorter* rings, only looking
  for longer ones when no shorter ring is feasible.

A policy fixes the maximum ring size (which also bounds the request-tree
snapshot depth) and orders ring candidates for the commit loop.
"""

from __future__ import annotations

import re
from typing import List, Sequence

from repro.core.ring_search import RingCandidate
from repro.errors import ConfigError


class ExchangePolicy:
    """Base policy: knows its max ring size and orders candidates."""

    def __init__(self, name: str, max_ring: int) -> None:
        if max_ring < 0:
            raise ConfigError(f"max_ring must be >= 0, got {max_ring}")
        self.name = name
        self.max_ring = max_ring

    @property
    def enables_exchanges(self) -> bool:
        """Whether this policy forms rings at all (``max_ring >= 2``)."""
        return self.max_ring >= 2

    @property
    def tree_levels(self) -> int:
        """Levels of request tree attached to outgoing requests.

        A composite tree of ``max_ring`` levels needs snapshots of
        ``max_ring - 1`` levels (the recipient adds the root).
        """
        return max(0, self.max_ring - 1)

    def accepts(self, ring_size: int) -> bool:
        """Whether a ring of ``ring_size`` members is admissible."""
        return 2 <= ring_size <= self.max_ring

    def order(self, candidates: Sequence[RingCandidate]) -> List[RingCandidate]:
        """Candidates in preference order; default: discovery order.

        The admissibility filters below inline :meth:`accepts` — the
        commit loop orders every candidate of every search pass, so the
        per-candidate method call is measurable at 50k peers.
        """
        max_ring = self.max_ring
        return [c for c in candidates if 2 <= c.size <= max_ring]

    def __repr__(self) -> str:
        return f"{type(self).__name__}(name={self.name!r}, max_ring={self.max_ring})"


class NoExchangePolicy(ExchangePolicy):
    """The paper's "no exchange" baseline: plain FIFO service."""

    def __init__(self) -> None:
        super().__init__("none", 0)

    def order(self, candidates: Sequence[RingCandidate]) -> List[RingCandidate]:
        """No candidates are ever acceptable."""
        return []


class PairwiseOnlyPolicy(ExchangePolicy):
    """Only 2-way exchanges are sought."""

    def __init__(self) -> None:
        super().__init__("pairwise", 2)


class ShortestFirstPolicy(ExchangePolicy):
    """``2-N-way``: prefer shorter rings; longer only as a fallback."""

    def __init__(self, max_ring: int) -> None:
        if max_ring < 2:
            raise ConfigError(f"2-N-way needs max_ring >= 2, got {max_ring}")
        super().__init__(f"2-{max_ring}-way", max_ring)

    def order(self, candidates: Sequence[RingCandidate]) -> List[RingCandidate]:
        """Admissible candidates, shortest rings first (stable)."""
        max_ring = self.max_ring
        accepted = [c for c in candidates if 2 <= c.size <= max_ring]
        return sorted(accepted, key=lambda c: c.size)  # stable: keeps FIFO ties


class LongestFirstPolicy(ExchangePolicy):
    """``N-2-way``: aggressively prefer longer rings over shorter."""

    def __init__(self, max_ring: int) -> None:
        if max_ring < 1:
            raise ConfigError(f"N-2-way needs max_ring >= 1, got {max_ring}")
        super().__init__(f"{max_ring}-2-way", max_ring)

    def order(self, candidates: Sequence[RingCandidate]) -> List[RingCandidate]:
        """Admissible candidates, longest rings first (stable)."""
        max_ring = self.max_ring
        accepted = [c for c in candidates if 2 <= c.size <= max_ring]
        return sorted(accepted, key=lambda c: -c.size)


_N2WAY = re.compile(r"^(\d+)-2-way$")
_2NWAY = re.compile(r"^2-(\d+)-way$")


def parse_mechanism(spec: str) -> ExchangePolicy:
    """Build a policy from a mechanism string.

    Accepted forms: ``"none"``, ``"pairwise"``, ``"N-2-way"`` (longest
    first) and ``"2-N-way"`` (shortest first).  ``"2-2-way"`` is the
    same as ``"pairwise"``.
    """
    spec = spec.strip().lower()
    if spec in ("none", "no-exchange", "noexchange"):
        return NoExchangePolicy()
    if spec in ("pairwise", "2-way", "2-2-way"):
        return PairwiseOnlyPolicy()
    match = _2NWAY.match(spec)
    if match:
        return ShortestFirstPolicy(int(match.group(1)))
    match = _N2WAY.match(spec)
    if match:
        max_ring = int(match.group(1))
        if max_ring == 2:
            return PairwiseOnlyPolicy()
        return LongestFirstPolicy(max_ring)
    raise ConfigError(
        f"unknown exchange mechanism {spec!r}; expected 'none', 'pairwise', "
        "'N-2-way' or '2-N-way'"
    )
