"""Ring-initiation token validation (paper §III-A).

"In practice, P must circulate a token through the proposed ring to
determine whether everyone is still willing to serve."  Request trees
are frozen snapshots, so by the time a ring is proposed some members may
have gone offline, completed their download, evicted the object, or
committed their slots to a competing ring ("it is possible that several
peers along the intended cycle will attempt to create the same ring
roughly simultaneously").

The simulator executes the token pass instantaneously (the paper's own
simulation makes the same simplification; §V) but checks the same
predicates a real token pass would, failing with a reason string that
metrics aggregate — the reject mix is itself an interesting measurement.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterable, Optional, Tuple

from repro.core.ring import RingEdge
from repro.errors import TokenValidationFailed

if TYPE_CHECKING:  # pragma: no cover - hints only
    from repro.context import SimContext
    from repro.network.peer import Peer


#: Reasons a token pass can fail; kept as constants so metrics keys are stable.
REASON_OFFLINE = "member-offline"
REASON_NOT_SHARING = "member-not-sharing"
REASON_NOT_EXCHANGING = "member-not-exchanging"
REASON_RING_TOO_LONG = "ring-size-not-accepted"
REASON_OBJECT_GONE = "object-gone"
REASON_NO_LONGER_WANTED = "no-longer-wanted"
REASON_ALREADY_EXCHANGING = "already-exchanging"
REASON_NO_UPLOAD_SLOT = "no-upload-slot"
REASON_NO_DOWNLOAD_SLOT = "no-download-slot"


def validate_ring(ctx: "SimContext", edges: Iterable[RingEdge]) -> None:
    """Run the token pass; raises :class:`TokenValidationFailed` on veto.

    For every edge the *provider* must be online, sharing, hold the
    object (or enough of it, under the partial-serving extension) and
    have an upload slot not already committed to another exchange
    (non-exchange uploads are preemptible, so they do not count
    against availability).  The *requester* must still want the object
    — an open, not-yet-exchange-served download with unassigned blocks
    — and be able to receive it.
    """
    edges = list(edges)
    ring_size = len(edges)
    peers = ctx.peers
    for edge in edges:
        veto = edge_veto(
            peers[edge.requester_id], peers[edge.provider_id], edge.object_id, ring_size
        )
        if veto is not None:
            raise TokenValidationFailed(veto[0], veto[1])


def edge_veto(
    requester: "Peer", provider: "Peer", object_id: int, ring_size: int
) -> Optional[Tuple[str, int]]:
    """One edge's token check: ``(reason, peer_id)`` on veto, else None.

    The exception-free core of :func:`validate_ring` — the exchange
    manager's commit loop calls it directly (and memoizes the result per
    pass) because at scale ~99% of ring attempts are vetoed, and raising
    through a try/except per attempt dominates the scan's cost.  Check
    order is observable through the reject-reason counters, so it must
    never be reordered.
    """
    if not provider.online:
        return (REASON_OFFLINE, provider.peer_id)
    if not provider.behavior.shares:
        return (REASON_NOT_SHARING, provider.peer_id)
    if not provider.policy.enables_exchanges:
        # Heterogeneous populations: a member that has not adopted
        # the exchange mechanism never answers the token.  Vacuous
        # under a homogeneous population (the initiator's own policy
        # already gates the search), so legacy runs are unchanged.
        return (REASON_NOT_EXCHANGING, provider.peer_id)
    if not 2 <= ring_size <= provider.policy.max_ring:
        # Likewise per-member: a pairwise-class peer refuses a
        # 3..N-way ring even when an N-way initiator proposed it.
        # (policy.accepts inlined: ~millions of edge checks per run.)
        return (REASON_RING_TOO_LONG, provider.peer_id)
    if not provider.can_serve(object_id):
        return (REASON_OBJECT_GONE, provider.peer_id)
    if provider.exchange_upload_count >= provider.upload_pool.total:
        return (REASON_NO_UPLOAD_SLOT, provider.peer_id)

    if not requester.online:
        return (REASON_OFFLINE, requester.peer_id)
    if not requester.policy.enables_exchanges:
        return (REASON_NOT_EXCHANGING, requester.peer_id)
    if not 2 <= ring_size <= requester.policy.max_ring:
        return (REASON_RING_TOO_LONG, requester.peer_id)
    download = requester.pending.get(object_id)
    if download is None or download.completed or download.unassigned_blocks <= 0:
        return (REASON_NO_LONGER_WANTED, requester.peer_id)
    if download.has_exchange_transfer:
        # Paper: one registered request can join at most one exchange.
        return (REASON_ALREADY_EXCHANGING, requester.peer_id)
    if requester.download_pool.free <= 0 and download.transfer_from(provider.peer_id) is None:
        return (REASON_NO_DOWNLOAD_SLOT, requester.peer_id)
    return None
