"""Experiment harness: one entry point per paper table/figure.

Each figure of the paper's evaluation (§IV-B) has a function in
:mod:`repro.experiments.figures` that builds the parameter sweep from a
scale preset, runs the simulations and returns a
:class:`~repro.experiments.report.SeriesTable` shaped like the paper's
plot.  The ``repro-experiments`` CLI (:mod:`repro.experiments.runner`)
runs them from the command line; the benchmarks wrap them with
qualitative shape assertions.
"""

from repro.experiments.presets import SCALES, preset
from repro.experiments.report import SeriesTable

__all__ = ["SCALES", "SeriesTable", "preset"]
