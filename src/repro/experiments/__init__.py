"""Experiment harness: one entry point per paper table/figure.

Each figure of the paper's evaluation (§IV-B) has a declarative
:class:`~repro.experiments.figures.FigureSpec` — a grid of independent
``(config, seed)`` cells plus an assembly step — that the orchestrator
(:mod:`repro.experiments.orchestrator`) schedules serially or across a
process pool, with optional multi-seed replication and an on-disk
result cache.  The ``repro-experiments`` CLI
(:mod:`repro.experiments.runner`) runs them from the command line; the
benchmarks wrap them with qualitative shape assertions.
"""

from repro.experiments.orchestrator import (
    MemoryCache,
    ResultCache,
    config_fingerprint,
    run_figure,
    run_figures,
    run_grid,
)
from repro.experiments.presets import SCALES, SWEEP_GRIDS, preset, sweep
from repro.experiments.report import SeriesTable, aggregate_tables

__all__ = [
    "SCALES",
    "SWEEP_GRIDS",
    "SeriesTable",
    "MemoryCache",
    "ResultCache",
    "aggregate_tables",
    "config_fingerprint",
    "preset",
    "run_figure",
    "run_figures",
    "run_grid",
    "sweep",
]
