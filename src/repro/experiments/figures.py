"""Per-figure experiment definitions (paper §IV-B, Figs. 4-12).

Every function runs the sweep behind one figure of the paper and
returns a :class:`~repro.experiments.report.SeriesTable` whose columns
mirror the figure's legend.  Mean download times are in minutes,
volumes in MB, waiting times in minutes — the paper's units.

The ``scale`` argument selects a preset from
:mod:`repro.experiments.presets`; ``seed`` feeds the deterministic RNG
so every run is reproducible bit-for-bit.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Sequence

from repro.config import SimulationConfig
from repro.errors import ConfigError
from repro.experiments.presets import preset
from repro.experiments.report import SeriesTable
from repro.metrics.cdf import EmpiricalCDF
from repro.simulation import SimulationResult, run_simulation

#: The paper's four mechanisms, in its legend order.
MECHANISMS = ("pairwise", "5-2-way", "2-5-way")
CDF_CLASSES = ("non-exchange", "pairwise", "3-way", "4-way", "5-way")


def _mechanism_columns() -> List[str]:
    columns: List[str] = []
    for mechanism in MECHANISMS:
        columns.append(f"{mechanism}/sharing")
        columns.append(f"{mechanism}/non-sharing")
    columns.append("no-exchange")
    return columns


def _download_time_row(results: Dict[str, SimulationResult]) -> Dict[str, Optional[float]]:
    """Extract the per-mechanism sharing/non-sharing download times."""
    row: Dict[str, Optional[float]] = {}
    for mechanism in MECHANISMS:
        summary = results[mechanism].summary
        row[f"{mechanism}/sharing"] = summary.mean_download_time_sharers_min
        row[f"{mechanism}/non-sharing"] = summary.mean_download_time_freeloaders_min
    row["no-exchange"] = results["none"].summary.mean_download_time_all_min
    return row


def _run_mechanism_grid(
    config_for: Callable[[str], SimulationConfig]
) -> Dict[str, SimulationResult]:
    return {
        mechanism: run_simulation(config_for(mechanism))
        for mechanism in MECHANISMS + ("none",)
    }


# ---------------------------------------------------------------------------
# Fig. 4 / Fig. 5 — sweep over upload capacity
# ---------------------------------------------------------------------------

#: The paper sweeps 40..140 kbit/s; smoke uses a 3-point subset for speed.
CAPACITY_GRID = {"paper": (140.0, 120.0, 100.0, 80.0, 60.0, 40.0),
                 "small": (120.0, 80.0, 40.0),
                 "smoke": (120.0, 80.0, 40.0)}


def fig4_download_time_vs_capacity(scale: str = "smoke", seed: int = 42) -> SeriesTable:
    """Fig. 4: mean download time vs upload capacity, per mechanism/class."""
    table = SeriesTable(
        "Fig.4 mean download time (min) vs upload capacity (kbit/s)",
        "upload_kbit",
        _mechanism_columns(),
    )
    for capacity in CAPACITY_GRID[scale]:
        results = _run_mechanism_grid(
            lambda mechanism: preset(
                scale,
                exchange_mechanism=mechanism,
                upload_capacity_kbit=capacity,
                seed=seed,
            )
        )
        table.add_row(capacity, _download_time_row(results))
    return table


def fig5_exchange_fraction_vs_capacity(scale: str = "smoke", seed: int = 42) -> SeriesTable:
    """Fig. 5: fraction of exchange sessions vs upload capacity."""
    table = SeriesTable(
        "Fig.5 fraction of exchange sessions vs upload capacity (kbit/s)",
        "upload_kbit",
        list(MECHANISMS),
    )
    for capacity in CAPACITY_GRID[scale]:
        row: Dict[str, Optional[float]] = {}
        for mechanism in MECHANISMS:
            result = run_simulation(
                preset(
                    scale,
                    exchange_mechanism=mechanism,
                    upload_capacity_kbit=capacity,
                    seed=seed,
                )
            )
            row[mechanism] = result.summary.exchange_session_fraction
        table.add_row(capacity, row)
    return table


# ---------------------------------------------------------------------------
# Fig. 6 — sweep over the maximum ring size N
# ---------------------------------------------------------------------------

RING_SIZE_GRID = {"paper": (1, 2, 3, 4, 5, 6, 7), "small": (1, 2, 3, 5, 7),
                  "smoke": (2, 3, 5)}


def fig6_ring_size_sweep(scale: str = "smoke", seed: int = 42) -> SeriesTable:
    """Fig. 6: download time vs max ring size, N-2-way and 2-N-way."""
    table = SeriesTable(
        "Fig.6 mean download time (min) vs maximum exchange ring size N",
        "max_ring_N",
        [
            "N-2-way/sharing",
            "N-2-way/non-sharing",
            "2-N-way/sharing",
            "2-N-way/non-sharing",
        ],
    )
    for n in RING_SIZE_GRID[scale]:
        row: Dict[str, Optional[float]] = {}
        for family, spec in (("N-2-way", f"{n}-2-way"), ("2-N-way", f"2-{n}-way")):
            if n < 2:
                spec = "none"  # N=1: no feasible ring, the paper's leftmost point
            if n == 2:
                spec = "pairwise"
            result = run_simulation(
                preset(scale, exchange_mechanism=spec, seed=seed)
            )
            summary = result.summary
            row[f"{family}/sharing"] = summary.mean_download_time_sharers_min
            row[f"{family}/non-sharing"] = summary.mean_download_time_freeloaders_min
        table.add_row(float(n), row)
    return table


# ---------------------------------------------------------------------------
# Fig. 7 / Fig. 8 — per-class CDFs at the base configuration
# ---------------------------------------------------------------------------

def _class_cdf_table(
    title: str,
    x_label: str,
    grid: Sequence[float],
    samples_by_class: Dict[str, List[float]],
) -> SeriesTable:
    table = SeriesTable(title, x_label, list(CDF_CLASSES))
    cdfs = {
        label: EmpiricalCDF(samples)
        for label, samples in samples_by_class.items()
        if samples and label in CDF_CLASSES
    }
    for x in grid:
        table.add_row(
            x, {label: cdf(x) for label, cdf in cdfs.items()}
        )
    return table


def fig7_session_volume_cdf(scale: str = "smoke", seed: int = 42) -> SeriesTable:
    """Fig. 7: CDF of per-session transferred bytes, by traffic class."""
    result = run_simulation(preset(scale, exchange_mechanism="2-5-way", seed=seed))
    volumes = result.summary.session_volume_kb_by_class
    top = max((max(v) for v in volumes.values() if v), default=1.0)
    grid = [top * i / 12.0 for i in range(1, 13)]
    return _class_cdf_table(
        "Fig.7 CDF of per-session volume (kB) by traffic class",
        "volume_kb",
        grid,
        volumes,
    )


def fig8_waiting_time_cdf(scale: str = "smoke", seed: int = 42) -> SeriesTable:
    """Fig. 8: CDF of session waiting times, by traffic class."""
    result = run_simulation(preset(scale, exchange_mechanism="2-5-way", seed=seed))
    waits = result.summary.waiting_time_min_by_class
    top = max((max(v) for v in waits.values() if v), default=1.0)
    grid = [top * i / 12.0 for i in range(1, 13)]
    return _class_cdf_table(
        "Fig.8 CDF of session waiting time (min) by traffic class",
        "waiting_min",
        grid,
        waits,
    )


# ---------------------------------------------------------------------------
# Fig. 9 / Fig. 10 — sweep over the popularity factor f
# ---------------------------------------------------------------------------

FACTOR_GRID = {"paper": (0.0, 0.2, 0.4, 0.6, 0.8, 1.0), "small": (0.0, 0.4, 0.8),
               "smoke": (0.0, 0.4, 0.8)}


def fig9_download_time_vs_popularity(scale: str = "smoke", seed: int = 42) -> SeriesTable:
    """Fig. 9: mean download time vs popularity factor f."""
    table = SeriesTable(
        "Fig.9 mean download time (min) vs popularity factor f",
        "factor_f",
        _mechanism_columns(),
    )
    for factor in FACTOR_GRID[scale]:
        results = _run_mechanism_grid(
            lambda mechanism: preset(
                scale,
                exchange_mechanism=mechanism,
                category_factor=factor,
                object_factor=factor,
                seed=seed,
            )
        )
        table.add_row(factor, _download_time_row(results))
    return table


def fig10_volume_vs_popularity(scale: str = "smoke", seed: int = 42) -> SeriesTable:
    """Fig. 10: per-class transfer volume (MB per peer) vs factor f."""
    table = SeriesTable(
        "Fig.10 transfer volume (MB/peer) vs popularity factor f",
        "factor_f",
        _mechanism_columns(),
    )
    for factor in FACTOR_GRID[scale]:
        row: Dict[str, Optional[float]] = {}
        for mechanism in MECHANISMS:
            summary = run_simulation(
                preset(
                    scale,
                    exchange_mechanism=mechanism,
                    category_factor=factor,
                    object_factor=factor,
                    seed=seed,
                )
            ).summary
            row[f"{mechanism}/sharing"] = summary.volume_per_sharer_mb
            row[f"{mechanism}/non-sharing"] = summary.volume_per_freeloader_mb
        none_summary = run_simulation(
            preset(
                scale,
                exchange_mechanism="none",
                category_factor=factor,
                object_factor=factor,
                seed=seed,
            )
        ).summary
        row["no-exchange"] = (
            none_summary.volume_per_sharer_mb + none_summary.volume_per_freeloader_mb
        ) / 2.0
        table.add_row(factor, row)
    return table


# ---------------------------------------------------------------------------
# Fig. 11 — max outstanding requests x categories per peer
# ---------------------------------------------------------------------------

PENDING_GRID = {"paper": (2, 3, 4, 5, 6, 7, 8, 9, 10), "small": (2, 4, 6, 10),
                "smoke": (2, 6, 10)}
CATEGORY_GRID = (2, 4, 8)


def fig11_pending_and_categories(scale: str = "smoke", seed: int = 42) -> SeriesTable:
    """Fig. 11: sharing/non-sharing download-time ratio vs max pending.

    One series per categories-per-peer value (2, 4, 8), mechanism fixed
    to the paper's ring configuration.
    """
    table = SeriesTable(
        "Fig.11 download-time ratio (non-sharing / sharing) vs max pending requests",
        "max_pending",
        [f"cat/peer={c}" for c in CATEGORY_GRID],
    )
    for max_pending in PENDING_GRID[scale]:
        row: Dict[str, Optional[float]] = {}
        for categories in CATEGORY_GRID:
            summary = run_simulation(
                preset(
                    scale,
                    exchange_mechanism="2-5-way",
                    max_pending=max_pending,
                    categories_per_peer_min=categories,
                    categories_per_peer_max=categories,
                    # Run in the loaded regime: the ratio Fig. 11 plots
                    # only separates from 1 when slots are contended.
                    upload_capacity_kbit=40.0,
                    seed=seed,
                )
            ).summary
            row[f"cat/peer={categories}"] = summary.speedup_sharers_vs_freeloaders
        table.add_row(float(max_pending), row)
    return table


# ---------------------------------------------------------------------------
# Fig. 12 — sweep over the fraction of non-sharing peers
# ---------------------------------------------------------------------------

FREELOADER_GRID = {"paper": (0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9),
                   "small": (0.1, 0.3, 0.5, 0.7, 0.9),
                   "smoke": (0.2, 0.5, 0.8)}


def fig12_freeloader_fraction(scale: str = "smoke", seed: int = 42) -> SeriesTable:
    """Fig. 12: mean download times vs fraction of non-sharing peers."""
    table = SeriesTable(
        "Fig.12 mean download time (min) vs fraction of non-sharing peers",
        "freeloader_fraction",
        _mechanism_columns(),
    )
    for fraction in FREELOADER_GRID[scale]:
        results = _run_mechanism_grid(
            lambda mechanism: preset(
                scale,
                exchange_mechanism=mechanism,
                freeloader_fraction=fraction,
                seed=seed,
            )
        )
        table.add_row(fraction, _download_time_row(results))
    return table


#: Registry used by the CLI runner and the benchmarks.
FIGURES: Dict[str, Callable[[str, int], SeriesTable]] = {
    "fig4": fig4_download_time_vs_capacity,
    "fig5": fig5_exchange_fraction_vs_capacity,
    "fig6": fig6_ring_size_sweep,
    "fig7": fig7_session_volume_cdf,
    "fig8": fig8_waiting_time_cdf,
    "fig9": fig9_download_time_vs_popularity,
    "fig10": fig10_volume_vs_popularity,
    "fig11": fig11_pending_and_categories,
    "fig12": fig12_freeloader_fraction,
}


def run_figure(figure_id: str, scale: str = "smoke", seed: int = 42) -> SeriesTable:
    """Run one figure's sweep by id (``fig4`` .. ``fig12``)."""
    if figure_id not in FIGURES:
        raise ConfigError(
            f"unknown figure {figure_id!r}; expected one of {sorted(FIGURES)}"
        )
    return FIGURES[figure_id](scale, seed)
