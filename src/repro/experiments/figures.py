"""Per-figure experiment definitions (paper §IV-B, Figs. 4-12).

Every figure of the paper is described by a :class:`FigureSpec`: a
*declarative* grid of independent ``cell key → SimulationConfig`` pairs
plus an ``assemble`` step that folds the per-cell
:class:`~repro.metrics.summary.SimulationSummary` objects into a
:class:`~repro.experiments.report.SeriesTable` whose columns mirror the
figure's legend.  Mean download times are in minutes, volumes in MB,
waiting times in minutes — the paper's units.

Because every cell is an independent simulation, the orchestrator
(:mod:`repro.experiments.orchestrator`) can run a figure's grid — or
all figures' grids — in any order, across a process pool, and against a
result cache, and still assemble tables bit-identical to a serial run:
the cells are deterministic functions of their config (which includes
the seed).

The ``scale`` argument selects a preset from
:mod:`repro.experiments.presets`; ``seed`` feeds the deterministic RNG
so every run is reproducible bit-for-bit.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Mapping, Optional, Sequence

from repro.config import SimulationConfig
from repro.experiments.presets import (
    ADVERSARIAL_ATTACKS,
    CAPACITY_TIERS,
    CATEGORY_GRID,
    adoption_population,
    adversarial_config,
    evolution_config,
    flash_crowd_scenario,
    preset,
    swarm_growth_scenario,
    sweep,
    tiered_population,
)
from repro.experiments.report import SeriesTable
from repro.metrics.cdf import EmpiricalCDF
from repro.metrics.summary import SimulationSummary

#: The paper's four mechanisms, in its legend order.
MECHANISMS = ("pairwise", "5-2-way", "2-5-way")
CDF_CLASSES = ("non-exchange", "pairwise", "3-way", "4-way", "5-way")

#: One figure's work: unique cell key → the config that produces it.
CellGrid = Dict[str, SimulationConfig]
#: What ``assemble`` receives: one summary per cell key.
CellSummaries = Mapping[str, SimulationSummary]


@dataclass(frozen=True)
class FigureSpec:
    """Declarative description of one figure's experiment.

    ``build_grid(scale, seed)`` lists every simulation the figure needs;
    ``assemble(scale, seed, summaries)`` turns the finished cells into
    the figure's table.  Keeping the two pure and side-effect-free is
    what lets the orchestrator schedule cells freely.
    """

    figure_id: str
    description: str
    build_grid: Callable[[str, int], CellGrid]
    assemble: Callable[[str, int, CellSummaries], SeriesTable]


def _mechanism_columns() -> List[str]:
    columns: List[str] = []
    for mechanism in MECHANISMS:
        columns.append(f"{mechanism}/sharing")
        columns.append(f"{mechanism}/non-sharing")
    columns.append("no-exchange")
    return columns


def _download_time_row(
    summaries: CellSummaries, key_for: Callable[[str], str]
) -> Dict[str, Optional[float]]:
    """Per-mechanism sharing/non-sharing download times for one x."""
    row: Dict[str, Optional[float]] = {}
    for mechanism in MECHANISMS:
        summary = summaries[key_for(mechanism)]
        row[f"{mechanism}/sharing"] = summary.mean_download_time_sharers_min
        row[f"{mechanism}/non-sharing"] = summary.mean_download_time_freeloaders_min
    row["no-exchange"] = summaries[key_for("none")].mean_download_time_all_min
    return row


# ---------------------------------------------------------------------------
# Fig. 4 / Fig. 5 — sweep over upload capacity
# ---------------------------------------------------------------------------

def _capacity_grid(scale: str, seed: int, mechanisms: Sequence[str]) -> CellGrid:
    grid: CellGrid = {}
    for capacity in sweep("capacity", scale):
        for mechanism in mechanisms:
            grid[f"cap={capacity:g}/{mechanism}"] = preset(
                scale,
                exchange_mechanism=mechanism,
                upload_capacity_kbit=capacity,
                seed=seed,
            )
    return grid


def _fig4_grid(scale: str, seed: int) -> CellGrid:
    return _capacity_grid(scale, seed, MECHANISMS + ("none",))


def _fig4_assemble(scale: str, seed: int, summaries: CellSummaries) -> SeriesTable:
    table = SeriesTable(
        "Fig.4 mean download time (min) vs upload capacity (kbit/s)",
        "upload_kbit",
        _mechanism_columns(),
    )
    for capacity in sweep("capacity", scale):
        row = _download_time_row(summaries, lambda m: f"cap={capacity:g}/{m}")
        table.add_row(capacity, row)
    return table


def _fig5_grid(scale: str, seed: int) -> CellGrid:
    return _capacity_grid(scale, seed, MECHANISMS)


def _fig5_assemble(scale: str, seed: int, summaries: CellSummaries) -> SeriesTable:
    table = SeriesTable(
        "Fig.5 fraction of exchange sessions vs upload capacity (kbit/s)",
        "upload_kbit",
        list(MECHANISMS),
    )
    for capacity in sweep("capacity", scale):
        row: Dict[str, Optional[float]] = {}
        for mechanism in MECHANISMS:
            summary = summaries[f"cap={capacity:g}/{mechanism}"]
            row[mechanism] = summary.exchange_session_fraction
        table.add_row(capacity, row)
    return table


# ---------------------------------------------------------------------------
# Fig. 6 — sweep over the maximum ring size N
# ---------------------------------------------------------------------------

def _fig6_mechanism(family: str, n: int) -> str:
    if n < 2:
        return "none"  # N=1: no feasible ring, the paper's leftmost point
    if n == 2:
        return "pairwise"
    return f"{n}-2-way" if family == "N-2-way" else f"2-{n}-way"


def _fig6_grid(scale: str, seed: int) -> CellGrid:
    grid: CellGrid = {}
    for n in sweep("ring_size", scale):
        for family in ("N-2-way", "2-N-way"):
            grid[f"N={n}/{family}"] = preset(
                scale, exchange_mechanism=_fig6_mechanism(family, n), seed=seed
            )
    return grid


def _fig6_assemble(scale: str, seed: int, summaries: CellSummaries) -> SeriesTable:
    table = SeriesTable(
        "Fig.6 mean download time (min) vs maximum exchange ring size N",
        "max_ring_N",
        [
            "N-2-way/sharing",
            "N-2-way/non-sharing",
            "2-N-way/sharing",
            "2-N-way/non-sharing",
        ],
    )
    for n in sweep("ring_size", scale):
        row: Dict[str, Optional[float]] = {}
        for family in ("N-2-way", "2-N-way"):
            summary = summaries[f"N={n}/{family}"]
            row[f"{family}/sharing"] = summary.mean_download_time_sharers_min
            row[f"{family}/non-sharing"] = summary.mean_download_time_freeloaders_min
        table.add_row(float(n), row)
    return table


# ---------------------------------------------------------------------------
# Fig. 7 / Fig. 8 — per-class CDFs at the base configuration
# ---------------------------------------------------------------------------

def _class_cdf_table(
    title: str,
    x_label: str,
    grid: Sequence[float],
    samples_by_class: Dict[str, List[float]],
) -> SeriesTable:
    table = SeriesTable(title, x_label, list(CDF_CLASSES))
    cdfs = {
        label: EmpiricalCDF(samples)
        for label, samples in samples_by_class.items()
        if samples and label in CDF_CLASSES
    }
    for x in grid:
        table.add_row(
            x, {label: cdf(x) for label, cdf in cdfs.items()}
        )
    return table


def _base_cell_grid(scale: str, seed: int) -> CellGrid:
    return {"base": preset(scale, exchange_mechanism="2-5-way", seed=seed)}


def _fig7_assemble(scale: str, seed: int, summaries: CellSummaries) -> SeriesTable:
    volumes = summaries["base"].session_volume_kb_by_class
    top = max((max(v) for v in volumes.values() if v), default=1.0)
    grid = [top * i / 12.0 for i in range(1, 13)]
    return _class_cdf_table(
        "Fig.7 CDF of per-session volume (kB) by traffic class",
        "volume_kb",
        grid,
        volumes,
    )


def _fig8_assemble(scale: str, seed: int, summaries: CellSummaries) -> SeriesTable:
    waits = summaries["base"].waiting_time_min_by_class
    top = max((max(v) for v in waits.values() if v), default=1.0)
    grid = [top * i / 12.0 for i in range(1, 13)]
    return _class_cdf_table(
        "Fig.8 CDF of session waiting time (min) by traffic class",
        "waiting_min",
        grid,
        waits,
    )


# ---------------------------------------------------------------------------
# Fig. 9 / Fig. 10 — sweep over the popularity factor f
# ---------------------------------------------------------------------------

def _factor_grid(scale: str, seed: int) -> CellGrid:
    grid: CellGrid = {}
    for factor in sweep("factor", scale):
        for mechanism in MECHANISMS + ("none",):
            grid[f"f={factor:g}/{mechanism}"] = preset(
                scale,
                exchange_mechanism=mechanism,
                category_factor=factor,
                object_factor=factor,
                seed=seed,
            )
    return grid


def _fig9_assemble(scale: str, seed: int, summaries: CellSummaries) -> SeriesTable:
    table = SeriesTable(
        "Fig.9 mean download time (min) vs popularity factor f",
        "factor_f",
        _mechanism_columns(),
    )
    for factor in sweep("factor", scale):
        row = _download_time_row(summaries, lambda m: f"f={factor:g}/{m}")
        table.add_row(factor, row)
    return table


def _fig10_assemble(scale: str, seed: int, summaries: CellSummaries) -> SeriesTable:
    table = SeriesTable(
        "Fig.10 transfer volume (MB/peer) vs popularity factor f",
        "factor_f",
        _mechanism_columns(),
    )
    for factor in sweep("factor", scale):
        row: Dict[str, Optional[float]] = {}
        for mechanism in MECHANISMS:
            summary = summaries[f"f={factor:g}/{mechanism}"]
            row[f"{mechanism}/sharing"] = summary.volume_per_sharer_mb
            row[f"{mechanism}/non-sharing"] = summary.volume_per_freeloader_mb
        none_summary = summaries[f"f={factor:g}/none"]
        row["no-exchange"] = (
            none_summary.volume_per_sharer_mb + none_summary.volume_per_freeloader_mb
        ) / 2.0
        table.add_row(factor, row)
    return table


# ---------------------------------------------------------------------------
# Fig. 11 — max outstanding requests x categories per peer
# ---------------------------------------------------------------------------

def _fig11_grid(scale: str, seed: int) -> CellGrid:
    grid: CellGrid = {}
    for max_pending in sweep("pending", scale):
        for categories in CATEGORY_GRID:
            grid[f"pending={max_pending}/cat={categories}"] = preset(
                scale,
                exchange_mechanism="2-5-way",
                max_pending=max_pending,
                categories_per_peer_min=categories,
                categories_per_peer_max=categories,
                # Run in the loaded regime: the ratio Fig. 11 plots
                # only separates from 1 when slots are contended.
                upload_capacity_kbit=40.0,
                seed=seed,
            )
    return grid


def _fig11_assemble(scale: str, seed: int, summaries: CellSummaries) -> SeriesTable:
    table = SeriesTable(
        "Fig.11 download-time ratio (non-sharing / sharing) vs max pending requests",
        "max_pending",
        [f"cat/peer={c}" for c in CATEGORY_GRID],
    )
    for max_pending in sweep("pending", scale):
        row: Dict[str, Optional[float]] = {}
        for categories in CATEGORY_GRID:
            summary = summaries[f"pending={max_pending}/cat={categories}"]
            row[f"cat/peer={categories}"] = summary.speedup_sharers_vs_freeloaders
        table.add_row(float(max_pending), row)
    return table


# ---------------------------------------------------------------------------
# Fig. 12 — sweep over the fraction of non-sharing peers
# ---------------------------------------------------------------------------

def _fig12_grid(scale: str, seed: int) -> CellGrid:
    grid: CellGrid = {}
    for fraction in sweep("freeloader", scale):
        for mechanism in MECHANISMS + ("none",):
            grid[f"fl={fraction:g}/{mechanism}"] = preset(
                scale,
                exchange_mechanism=mechanism,
                freeloader_fraction=fraction,
                seed=seed,
            )
    return grid


def _fig12_assemble(scale: str, seed: int, summaries: CellSummaries) -> SeriesTable:
    table = SeriesTable(
        "Fig.12 mean download time (min) vs fraction of non-sharing peers",
        "freeloader_fraction",
        _mechanism_columns(),
    )
    for fraction in sweep("freeloader", scale):
        row = _download_time_row(summaries, lambda m: f"fl={fraction:g}/{m}")
        table.add_row(fraction, row)
    return table


# ---------------------------------------------------------------------------
# Adoption sweep — fraction of sharers running the exchange mechanism
# ---------------------------------------------------------------------------

ADOPTION_CLASSES = ("adopter", "holdout", "freeloader")


def _adoption_grid(scale: str, seed: int) -> CellGrid:
    grid: CellGrid = {}
    for adoption in sweep("adoption", scale):
        grid[f"adopt={adoption:g}"] = preset(
            scale, population=adoption_population(adoption), seed=seed
        )
    return grid


def _adoption_assemble(scale: str, seed: int, summaries: CellSummaries) -> SeriesTable:
    table = SeriesTable(
        "Adoption sweep: mean download time (min) per class vs "
        "fraction of sharers running exchanges",
        "adoption",
        list(ADOPTION_CLASSES),
    )
    for adoption in sweep("adoption", scale):
        summary = summaries[f"adopt={adoption:g}"]
        table.add_row(
            adoption,
            {
                label: summary.mean_download_time_min_by_class.get(label)
                for label in ADOPTION_CLASSES
            },
        )
    return table


# ---------------------------------------------------------------------------
# Capacity tiers — broadband / DSL / modem sharer classes
# ---------------------------------------------------------------------------

TIER_MECHANISMS = ("2-5-way", "none")


def _tiers_grid(scale: str, seed: int) -> CellGrid:
    return {
        f"tiers/{mechanism}": preset(
            scale, population=tiered_population(mechanism), seed=seed
        )
        for mechanism in TIER_MECHANISMS
    }


def _tiers_assemble(scale: str, seed: int, summaries: CellSummaries) -> SeriesTable:
    table = SeriesTable(
        "Capacity tiers: mean download time (min) per class vs tier "
        "uplink (kbit/s); the x=0 row is the freeloader class",
        "tier_uplink_kbit",
        list(TIER_MECHANISMS),
    )
    rows = [(up, name) for name, (up, _down) in CAPACITY_TIERS.items()]
    rows.append((0.0, "freeloader"))
    for x, label in sorted(rows, reverse=True):
        table.add_row(
            x,
            {
                mechanism: summaries[
                    f"tiers/{mechanism}"
                ].mean_download_time_min_by_class.get(label)
                for mechanism in TIER_MECHANISMS
            },
        )
    return table


# ---------------------------------------------------------------------------
# Scenario timelines — flash crowd and swarm growth (open-system dynamics)
# ---------------------------------------------------------------------------

SCENARIO_MECHANISMS = ("2-5-way", "none")


def _scenario_grid(scale: str, seed: int, scenario_fn) -> CellGrid:
    grid: CellGrid = {}
    for mechanism in SCENARIO_MECHANISMS:
        base = preset(scale, exchange_mechanism=mechanism, seed=seed)
        grid[mechanism] = base.replace(scenario=scenario_fn(base))
    return grid


def _scenario_assemble(
    title: str, phases: Sequence[str], summaries: CellSummaries
) -> SeriesTable:
    """Per-phase download time and completion counts, one row per phase."""
    columns: List[str] = []
    for mechanism in SCENARIO_MECHANISMS:
        columns.append(f"{mechanism}/time")
        columns.append(f"{mechanism}/completed")
    table = SeriesTable(title, "phase_index", columns)
    for index, phase in enumerate(phases):
        row: Dict[str, Optional[float]] = {}
        for mechanism in SCENARIO_MECHANISMS:
            summary = summaries[mechanism]
            row[f"{mechanism}/time"] = summary.mean_download_time_min_by_phase.get(
                phase
            )
            row[f"{mechanism}/completed"] = float(
                summary.completed_downloads_by_phase.get(phase, 0)
            )
        table.add_row(float(index), row)
    return table


def _flashcrowd_grid(scale: str, seed: int) -> CellGrid:
    return _scenario_grid(scale, seed, flash_crowd_scenario)


def _flashcrowd_assemble(
    scale: str, seed: int, summaries: CellSummaries
) -> SeriesTable:
    return _scenario_assemble(
        "Flash crowd: mean download time (min) and completions per phase "
        "(0=steady, 1=flash, 2=decay)",
        ("steady", "flash", "decay"),
        summaries,
    )


def _swarm_growth_grid(scale: str, seed: int) -> CellGrid:
    return _scenario_grid(scale, seed, swarm_growth_scenario)


def _swarm_growth_assemble(
    scale: str, seed: int, summaries: CellSummaries
) -> SeriesTable:
    return _scenario_assemble(
        "Swarm growth: mean download time (min) and completions per phase "
        "(0=seed population, 1/2=arrival waves, +50% peers total)",
        ("seed", "wave1", "wave2"),
        summaries,
    )


# ---------------------------------------------------------------------------
# Evolution — adaptive strategy dynamics under each incentive mechanism
# ---------------------------------------------------------------------------

#: Legend order of the ``evolution`` figure's columns (weakest incentive
#: first — the qualitative equilibrium ordering of the related work is
#: that sharing rises left to right).
EVOLUTION_MECHANISMS = ("none", "credit", "participation", "exchange")


def _evolution_grid(scale: str, seed: int) -> CellGrid:
    return {
        mechanism: evolution_config(scale, mechanism, seed)
        for mechanism in EVOLUTION_MECHANISMS
    }


def _evolution_assemble(scale: str, seed: int, summaries: CellSummaries) -> SeriesTable:
    """Sharing-fraction trajectories, one row per revision epoch.

    Every cell runs the same revision cadence, so epoch indices align
    across mechanisms.  The expected qualitative picture (related work:
    Salek et al., Buragohain et al.; seed-pinned at the default seed)
    is equilibrium sharing ordered ``exchange >= participation >=
    credit >= none`` — the no-incentive and weak credit populations
    collapse toward free-riding while honest participation and exchange
    priority sustain sharing.  Individual trajectories are strongly
    path-dependent (equilibrium selection under noisy best response),
    so other seeds may settle elsewhere; the ordering claim is about
    the default-seed preset the test pins.
    """
    table = SeriesTable(
        "Evolution: population sharing fraction per strategy-revision epoch "
        "(best response; columns = incentive mechanism)",
        "epoch",
        list(EVOLUTION_MECHANISMS),
    )
    series = {
        mechanism: summaries[mechanism].sharing_fraction_by_epoch
        for mechanism in EVOLUTION_MECHANISMS
    }
    epochs = max((len(points) for points in series.values()), default=0)
    for index in range(epochs):
        row: Dict[str, Optional[float]] = {}
        for mechanism in EVOLUTION_MECHANISMS:
            points = series[mechanism]
            row[mechanism] = points[index][1] if index < len(points) else None
        table.add_row(float(index + 1), row)
    return table


# ---------------------------------------------------------------------------
# Robustness — incentive mechanisms under adversarial populations (§V)
# ---------------------------------------------------------------------------

#: Column order of the ``robustness`` figure: most structurally robust
#: mechanism first (the paper's thesis — exchanges pay only for
#: simultaneous reciprocity, so laundered standing buys nothing).
ROBUSTNESS_MECHANISMS = ("exchange", "participation", "credit")


def honest_mean_download_time(summary: SimulationSummary) -> Optional[float]:
    """Mean download time (min) of the honest sharer+freeloader crowd.

    Computed from the per-class breakdown (completion-weighted), NOT
    from the summary's adversary split: the ``none`` baseline cells
    carry no adversary metrics, and the degradation ratio needs the
    *same* population slice in the numerator and the denominator.
    """
    total = 0.0
    completed = 0
    for label in ("sharer", "freeloader"):
        count = summary.completed_downloads_by_class.get(label, 0)
        mean = summary.mean_download_time_min_by_class.get(label)
        if count and mean is not None:
            total += mean * count
            completed += count
    return total / completed if completed else None


def _robustness_grid(scale: str, seed: int) -> CellGrid:
    return {
        f"{attack}/{mechanism}": adversarial_config(scale, mechanism, attack, seed)
        for attack in ADVERSARIAL_ATTACKS
        for mechanism in ROBUSTNESS_MECHANISMS
    }


def _robustness_assemble(
    scale: str, seed: int, summaries: CellSummaries
) -> SeriesTable:
    """One row per attack: honest download time and degradation ratio.

    ``degradation`` is the honest crowd's mean download time under the
    attack divided by the same quantity in that mechanism's ``none``
    baseline cell — 1.0 means the attack cost honest peers nothing.
    The seed-pinned ordering test asserts the paper's §V ranking on the
    whitewash row: exchange ≤ participation ≤ credit.
    """
    columns: List[str] = []
    for mechanism in ROBUSTNESS_MECHANISMS:
        columns.append(f"{mechanism}/honest_time")
        columns.append(f"{mechanism}/degradation")
    table = SeriesTable(
        "Robustness: honest-peer mean download time (min) and degradation "
        "vs the no-attack baseline, per incentive mechanism "
        "(rows: 0=none, 1=whitewash, 2=sybil, 3=collusion)",
        "attack_index",
        columns,
    )
    baselines = {
        mechanism: honest_mean_download_time(summaries[f"none/{mechanism}"])
        for mechanism in ROBUSTNESS_MECHANISMS
    }
    for index, attack in enumerate(ADVERSARIAL_ATTACKS):
        row: Dict[str, Optional[float]] = {}
        for mechanism in ROBUSTNESS_MECHANISMS:
            honest = honest_mean_download_time(summaries[f"{attack}/{mechanism}"])
            baseline = baselines[mechanism]
            row[f"{mechanism}/honest_time"] = honest
            row[f"{mechanism}/degradation"] = (
                honest / baseline
                if honest is not None and baseline
                else None
            )
        table.add_row(float(index), row)
    return table


#: Registry used by the orchestrator, the CLI runner and the benchmarks.
FIGURES: Dict[str, FigureSpec] = {
    spec.figure_id: spec
    for spec in (
        FigureSpec("fig4", "mean download time vs upload capacity",
                   _fig4_grid, _fig4_assemble),
        FigureSpec("fig5", "fraction of exchange sessions vs upload capacity",
                   _fig5_grid, _fig5_assemble),
        FigureSpec("fig6", "download time vs max ring size N",
                   _fig6_grid, _fig6_assemble),
        FigureSpec("fig7", "CDF of per-session volume by traffic class",
                   _base_cell_grid, _fig7_assemble),
        FigureSpec("fig8", "CDF of session waiting time by traffic class",
                   _base_cell_grid, _fig8_assemble),
        FigureSpec("fig9", "mean download time vs popularity factor",
                   _factor_grid, _fig9_assemble),
        FigureSpec("fig10", "transfer volume vs popularity factor",
                   _factor_grid, _fig10_assemble),
        FigureSpec("fig11", "download-time ratio vs max pending requests",
                   _fig11_grid, _fig11_assemble),
        FigureSpec("fig12", "mean download time vs freeloader fraction",
                   _fig12_grid, _fig12_assemble),
        FigureSpec("adoption", "per-class download time vs exchange adoption",
                   _adoption_grid, _adoption_assemble),
        FigureSpec("tiers", "per-class download time across capacity tiers",
                   _tiers_grid, _tiers_assemble),
        FigureSpec("flashcrowd", "per-phase download time under a flash crowd",
                   _flashcrowd_grid, _flashcrowd_assemble),
        FigureSpec("swarm-growth", "per-phase download time as the swarm grows",
                   _swarm_growth_grid, _swarm_growth_assemble),
        FigureSpec("evolution", "sharing-fraction dynamics per incentive mechanism",
                   _evolution_grid, _evolution_assemble),
        FigureSpec("robustness", "honest-peer degradation per mechanism x attack",
                   _robustness_grid, _robustness_assemble),
    )
}


def run_figure(figure_id: str, scale: str = "smoke", seed: int = 42) -> SeriesTable:
    """Run one figure's sweep by id (``fig4`` .. ``fig12``), serially.

    Thin wrapper over the orchestrator with ``jobs=1`` and no cache —
    the reference path the parallel runs are checked against.  Unknown
    ids raise :class:`~repro.errors.ConfigError` from the orchestrator.
    """
    # Imported here: the orchestrator imports this module for the specs.
    from repro.experiments.orchestrator import run_figure as _run

    return _run(figure_id, scale=scale, seed=seed)


def _figure_entry(figure_id: str) -> Callable[[str, int], SeriesTable]:
    def entry(scale: str = "smoke", seed: int = 42) -> SeriesTable:
        return run_figure(figure_id, scale=scale, seed=seed)

    entry.__name__ = f"run_{figure_id}"
    entry.__doc__ = f"Serial entry point for {figure_id} ({FIGURES[figure_id].description})."
    return entry


# Named entry points kept for the benchmarks and external callers.
fig4_download_time_vs_capacity = _figure_entry("fig4")
fig5_exchange_fraction_vs_capacity = _figure_entry("fig5")
fig6_ring_size_sweep = _figure_entry("fig6")
fig7_session_volume_cdf = _figure_entry("fig7")
fig8_waiting_time_cdf = _figure_entry("fig8")
fig9_download_time_vs_popularity = _figure_entry("fig9")
fig10_volume_vs_popularity = _figure_entry("fig10")
fig11_pending_and_categories = _figure_entry("fig11")
fig12_freeloader_fraction = _figure_entry("fig12")
robustness_mechanism_vs_attack = _figure_entry("robustness")
