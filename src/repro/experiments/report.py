"""ASCII series tables shaped like the paper's plots.

A :class:`SeriesTable` is one figure's worth of data: an x column plus
one column per series (e.g. ``pairwise/sharing``), rendered as an
aligned text table — the same rows a gnuplot datafile for the paper's
figures would contain.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.errors import MetricsError

Row = Tuple[float, Dict[str, Optional[float]]]


class SeriesTable:
    """x → {series name → value} with aligned text rendering."""

    def __init__(self, title: str, x_label: str, columns: Sequence[str]) -> None:
        self.title = title
        self.x_label = x_label
        self.columns = list(columns)
        self.rows: List[Row] = []

    def add_row(self, x: float, values: Dict[str, Optional[float]]) -> None:
        unknown = set(values) - set(self.columns)
        if unknown:
            raise MetricsError(f"unknown series {sorted(unknown)} in {self.title}")
        self.rows.append((x, dict(values)))

    def series(self, column: str) -> List[Tuple[float, Optional[float]]]:
        """(x, y) pairs for one series, in row order."""
        if column not in self.columns:
            raise MetricsError(f"no series {column!r} in {self.title}")
        return [(x, values.get(column)) for x, values in self.rows]

    def column_values(self, column: str) -> List[float]:
        """Non-missing y values for one series."""
        return [y for _x, y in self.series(column) if y is not None]

    # ------------------------------------------------------------------
    def render(self, precision: int = 2) -> str:
        """Aligned table, one row per x, one column per series."""
        headers = [self.x_label] + self.columns
        body: List[List[str]] = []
        for x, values in self.rows:
            cells = [f"{x:g}"]
            for column in self.columns:
                value = values.get(column)
                cells.append("-" if value is None else f"{value:.{precision}f}")
            body.append(cells)
        widths = [
            max(len(headers[i]), *(len(row[i]) for row in body)) if body else len(headers[i])
            for i in range(len(headers))
        ]
        lines = [self.title]
        lines.append("  ".join(h.rjust(w) for h, w in zip(headers, widths)))
        lines.append("  ".join("-" * w for w in widths))
        for row in body:
            lines.append("  ".join(cell.rjust(w) for cell, w in zip(row, widths)))
        return "\n".join(lines)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"SeriesTable({self.title!r}, rows={len(self.rows)})"
