"""ASCII series tables shaped like the paper's plots.

A :class:`SeriesTable` is one figure's worth of data: an x column plus
one column per series (e.g. ``pairwise/sharing``), rendered as an
aligned text table — the same rows a gnuplot datafile for the paper's
figures would contain.

Multi-seed replication (``--reps``) layers on top: each cell may carry a
standard error next to its mean, rendered as ``12.34±0.56``, and
:func:`aggregate_tables` folds N single-seed tables into one
mean ± stderr table.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Sequence, Tuple

from repro.errors import MetricsError

Row = Tuple[float, Dict[str, Optional[float]]]


class SeriesTable:
    """x → {series name → value} with aligned text rendering."""

    def __init__(self, title: str, x_label: str, columns: Sequence[str]) -> None:
        self.title = title
        self.x_label = x_label
        self.columns = list(columns)
        self.rows: List[Row] = []
        #: Per-row {series → standard error}, aligned with ``rows``.
        #: Empty dicts for rows without replication statistics.
        self.row_errors: List[Dict[str, float]] = []

    def add_row(
        self,
        x: float,
        values: Dict[str, Optional[float]],
        errors: Optional[Dict[str, float]] = None,
    ) -> None:
        """Append one x row; unknown series names raise, missing ones render as '-'."""
        unknown = set(values) - set(self.columns)
        if unknown:
            raise MetricsError(f"unknown series {sorted(unknown)} in {self.title}")
        if errors:
            unknown = set(errors) - set(self.columns)
            if unknown:
                raise MetricsError(
                    f"unknown error series {sorted(unknown)} in {self.title}"
                )
        self.rows.append((x, dict(values)))
        self.row_errors.append(dict(errors) if errors else {})

    def series(self, column: str) -> List[Tuple[float, Optional[float]]]:
        """(x, y) pairs for one series, in row order."""
        if column not in self.columns:
            raise MetricsError(f"no series {column!r} in {self.title}")
        return [(x, values.get(column)) for x, values in self.rows]

    def series_errors(self, column: str) -> List[Tuple[float, Optional[float]]]:
        """(x, stderr) pairs for one series, in row order."""
        if column not in self.columns:
            raise MetricsError(f"no series {column!r} in {self.title}")
        return [
            (x, errors.get(column))
            for (x, _values), errors in zip(self.rows, self.row_errors)
        ]

    def column_values(self, column: str) -> List[float]:
        """Non-missing y values for one series."""
        return [y for _x, y in self.series(column) if y is not None]

    @property
    def has_errors(self) -> bool:
        """Whether any cell carries a standard error."""
        return any(self.row_errors)

    # ------------------------------------------------------------------
    def render(self, precision: int = 2) -> str:
        """Aligned table, one row per x, one column per series.

        Cells with replication statistics render as ``mean±stderr``.
        """
        headers = [self.x_label] + self.columns
        body: List[List[str]] = []
        for (x, values), errors in zip(self.rows, self.row_errors):
            cells = [f"{x:g}"]
            for column in self.columns:
                value = values.get(column)
                if value is None:
                    cells.append("-")
                    continue
                cell = f"{value:.{precision}f}"
                error = errors.get(column)
                if error is not None:
                    cell += f"±{error:.{precision}f}"
                cells.append(cell)
            body.append(cells)
        widths = [
            max(len(headers[i]), *(len(row[i]) for row in body)) if body else len(headers[i])
            for i in range(len(headers))
        ]
        lines = [self.title]
        lines.append("  ".join(h.rjust(w) for h, w in zip(headers, widths)))
        lines.append("  ".join("-" * w for w in widths))
        for row in body:
            lines.append("  ".join(cell.rjust(w) for cell, w in zip(row, widths)))
        return "\n".join(lines)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"SeriesTable({self.title!r}, rows={len(self.rows)})"


def _mean_and_stderr(samples: List[float]) -> Tuple[float, Optional[float]]:
    """Sample mean and standard error (``None`` for a single sample)."""
    n = len(samples)
    mean = sum(samples) / n
    if n < 2:
        return mean, None
    variance = sum((s - mean) ** 2 for s in samples) / (n - 1)
    return mean, math.sqrt(variance / n)


def aggregate_tables(tables: Sequence[SeriesTable]) -> SeriesTable:
    """Fold N same-shaped tables (one per seed) into mean ± stderr.

    All tables must share title, x label, columns and row count — they
    are replications of one sweep under different seeds.  Rows are
    matched positionally and the x value is averaged too, because
    data-driven grids (the Fig. 7/8 CDF supports) shift slightly from
    seed to seed.  A cell's statistics cover only the replications in
    which it was present; a cell missing everywhere stays ``None``.
    """
    if not tables:
        raise MetricsError("aggregate_tables needs at least one table")
    first = tables[0]
    for table in tables[1:]:
        if (
            table.title != first.title
            or table.x_label != first.x_label
            or table.columns != first.columns
        ):
            raise MetricsError(
                f"cannot aggregate differently-shaped tables: {table!r} vs {first!r}"
            )
        if len(table.rows) != len(first.rows):
            raise MetricsError(
                f"row-count mismatch aggregating {first.title!r}: "
                f"{len(table.rows)} vs {len(first.rows)}"
            )
    if len(tables) == 1:
        return first

    out = SeriesTable(first.title, first.x_label, first.columns)
    for index in range(len(first.rows)):
        xs = [table.rows[index][0] for table in tables]
        values: Dict[str, Optional[float]] = {}
        errors: Dict[str, float] = {}
        for column in first.columns:
            samples = [
                table.rows[index][1].get(column)
                for table in tables
            ]
            present = [s for s in samples if s is not None]
            if not present:
                values[column] = None
                continue
            mean, stderr = _mean_and_stderr(present)
            values[column] = mean
            if stderr is not None:
                errors[column] = stderr
        out.add_row(sum(xs) / len(xs), values, errors=errors or None)
    return out
