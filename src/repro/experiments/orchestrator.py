"""Parallel experiment orchestration.

The paper's evaluation is a grid of *independent* simulations —
mechanism × sweep point × seed.  Each :class:`~repro.experiments.figures.FigureSpec`
declares its grid as ``cell key → SimulationConfig``; this module
schedules those cells:

* **fan-out** — cells run across a ``multiprocessing`` pool
  (``jobs > 1``) or in-process (``jobs = 1``); simulations are
  deterministic functions of their config, so execution order cannot
  change results and parallel tables are bit-identical to serial ones;
* **dedup** — cells are keyed by a SHA-256 fingerprint of the full
  config, so cells shared between figures (Fig. 4 ⊃ Fig. 5's grid,
  Fig. 9 = Fig. 10's grid) run once per batch;
* **caching** — a :class:`ResultCache` persists each finished cell as
  one JSON file keyed by the same fingerprint, so re-runs and
  partially-failed sweeps resume instantly;
* **replication** — ``reps = N`` runs every cell under seeds
  ``seed .. seed+N-1`` and aggregates the per-seed tables into
  mean ± stderr via :func:`~repro.experiments.report.aggregate_tables`.

Typical use::

    from repro.experiments.orchestrator import ResultCache, run_figure

    table = run_figure("fig4", scale="small", jobs=4, reps=3,
                       cache=ResultCache(".repro-cache"))
    print(table.render())
"""

from __future__ import annotations

import hashlib
import json
import multiprocessing
import os
import tempfile
import time
from typing import Callable, Dict, List, Optional, Sequence, Tuple, Union

import repro
from repro.config import SimulationConfig
from repro.errors import ConfigError
from repro.experiments.figures import FIGURES, CellGrid
from repro.experiments.report import SeriesTable, aggregate_tables
from repro.metrics.summary import SimulationSummary
from repro.simulation import run_summary

#: Called after each finished cell with (completed, total).
ProgressFn = Callable[[int, int], None]

#: Result-cache schema stamp, bumped whenever the simulation's outcome
#: for an unchanged config fingerprint can change (the population
#: refactor did: fingerprints now cover ``population`` and summaries
#: carry per-class breakdowns; the scenario refactor did again:
#: fingerprints now cover ``scenario``/``max_miss_attempts`` and
#: summaries carry per-phase breakdowns; the strategy layer did again:
#: fingerprints now cover ``strategy`` / per-class strategy specs and
#: summaries carry sharing-fraction trajectories; the flat-cost event
#: loop did again: fingerprints now cover ``metrics_retention`` /
#: ``perf_counters``).  Entries stamped with any other value are
#: treated as misses, so stale pre-refactor results are never replayed.
CACHE_SCHEMA_VERSION = 7


def config_fingerprint(config: SimulationConfig) -> str:
    """Stable SHA-256 over the config's canonical JSON form.

    The seed is a config field, so the fingerprint keys exactly one
    deterministic simulation outcome — the invariant the result cache
    and the cross-figure dedup both rely on.
    """
    canonical = json.dumps(config.to_dict(), sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


class ResultCache:
    """One-JSON-file-per-cell result store under a root directory.

    Files are named ``<fingerprint>.json`` and written atomically
    (temp file + rename), so a run killed mid-write never poisons the
    cache; unreadable or malformed entries are treated as misses.
    Entries record the package version they were computed with and are
    invalidated when it changes — the fingerprint hashes only the
    config, so without the version check a cache populated by older
    simulation code would silently answer for newer code.
    """

    #: Ignore ``.tmp`` orphans younger than this during the init sweep:
    #: they may be another live run's in-flight atomic write.
    ORPHAN_MIN_AGE_SECONDS = 3600.0

    def __init__(self, root: str) -> None:
        self.root = root
        self.hits = 0
        self.misses = 0
        self._sweep_orphans()

    def _sweep_orphans(self) -> None:
        """Drop stale temp files left by a previous hard-killed writer."""
        try:
            names = os.listdir(self.root)
        except OSError:
            return
        cutoff = time.time() - self.ORPHAN_MIN_AGE_SECONDS  # simlint: disable=DET003 -- sanctioned: cache-orphan aging compares file mtimes, not sim state
        for name in names:
            if not name.endswith(".tmp"):
                continue
            path = os.path.join(self.root, name)
            try:
                if os.path.getmtime(path) < cutoff:
                    os.unlink(path)
            except OSError:
                pass

    def _path(self, fingerprint: str) -> str:
        return os.path.join(self.root, f"{fingerprint}.json")

    def load(
        self,
        config: SimulationConfig,
        fingerprint: Optional[str] = None,
    ) -> Optional[SimulationSummary]:
        """The cached summary for ``config``, or ``None`` on a miss."""
        path = self._path(fingerprint or config_fingerprint(config))
        try:
            with open(path, "r", encoding="utf-8") as handle:
                payload = json.load(handle)
            if payload.get("version") != repro.__version__:
                raise ValueError("cache entry from a different code version")
            if payload.get("cache_version") != CACHE_SCHEMA_VERSION:
                raise ValueError("cache entry from a different cache schema")
            summary = SimulationSummary.from_dict(payload["summary"])
        except (OSError, ValueError, KeyError, TypeError, AttributeError):
            self.misses += 1
            return None
        self.hits += 1
        return summary

    def store(
        self,
        config: SimulationConfig,
        summary: SimulationSummary,
        fingerprint: Optional[str] = None,
    ) -> None:
        """Persist one finished cell (config dump kept for inspection)."""
        os.makedirs(self.root, exist_ok=True)
        fingerprint = fingerprint or config_fingerprint(config)
        payload = {
            "fingerprint": fingerprint,
            "version": repro.__version__,
            "cache_version": CACHE_SCHEMA_VERSION,
            "config": config.to_dict(),
            "summary": summary.to_dict(),
        }
        fd, tmp_path = tempfile.mkstemp(dir=self.root, suffix=".tmp")
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as handle:
                json.dump(payload, handle)
            os.replace(tmp_path, self._path(fingerprint))
        except BaseException:
            try:
                os.unlink(tmp_path)
            except OSError:
                pass
            raise

    def __len__(self) -> int:
        try:
            return sum(1 for n in os.listdir(self.root) if n.endswith(".json"))
        except OSError:
            return 0


class MemoryCache:
    """In-process cell store with the :class:`ResultCache` interface.

    Holds results for the lifetime of one invocation and writes nothing
    to disk.  The CLI uses it under ``--no-cache`` so cells shared
    between figures (or replications) still run once per invocation.
    """

    def __init__(self) -> None:
        self._store: Dict[str, SimulationSummary] = {}
        self.hits = 0
        self.misses = 0

    def load(
        self,
        config: SimulationConfig,
        fingerprint: Optional[str] = None,
    ) -> Optional[SimulationSummary]:
        """The stored summary for ``config``, or None on a miss."""
        summary = self._store.get(fingerprint or config_fingerprint(config))
        if summary is None:
            self.misses += 1
            return None
        self.hits += 1
        return summary

    def store(
        self,
        config: SimulationConfig,
        summary: SimulationSummary,
        fingerprint: Optional[str] = None,
    ) -> None:
        """Keep one finished cell for the rest of this invocation."""
        self._store[fingerprint or config_fingerprint(config)] = summary

    def __len__(self) -> int:
        return len(self._store)


#: Anything with the ResultCache load/store interface.
CellCache = Union[ResultCache, MemoryCache]


def _run_cell(
    payload: Tuple[str, SimulationConfig]
) -> Tuple[str, Dict[str, object]]:
    """Worker entry point: run one cell, return (fingerprint, summary dict).

    Must stay a module-level function — ``multiprocessing`` pickles it
    by reference under every start method.
    """
    fingerprint, config = payload
    return fingerprint, run_summary(config).to_dict()


def _pool_context() -> multiprocessing.context.BaseContext:
    """Prefer fork (no re-import cost); fall back to the default."""
    if "fork" in multiprocessing.get_all_start_methods():
        return multiprocessing.get_context("fork")
    return multiprocessing.get_context()


def run_grid(
    grid: CellGrid,
    jobs: int = 1,
    cache: Optional[CellCache] = None,
    progress: Optional[ProgressFn] = None,
) -> Dict[str, SimulationSummary]:
    """Run every cell of ``grid`` and return ``cell key → summary``.

    Identical configs (same fingerprint) are simulated once no matter
    how many keys map to them.  With a cache, finished cells are loaded
    instead of re-run and fresh results are stored as they complete —
    an interrupted sweep loses only its in-flight cells.
    """
    if jobs < 1:
        raise ConfigError(f"jobs must be >= 1, got {jobs}")
    key_to_fp = {key: config_fingerprint(config) for key, config in grid.items()}
    unique: Dict[str, SimulationConfig] = {}
    for key, config in grid.items():
        unique.setdefault(key_to_fp[key], config)

    summaries: Dict[str, SimulationSummary] = {}
    if cache is not None:
        for fingerprint, config in unique.items():
            cached = cache.load(config, fingerprint=fingerprint)
            if cached is not None:
                summaries[fingerprint] = cached

    pending = [
        (fingerprint, config)
        for fingerprint, config in unique.items()
        if fingerprint not in summaries
    ]
    total = len(unique)
    completed = total - len(pending)
    if progress is not None and completed:
        progress(completed, total)

    def record(fingerprint: str, summary: SimulationSummary) -> None:
        nonlocal completed
        summaries[fingerprint] = summary
        if cache is not None:
            cache.store(unique[fingerprint], summary, fingerprint=fingerprint)
        completed += 1
        if progress is not None:
            progress(completed, total)

    if jobs == 1 or len(pending) <= 1:
        for fingerprint, config in pending:
            record(fingerprint, run_summary(config))
    else:
        context = _pool_context()
        with context.Pool(processes=min(jobs, len(pending))) as pool:
            for fingerprint, summary_dict in pool.imap_unordered(
                _run_cell, pending
            ):
                record(fingerprint, SimulationSummary.from_dict(summary_dict))

    return {key: summaries[fingerprint] for key, fingerprint in key_to_fp.items()}


def _rep_seeds(seed: int, reps: int) -> List[int]:
    if reps < 1:
        raise ConfigError(f"reps must be >= 1, got {reps}")
    return [seed + rep for rep in range(reps)]


def run_figure(
    figure_id: str,
    scale: str = "smoke",
    seed: int = 42,
    reps: int = 1,
    jobs: int = 1,
    cache: Optional[CellCache] = None,
    progress: Optional[ProgressFn] = None,
) -> SeriesTable:
    """Run one figure: fan out its cells, assemble, aggregate over reps."""
    return run_figures(
        [figure_id],
        scale=scale,
        seed=seed,
        reps=reps,
        jobs=jobs,
        cache=cache,
        progress=progress,
    )[figure_id]


def run_figures(
    figure_ids: Sequence[str],
    scale: str = "smoke",
    seed: int = 42,
    reps: int = 1,
    jobs: int = 1,
    cache: Optional[CellCache] = None,
    progress: Optional[ProgressFn] = None,
) -> Dict[str, SeriesTable]:
    """Run several figures as one batch of cells.

    Batching all figures' grids into a single fan-out keeps the pool
    saturated across figure boundaries and lets cells shared between
    figures (or between replications) run exactly once.
    """
    unknown = [figure_id for figure_id in figure_ids if figure_id not in FIGURES]
    if unknown:
        raise ConfigError(
            f"unknown figure(s) {sorted(unknown)}; expected one of {sorted(FIGURES)}"
        )
    seeds = _rep_seeds(seed, reps)

    # Flatten figure × seed × cell into one namespaced grid.
    batch: CellGrid = {}
    grids: Dict[Tuple[str, int], CellGrid] = {}
    for figure_id in figure_ids:
        spec = FIGURES[figure_id]
        for rep_seed in seeds:
            grid = spec.build_grid(scale, rep_seed)
            grids[(figure_id, rep_seed)] = grid
            for key, config in grid.items():
                batch[f"{figure_id}/s{rep_seed}/{key}"] = config

    summaries = run_grid(batch, jobs=jobs, cache=cache, progress=progress)

    tables: Dict[str, SeriesTable] = {}
    for figure_id in figure_ids:
        spec = FIGURES[figure_id]
        per_seed: List[SeriesTable] = []
        for rep_seed in seeds:
            cell_summaries = {
                key: summaries[f"{figure_id}/s{rep_seed}/{key}"]
                for key in grids[(figure_id, rep_seed)]
            }
            per_seed.append(spec.assemble(scale, rep_seed, cell_summaries))
        tables[figure_id] = aggregate_tables(per_seed)
    return tables
