"""Scale presets for the experiment harness.

The paper's absolute configuration (Table II) needs runs several times
longer than the ~400-minute mean download time to measure download times
without censoring bias — minutes of wall clock per point, hours for a
full sweep.  Six presets trade fidelity for speed (or scale):

* ``paper`` — Table II verbatim with a long measurement window.  Use
  for the record; hours per figure.
* ``small`` — half population, 8 MB objects, same load structure
  (demand ≈ 3x supply at the base upload capacity).  Tens of seconds
  per point; this is what EXPERIMENTS.md reports.
* ``smoke`` — 40 peers, 4 MB objects; seconds per point.  This is what
  ``pytest benchmarks/`` runs so CI stays fast.
* ``scale`` — 1000 peers, the large-network stress preset.  Five times
  the paper's population with content densities scaled to match, a
  shorter measurement window, and churn-friendly defaults; used by
  ``benchmarks/bench_scale.py`` to track how far one simulation is
  from the ROADMAP's million-user target.
* ``huge`` — 50,000 peers, the columnar-core stress preset: clip-sized
  objects over narrow links, a short measurement window, and relaxed
  periodic cadences keep a run CI-sized; used by
  ``benchmarks/bench_huge.py``.
* ``adversarial`` — smoke's geometry in the loaded (40 kbit/s uplink)
  regime, the home scale of the ``robustness`` mechanism × attack grid
  (see :func:`adversarial_config`); used by
  ``benchmarks/bench_adversarial.py``.

All presets keep the paper's *structure*: 10 kbit/s slots, 6 pending
requests, 50% free-riders, power-law popularity with f = 0.2, initial
placement by interest, periodic random eviction.  Densities (category
count, objects per category) are scaled with the population so that the
double-coincidence rate — the quantity that drives exchange formation —
stays in the regime the paper's Figs. 4-5 exhibit; see DESIGN.md.
"""

from __future__ import annotations

from typing import Dict, Tuple

from repro.config import SimulationConfig
from repro.errors import ConfigError
from repro.population import PeerClassSpec
from repro.scenario import (
    FlashCrowd,
    IdentityWhitewash,
    PeerArrival,
    PeerDeparture,
    Phase,
    ScenarioSpec,
    SybilSpawn,
)
from repro.strategy import StrategySpec

#: Per-scale overrides applied on top of Table II defaults.
SCALES: Dict[str, dict] = {
    "paper": dict(
        duration=240_000.0,
        warmup=48_000.0,
        block_size_kbit=4096.0,
    ),
    "small": dict(
        num_peers=100,
        num_categories=100,
        objects_per_category_min=1,
        objects_per_category_max=100,
        object_size_mb=8.0,
        block_size_kbit=2048.0,
        storage_min_objects=5,
        storage_max_objects=40,
        duration=60_000.0,
        warmup=15_000.0,
    ),
    "smoke": dict(
        num_peers=40,
        num_categories=40,
        objects_per_category_min=1,
        objects_per_category_max=60,
        object_size_mb=4.0,
        block_size_kbit=1024.0,
        storage_min_objects=4,
        storage_max_objects=16,
        duration=24_000.0,
        warmup=6_000.0,
    ),
    "scale": dict(
        num_peers=1000,
        num_categories=600,
        objects_per_category_min=1,
        objects_per_category_max=150,
        object_size_mb=8.0,
        block_size_kbit=2048.0,
        storage_min_objects=5,
        storage_max_objects=40,
        duration=12_000.0,
        warmup=3_000.0,
    ),
    # 50x the scale preset's population — the 10^4..10^5-peer regime the
    # ROADMAP's fluid tier must be cross-validated against.  Every knob
    # trades per-peer activity for population so one cell stays CI-sized
    # (~2M events): small clip-sized objects that can actually complete
    # inside the short window (0.5 MB at 10 kbit/s/slot ≈ 410 sim-s),
    # narrow links (5 download / 4 upload slots, so the replenish loop
    # floods 250k — not 4M — concurrent requests), trimmed fanout and
    # tree bounds (IRQ peer-index insertion is the measured 50k-peer
    # hotspot and scales with fanout x tree size), and relaxed periodic
    # cadences so scan/refresh no-ops do not dominate the event budget.
    "huge": dict(
        num_peers=50_000,
        num_categories=500,
        objects_per_category_min=1,
        objects_per_category_max=100,
        object_size_mb=0.5,
        block_size_kbit=1024.0,
        download_capacity_kbit=50.0,
        upload_capacity_kbit=40.0,
        request_fanout=3,
        max_tree_nodes=64,
        storage_min_objects=4,
        storage_max_objects=16,
        duration=240.0,
        warmup=80.0,
        scan_interval=120.0,
        tree_refresh_interval=240.0,
        storage_check_interval=1_000.0,
    ),
    # The robustness harness's home scale: smoke's geometry in the
    # loaded regime (40 kbit/s uplinks — differential service, and
    # therefore an attack on it, only matters under contention).
    "adversarial": dict(
        num_peers=40,
        num_categories=40,
        objects_per_category_min=1,
        objects_per_category_max=60,
        object_size_mb=4.0,
        block_size_kbit=1024.0,
        storage_min_objects=4,
        storage_max_objects=16,
        duration=24_000.0,
        warmup=6_000.0,
        upload_capacity_kbit=40.0,
    ),
}


#: Per-scale sweep grids for the figure experiments.  The ``paper`` rows
#: are the x axes of Figs. 4-12 verbatim; ``small``/``smoke`` subsample
#: them so a sweep finishes in seconds while keeping the curve's shape.
SWEEP_GRIDS: Dict[str, Dict[str, tuple]] = {
    # Figs. 4/5: upload capacity in kbit/s (the paper sweeps 40..140).
    "capacity": {
        "paper": (140.0, 120.0, 100.0, 80.0, 60.0, 40.0),
        "small": (120.0, 80.0, 40.0),
        "smoke": (120.0, 80.0, 40.0),
        "adversarial": (120.0, 80.0, 40.0),
        "scale": (120.0, 80.0, 40.0),
        "huge": (120.0, 80.0, 40.0),
    },
    # Fig. 6: maximum exchange ring size N.
    "ring_size": {
        "paper": (1, 2, 3, 4, 5, 6, 7),
        "small": (1, 2, 3, 5, 7),
        "smoke": (2, 3, 5),
        "adversarial": (2, 3, 5),
        "scale": (2, 3, 5),
        "huge": (2, 3, 5),
    },
    # Figs. 9/10: popularity factor f.
    "factor": {
        "paper": (0.0, 0.2, 0.4, 0.6, 0.8, 1.0),
        "small": (0.0, 0.4, 0.8),
        "smoke": (0.0, 0.4, 0.8),
        "adversarial": (0.0, 0.4, 0.8),
        "scale": (0.0, 0.4, 0.8),
        "huge": (0.0, 0.4, 0.8),
    },
    # Fig. 11: maximum outstanding requests per peer.
    "pending": {
        "paper": (2, 3, 4, 5, 6, 7, 8, 9, 10),
        "small": (2, 4, 6, 10),
        "smoke": (2, 6, 10),
        "adversarial": (2, 6, 10),
        "scale": (2, 6, 10),
        "huge": (2, 6, 10),
    },
    # Fig. 12: fraction of non-sharing peers.
    "freeloader": {
        "paper": (0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9),
        "small": (0.1, 0.3, 0.5, 0.7, 0.9),
        "smoke": (0.2, 0.5, 0.8),
        "adversarial": (0.2, 0.5, 0.8),
        "scale": (0.2, 0.5, 0.8),
        "huge": (0.2, 0.5, 0.8),
    },
    # Adoption sweep: fraction of sharers running the exchange mechanism
    # (the network-effects question — how much adoption before the
    # incentive bites).
    "adoption": {
        "paper": (0.0, 0.125, 0.25, 0.375, 0.5, 0.625, 0.75, 0.875, 1.0),
        "small": (0.0, 0.25, 0.5, 0.75, 1.0),
        "smoke": (0.0, 0.5, 1.0),
        "adversarial": (0.0, 0.5, 1.0),
        "scale": (0.0, 0.5, 1.0),
        "huge": (0.0, 0.5, 1.0),
    },
}

#: Fig. 11's secondary dimension: categories of interest per peer.
CATEGORY_GRID = (2, 4, 8)

#: Three-tier access-link scenario: class name → (upload, download)
#: kbit/s.  The middle tier is the paper's Table II link; the others
#: halve/double it, keeping the 10 kbit/s slot geometry intact.
CAPACITY_TIERS: Dict[str, Tuple[float, float]] = {
    "broadband": (160.0, 1600.0),
    "dsl": (80.0, 800.0),
    "modem": (40.0, 400.0),
}


def adoption_population(
    adoption: float,
    freeloader_fraction: float = 0.5,
    mechanism: str = "2-5-way",
) -> Tuple[PeerClassSpec, ...]:
    """Sharers split into exchange adopters and non-adopting holdouts.

    ``adoption`` is the fraction *of sharers* running ``mechanism``;
    holdouts and freeloaders run no exchanges.  Freeloaders keep the
    configured ``freeloader_fraction`` of the whole population.
    """
    if not 0.0 <= adoption <= 1.0:
        raise ConfigError(f"adoption must be in [0,1], got {adoption}")
    sharer_fraction = 1.0 - freeloader_fraction
    return (
        PeerClassSpec(name="holdout", behavior="sharer", exchange_mechanism="none"),
        PeerClassSpec(
            name="adopter",
            behavior="sharer",
            exchange_mechanism=mechanism,
            fraction=sharer_fraction * adoption,
        ),
        PeerClassSpec(
            name="freeloader",
            behavior="freeloader",
            exchange_mechanism="none",
            fraction=freeloader_fraction,
        ),
    )


def tiered_population(
    mechanism: str = "2-5-way",
    freeloader_fraction: float = 0.5,
) -> Tuple[PeerClassSpec, ...]:
    """Sharers spread evenly over the three capacity tiers.

    Freeloaders keep the default (dsl-class) link so the tier effect is
    isolated to the serving side.
    """
    sharer_fraction = 1.0 - freeloader_fraction
    tiers = tuple(
        PeerClassSpec(
            name=name,
            behavior="sharer",
            exchange_mechanism=mechanism,
            fraction=sharer_fraction / len(CAPACITY_TIERS),
            upload_capacity_kbit=up,
            download_capacity_kbit=down,
        )
        for name, (up, down) in list(CAPACITY_TIERS.items())[1:]
    )
    first_name, (first_up, first_down) = next(iter(CAPACITY_TIERS.items()))
    return (
        # The first tier absorbs rounding remainders so counts always
        # sum to num_peers at any scale.
        PeerClassSpec(
            name=first_name,
            behavior="sharer",
            exchange_mechanism=mechanism,
            upload_capacity_kbit=first_up,
            download_capacity_kbit=first_down,
        ),
        *tiers,
        PeerClassSpec(
            name="freeloader",
            behavior="freeloader",
            exchange_mechanism="none",
            fraction=freeloader_fraction,
        ),
    )


def flash_crowd_scenario(config: SimulationConfig) -> ScenarioSpec:
    """The ``flashcrowd`` figure's timeline for one base config.

    Three phases over the measurement window: ``steady`` (the paper's
    closed system), ``flash`` (hot objects enter the catalog, seeded at
    a handful of sharers, and half the population turns to them — the
    demand shock), and ``decay`` (a tenth of the population departs for
    good, the post-crowd cooldown).  Cut points are fractions of the
    post-warmup window so the same shape works at every scale preset.
    """
    window = config.duration - config.warmup
    t_flash = config.warmup + 0.35 * window
    t_decay = config.warmup + 0.75 * window
    return (
        Phase(0.0, "steady"),
        Phase(t_flash, "flash"),
        FlashCrowd(
            t_flash,
            count=3,
            seed_providers=max(2, config.num_peers // 20),
            attract_fraction=0.5,
        ),
        Phase(t_decay, "decay"),
        PeerDeparture(t_decay, count=max(1, config.num_peers // 10)),
    )


def swarm_growth_scenario(config: SimulationConfig) -> ScenarioSpec:
    """The ``swarm-growth`` figure's timeline for one base config.

    The network starts at the configured size (phase ``seed``) and
    grows by ~50% over two arrival waves (phases ``wave1``/``wave2``),
    each keeping the build-time sharer/freeloader mix — the
    network-effects regime of Salek et al., where the question is
    whether the exchange incentive strengthens or dilutes as the swarm
    grows.  Arrivals address the legacy-derived classes by name, so
    this scenario applies to any config without an explicit population.
    """
    window = config.duration - config.warmup
    t_wave1 = config.warmup + window / 3.0
    t_wave2 = config.warmup + 2.0 * window / 3.0
    wave = max(2, config.num_peers // 4)
    freeloaders = int(round(wave * config.freeloader_fraction))
    sharers = wave - freeloaders
    events = [Phase(0.0, "seed")]
    for name, t in (("wave1", t_wave1), ("wave2", t_wave2)):
        events.append(Phase(t, name))
        if sharers:
            events.append(PeerArrival(t, count=sharers, class_name="sharer"))
        if freeloaders:
            events.append(
                PeerArrival(t, count=freeloaders, class_name="freeloader")
            )
    return tuple(events)


#: The ``evolution`` figure's incentive-mechanism cells: under which
#: rules do adaptive peers keep sharing?  ``participation`` runs with
#: honest reporting (``freeloaders_fake_participation=False``) — with
#: the trivial KaZaA claim-the-maximum cheat the scheme degenerates to
#: FIFO and the cell would just repeat ``none``.
EVOLUTION_CELLS: Dict[str, dict] = {
    "none": dict(exchange_mechanism="none", scheduler_mode="fifo"),
    "credit": dict(exchange_mechanism="none", scheduler_mode="credit"),
    "participation": dict(
        exchange_mechanism="none",
        scheduler_mode="participation",
        freeloaders_fake_participation=False,
    ),
    "exchange": dict(exchange_mechanism="2-5-way", scheduler_mode="fifo"),
}


def evolution_strategy(
    scale: str, rule: str = "best-response"
) -> Tuple[StrategySpec, float]:
    """The ``evolution`` figure's strategy spec and run duration.

    Returns ``(spec, duration)``: the run extends the scale's duration
    by 25% so the dynamics get ~14 revision epochs after the warmup,
    with the revision cadence and sliding window scaled to the
    measurement window (period = 1/14th of the revision era, window =
    3 periods).  Revisions start an eighth of the extended window past
    the warmup so the first epoch judges warm, loaded behaviour.
    """
    if scale not in SCALES:
        raise ConfigError(
            f"unknown scale {scale!r}; expected one of {sorted(SCALES)}"
        )
    base = SCALES[scale]
    duration = base.get("duration", 240_000.0) * 1.25
    warmup = base.get("warmup", 48_000.0)
    start = warmup + 0.125 * (duration - warmup)
    period = (duration - start) / 14.0
    return (
        StrategySpec(
            rule=rule,
            start=start,
            revision_period=period,
            window=3.0 * period,
            revision_probability=0.4,
            payoff_sensitivity=20.0,
            sharing_cost=8.0,
            standing_weight=0.5,
            exchange_weight=8.0,
        ),
        duration,
    )


def evolution_config(scale: str, mechanism: str, seed: int) -> SimulationConfig:
    """One ``evolution`` cell: strategy dynamics under one mechanism.

    All cells run in the loaded regime (40 kbit/s uplinks — incentives
    only bite under contention) from the Table II 50/50 initial
    condition, with every peer revising by best response.
    """
    if mechanism not in EVOLUTION_CELLS:
        raise ConfigError(
            f"unknown evolution mechanism {mechanism!r}; expected one of "
            f"{sorted(EVOLUTION_CELLS)}"
        )
    spec, duration = evolution_strategy(scale)
    return preset(
        scale,
        strategy=spec,
        duration=duration,
        upload_capacity_kbit=40.0,
        seed=seed,
        **EVOLUTION_CELLS[mechanism],
    )


#: The ``robustness`` figure's attack rows.  ``none`` is the honest
#: baseline every degradation ratio is measured against.
ADVERSARIAL_ATTACKS = ("none", "whitewash", "sybil", "collusion")

#: Fractions of the population given to the hostile (or, under
#: ``none``, merely free-riding) class and to the honest freeloaders.
ADVERSARY_FRACTION = 0.2
ADVERSARIAL_FREELOADER_FRACTION = 0.3

#: The ``robustness`` figure's mechanism columns.  ``participation``
#: runs with honest reporting for the *honest* freeloaders
#: (``freeloaders_fake_participation=False``) — the adversary classes
#: force their own cheat regardless, which is exactly the asymmetry the
#: robustness question is about.
ROBUSTNESS_CELLS: Dict[str, dict] = {
    "exchange": dict(exchange_mechanism="2-5-way", scheduler_mode="fifo"),
    "credit": dict(exchange_mechanism="none", scheduler_mode="credit"),
    "participation": dict(
        exchange_mechanism="none",
        scheduler_mode="participation",
        freeloaders_fake_participation=False,
    ),
}


def adversarial_population(attack: str) -> Tuple[PeerClassSpec, ...]:
    """Sharer remainder + honest freeloaders + one adversary class.

    The class structure is identical across attacks — the ``adversary``
    class exists even under ``attack="none"`` (as plain honest
    free-riders), so the honest baseline differs from the attack cells
    only in the attack itself, not in the population's shape.
    Colluders are sharers (they reciprocate internally); every other
    adversary free-rides.
    """
    if attack not in ADVERSARIAL_ATTACKS:
        raise ConfigError(
            f"unknown attack {attack!r}; expected one of {ADVERSARIAL_ATTACKS}"
        )
    behavior = "sharer" if attack == "collusion" else "freeloader"
    return (
        PeerClassSpec(name="sharer", behavior="sharer"),
        PeerClassSpec(
            name="freeloader",
            behavior="freeloader",
            fraction=ADVERSARIAL_FREELOADER_FRACTION,
        ),
        PeerClassSpec(
            name="adversary",
            behavior=behavior,
            fraction=ADVERSARY_FRACTION,
            adversary=None if attack == "none" else attack,
        ),
    )


def adversarial_scenario(attack: str, config: SimulationConfig) -> ScenarioSpec:
    """The attack's timeline for one base config.

    ``whitewash``: four laundering waves spread over the post-warmup
    window, each cycling about half of the adversary class through
    fresh identities — fast enough that the cooperative blacklist's
    bans keep dying with the old ids.  ``sybil``: two ring spawns (one
    early, one late) that grow the principal's identity farm.
    ``collusion``/``none``: empty — clique behaviour is class-intrinsic
    and the baseline is the closed system.
    """
    if attack not in ADVERSARIAL_ATTACKS:
        raise ConfigError(
            f"unknown attack {attack!r}; expected one of {ADVERSARIAL_ATTACKS}"
        )
    if attack in ("none", "collusion"):
        return ()
    window = config.duration - config.warmup
    adversaries = int(round(config.num_peers * ADVERSARY_FRACTION))
    if attack == "whitewash":
        cycle = max(1, adversaries // 2)
        return tuple(
            IdentityWhitewash(
                config.warmup + k * window / 5.0,
                count=cycle,
                class_name="adversary",
            )
            for k in (1, 2, 3, 4)
        )
    ring = max(2, adversaries // 2)
    return (
        SybilSpawn(config.warmup + window / 3.0, count=ring, class_name="adversary"),
        SybilSpawn(
            config.warmup + 2.0 * window / 3.0, count=ring, class_name="adversary"
        ),
    )


def adversarial_config(
    scale: str, mechanism: str, attack: str, seed: int
) -> SimulationConfig:
    """One ``robustness`` cell: one mechanism under one attack.

    All cells run in the loaded regime (40 kbit/s uplinks — a mechanism
    nobody queues for cannot be attacked) over the shared
    :func:`adversarial_population` shape.
    """
    if mechanism not in ROBUSTNESS_CELLS:
        raise ConfigError(
            f"unknown robustness mechanism {mechanism!r}; expected one of "
            f"{sorted(ROBUSTNESS_CELLS)}"
        )
    base = preset(
        scale,
        population=adversarial_population(attack),
        upload_capacity_kbit=40.0,
        seed=seed,
        **ROBUSTNESS_CELLS[mechanism],
    )
    return base.replace(scenario=adversarial_scenario(attack, base))


def preset(scale: str, **overrides) -> SimulationConfig:
    """A :class:`SimulationConfig` for the named scale, plus overrides."""
    if scale not in SCALES:
        raise ConfigError(
            f"unknown scale {scale!r}; expected one of {sorted(SCALES)}"
        )
    merged = dict(SCALES[scale])
    merged.update(overrides)
    return SimulationConfig(**merged)


def sweep(name: str, scale: str) -> tuple:
    """The x-axis grid for one named sweep at one scale."""
    if name not in SWEEP_GRIDS:
        raise ConfigError(
            f"unknown sweep {name!r}; expected one of {sorted(SWEEP_GRIDS)}"
        )
    grids = SWEEP_GRIDS[name]
    if scale not in grids:
        raise ConfigError(
            f"unknown scale {scale!r}; expected one of {sorted(grids)}"
        )
    return grids[scale]
