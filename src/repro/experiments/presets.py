"""Scale presets for the experiment harness.

The paper's absolute configuration (Table II) needs runs several times
longer than the ~400-minute mean download time to measure download times
without censoring bias — minutes of wall clock per point, hours for a
full sweep.  Three presets trade fidelity for speed:

* ``paper`` — Table II verbatim with a long measurement window.  Use
  for the record; hours per figure.
* ``small`` — half population, 8 MB objects, same load structure
  (demand ≈ 3x supply at the base upload capacity).  Tens of seconds
  per point; this is what EXPERIMENTS.md reports.
* ``smoke`` — 40 peers, 4 MB objects; seconds per point.  This is what
  ``pytest benchmarks/`` runs so CI stays fast.

All presets keep the paper's *structure*: 10 kbit/s slots, 6 pending
requests, 50% free-riders, power-law popularity with f = 0.2, initial
placement by interest, periodic random eviction.  Densities (category
count, objects per category) are scaled with the population so that the
double-coincidence rate — the quantity that drives exchange formation —
stays in the regime the paper's Figs. 4-5 exhibit; see DESIGN.md.
"""

from __future__ import annotations

from typing import Dict

from repro.config import SimulationConfig
from repro.errors import ConfigError

#: Per-scale overrides applied on top of Table II defaults.
SCALES: Dict[str, dict] = {
    "paper": dict(
        duration=240_000.0,
        warmup=48_000.0,
        block_size_kbit=4096.0,
    ),
    "small": dict(
        num_peers=100,
        num_categories=100,
        objects_per_category_min=1,
        objects_per_category_max=100,
        object_size_mb=8.0,
        block_size_kbit=2048.0,
        storage_min_objects=5,
        storage_max_objects=40,
        duration=60_000.0,
        warmup=15_000.0,
    ),
    "smoke": dict(
        num_peers=40,
        num_categories=40,
        objects_per_category_min=1,
        objects_per_category_max=60,
        object_size_mb=4.0,
        block_size_kbit=1024.0,
        storage_min_objects=4,
        storage_max_objects=16,
        duration=24_000.0,
        warmup=6_000.0,
    ),
}


#: Per-scale sweep grids for the figure experiments.  The ``paper`` rows
#: are the x axes of Figs. 4-12 verbatim; ``small``/``smoke`` subsample
#: them so a sweep finishes in seconds while keeping the curve's shape.
SWEEP_GRIDS: Dict[str, Dict[str, tuple]] = {
    # Figs. 4/5: upload capacity in kbit/s (the paper sweeps 40..140).
    "capacity": {
        "paper": (140.0, 120.0, 100.0, 80.0, 60.0, 40.0),
        "small": (120.0, 80.0, 40.0),
        "smoke": (120.0, 80.0, 40.0),
    },
    # Fig. 6: maximum exchange ring size N.
    "ring_size": {
        "paper": (1, 2, 3, 4, 5, 6, 7),
        "small": (1, 2, 3, 5, 7),
        "smoke": (2, 3, 5),
    },
    # Figs. 9/10: popularity factor f.
    "factor": {
        "paper": (0.0, 0.2, 0.4, 0.6, 0.8, 1.0),
        "small": (0.0, 0.4, 0.8),
        "smoke": (0.0, 0.4, 0.8),
    },
    # Fig. 11: maximum outstanding requests per peer.
    "pending": {
        "paper": (2, 3, 4, 5, 6, 7, 8, 9, 10),
        "small": (2, 4, 6, 10),
        "smoke": (2, 6, 10),
    },
    # Fig. 12: fraction of non-sharing peers.
    "freeloader": {
        "paper": (0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9),
        "small": (0.1, 0.3, 0.5, 0.7, 0.9),
        "smoke": (0.2, 0.5, 0.8),
    },
}

#: Fig. 11's secondary dimension: categories of interest per peer.
CATEGORY_GRID = (2, 4, 8)


def preset(scale: str, **overrides) -> SimulationConfig:
    """A :class:`SimulationConfig` for the named scale, plus overrides."""
    if scale not in SCALES:
        raise ConfigError(
            f"unknown scale {scale!r}; expected one of {sorted(SCALES)}"
        )
    merged = dict(SCALES[scale])
    merged.update(overrides)
    return SimulationConfig(**merged)


def sweep(name: str, scale: str) -> tuple:
    """The x-axis grid for one named sweep at one scale."""
    if name not in SWEEP_GRIDS:
        raise ConfigError(
            f"unknown sweep {name!r}; expected one of {sorted(SWEEP_GRIDS)}"
        )
    grids = SWEEP_GRIDS[name]
    if scale not in grids:
        raise ConfigError(
            f"unknown scale {scale!r}; expected one of {sorted(grids)}"
        )
    return grids[scale]
