"""Command-line experiment runner.

Usage::

    repro-experiments fig4 --scale small --seed 42
    repro-experiments all --scale smoke --jobs 4 --reps 3 --out results/

Prints each figure's series table (the same rows the paper plots) and
optionally writes them to files for EXPERIMENTS.md.  ``--jobs`` fans the
independent simulation cells out over a process pool, ``--reps`` runs
every cell under N consecutive seeds and reports mean ± stderr, and the
on-disk result cache (disable with ``--no-cache``) makes re-runs and
interrupted sweeps resume instantly.
"""

from __future__ import annotations

import argparse
import os
import sys
import time
from typing import List, Optional

from repro.experiments.figures import FIGURES
from repro.experiments.orchestrator import MemoryCache, ResultCache, run_figures
from repro.experiments.presets import SCALES

DEFAULT_CACHE_DIR = ".repro-cache"


def build_parser() -> argparse.ArgumentParser:
    """The ``repro-experiments`` argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro-experiments",
        description="Reproduce the paper's tables and figures.",
    )
    parser.add_argument(
        "figure",
        help=f"figure id ({', '.join(sorted(FIGURES))}) or 'all'",
    )
    parser.add_argument(
        "--scale",
        "--preset",
        dest="scale",
        default="smoke",
        choices=sorted(SCALES),
        help="experiment scale preset (default: smoke); --preset is an alias",
    )
    parser.add_argument("--seed", type=int, default=42, help="root RNG seed")
    parser.add_argument(
        "--jobs",
        type=int,
        default=1,
        help="worker processes for the simulation cells (default: 1, serial)",
    )
    parser.add_argument(
        "--reps",
        type=int,
        default=1,
        help="replications per cell under seeds seed..seed+N-1; tables "
        "report mean±stderr (default: 1)",
    )
    parser.add_argument(
        "--no-cache",
        action="store_true",
        help="do not read or write the on-disk result cache",
    )
    parser.add_argument(
        "--cache-dir",
        default=DEFAULT_CACHE_DIR,
        help=f"result cache directory (default: {DEFAULT_CACHE_DIR})",
    )
    parser.add_argument(
        "--out",
        default=None,
        help="directory to write <figure>_<scale>.txt result files into",
    )
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns a process exit code."""
    args = build_parser().parse_args(argv)
    figure_ids = sorted(FIGURES) if args.figure == "all" else [args.figure]
    unknown = [f for f in figure_ids if f not in FIGURES]
    if unknown:
        print(f"unknown figure(s): {', '.join(unknown)}", file=sys.stderr)
        return 2
    if args.jobs < 1:
        print(f"--jobs must be >= 1, got {args.jobs}", file=sys.stderr)
        return 2
    if args.reps < 1:
        print(f"--reps must be >= 1, got {args.reps}", file=sys.stderr)
        return 2
    if args.out:
        os.makedirs(args.out, exist_ok=True)
    # --no-cache still dedupes within this invocation (figures share
    # cells) — it just keeps everything in memory instead of on disk.
    cache = MemoryCache() if args.no_cache else ResultCache(args.cache_dir)

    def progress(completed: int, total: int) -> None:
        if sys.stderr.isatty():
            # Pad so a shorter update fully overwrites a longer one.
            line = f"  {completed}/{total} cells".ljust(24)
            end = "\n" if completed == total else "\r"
            print(line, end=end, file=sys.stderr)

    # One figure at a time so results stream out as they finish — an
    # interrupted `all` run keeps every completed figure's output.
    # Cells shared between figures still run once: with the cache on
    # (the default) later figures resume from the earlier ones' cells.
    for figure_id in figure_ids:
        started = time.perf_counter()  # simlint: disable=DET003 -- sanctioned: CLI progress timing, outside simulation state
        hits_before, misses_before = cache.hits, cache.misses
        table = run_figures(
            [figure_id],
            scale=args.scale,
            seed=args.seed,
            reps=args.reps,
            jobs=args.jobs,
            cache=cache,
            progress=progress,
        )[figure_id]
        elapsed = time.perf_counter() - started  # simlint: disable=DET003 -- sanctioned: CLI progress timing, outside simulation state
        rendered = table.render()
        print(rendered)
        print(
            f"[{figure_id} @ {args.scale}: {elapsed:.1f}s, "
            f"jobs={args.jobs}, reps={args.reps}, "
            f"cache {cache.hits - hits_before} hit / "
            f"{cache.misses - misses_before} miss]\n"
        )
        if args.out:
            path = os.path.join(args.out, f"{figure_id}_{args.scale}.txt")
            with open(path, "w", encoding="utf-8") as handle:
                handle.write(rendered + "\n")
    return 0


if __name__ == "__main__":  # pragma: no cover - CLI entry
    sys.exit(main())
