"""Command-line experiment runner.

Usage::

    repro-experiments fig4 --scale small --seed 42
    repro-experiments all --scale smoke --out results/

Prints each figure's series table (the same rows the paper plots) and
optionally writes them to files for EXPERIMENTS.md.
"""

from __future__ import annotations

import argparse
import os
import sys
import time
from typing import List, Optional

from repro.experiments.figures import FIGURES, run_figure
from repro.experiments.presets import SCALES


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-experiments",
        description="Reproduce the paper's tables and figures.",
    )
    parser.add_argument(
        "figure",
        help=f"figure id ({', '.join(sorted(FIGURES))}) or 'all'",
    )
    parser.add_argument(
        "--scale",
        default="smoke",
        choices=sorted(SCALES),
        help="experiment scale preset (default: smoke)",
    )
    parser.add_argument("--seed", type=int, default=42, help="root RNG seed")
    parser.add_argument(
        "--out",
        default=None,
        help="directory to write <figure>_<scale>.txt result files into",
    )
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    figure_ids = sorted(FIGURES) if args.figure == "all" else [args.figure]
    unknown = [f for f in figure_ids if f not in FIGURES]
    if unknown:
        print(f"unknown figure(s): {', '.join(unknown)}", file=sys.stderr)
        return 2
    if args.out:
        os.makedirs(args.out, exist_ok=True)
    for figure_id in figure_ids:
        started = time.perf_counter()
        table = run_figure(figure_id, scale=args.scale, seed=args.seed)
        elapsed = time.perf_counter() - started
        rendered = table.render()
        print(rendered)
        print(f"[{figure_id} @ {args.scale}: {elapsed:.1f}s]\n")
        if args.out:
            path = os.path.join(args.out, f"{figure_id}_{args.scale}.txt")
            with open(path, "w", encoding="utf-8") as handle:
                handle.write(rendered + "\n")
    return 0


if __name__ == "__main__":  # pragma: no cover - CLI entry
    sys.exit(main())
