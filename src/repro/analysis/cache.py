"""Incremental lint cache and the ``--changed`` git-diff mode.

The cache makes pre-commit-sized runs cheap.  Its unit of work is the
*per-file* analysis (parsing plus every module-scope rule), keyed by a
sha256 of the file's bytes and a fingerprint of the selected rule set:

* a file whose hash matches the cache replays its stored findings
  without being parsed;
* project-scope rules (call graph, fingerprint closure) depend on all
  files at once, so their findings are cached under a fingerprint of
  the whole file set — a fully warm run replays them without parsing
  anything, and any change reruns them over the freshly parsed
  project (module-scope work for unchanged files is still replayed).

``--changed`` adds the pre-commit trust model on top: files git
reports as untouched that have no cache entry are *skipped* (trusted
clean) rather than analyzed, so even a cold run only analyzes the
working-tree diff.  Skipped files are never written to the cache, so
a later full run cannot replay a verdict that was never computed.
The CI job runs the full tree with no cache and stays authoritative.

Cached findings are stored *after* suppression filtering but *before*
baseline subtraction — baselines are cheap and may change between
runs without invalidating the cache.
"""

from __future__ import annotations

import hashlib
import json
import os
import subprocess
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.analysis.framework import (
    Finding,
    LintReport,
    ParsedModule,
    Project,
    Rule,
    apply_baseline,
    is_project_rule,
    iter_python_files,
    module_findings,
    parse_module,
    project_findings,
    syntax_finding,
    _display_path,
)

#: Bump to invalidate every cache on disk (schema or semantics change).
CACHE_SCHEMA_VERSION = 1

#: Default cache location (repo root; gitignored).
DEFAULT_CACHE_PATH = ".simlint-cache.json"


@dataclass
class CacheStats:
    """What the cached run actually did, for the CLI status line."""

    analyzed: int = 0  #: files parsed and checked this run
    replayed: int = 0  #: files served from the cache
    skipped: int = 0  #: files trusted clean by ``--changed``
    finalized: bool = False  #: whether project-scope rules reran


@dataclass
class _FileEntry:
    digest: str
    findings: List[Finding] = field(default_factory=list)


def rulepack_fingerprint(rules: Sequence[Rule]) -> str:
    """Cache key component identifying the selected rule set."""
    names = ",".join(sorted(rule.name for rule in rules))
    payload = f"v{CACHE_SCHEMA_VERSION}:{names}"
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


def _file_digest(path: str) -> str:
    with open(path, "rb") as handle:
        return hashlib.sha256(handle.read()).hexdigest()


def _finding_from_dict(record: Dict[str, object]) -> Finding:
    return Finding(
        str(record["rule"]),
        str(record["path"]),
        int(record["line"]),  # type: ignore[arg-type]
        int(record["col"]),  # type: ignore[arg-type]
        str(record["message"]),
        severity=str(record.get("severity", "error")),
    )


def load_cache(path: str, fingerprint: str) -> Dict[str, object]:
    """The cache payload, or an empty one on miss/mismatch/corruption."""
    empty: Dict[str, object] = {"files": {}, "project": None}
    try:
        with open(path, encoding="utf-8") as handle:
            data = json.load(handle)
    except (OSError, ValueError):
        return empty
    if not isinstance(data, dict) or data.get("fingerprint") != fingerprint:
        return empty
    return {"files": data.get("files", {}), "project": data.get("project")}


def write_cache(
    path: str,
    fingerprint: str,
    files: Dict[str, _FileEntry],
    project_digest: str,
    project_results: Optional[List[Finding]],
) -> None:
    """Persist the cache atomically (best effort)."""
    payload: Dict[str, object] = {
        "version": CACHE_SCHEMA_VERSION,
        "fingerprint": fingerprint,
        "files": {
            display: {
                "hash": entry.digest,
                "findings": [f.to_dict() for f in entry.findings],
            }
            for display, entry in sorted(files.items())
        },
    }
    if project_results is not None:
        payload["project"] = {
            "hash": project_digest,
            "findings": [f.to_dict() for f in project_results],
        }
    tmp = f"{path}.tmp"
    try:
        with open(tmp, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, indent=1, sort_keys=True)
            handle.write("\n")
        os.replace(tmp, path)
    except OSError:
        # A read-only checkout must not break linting.
        try:
            os.unlink(tmp)
        except OSError:
            pass


def git_changed_files() -> Optional[Set[str]]:
    """Display paths of files git considers changed, or None on failure.

    Changed means modified/added relative to ``HEAD`` (staged or not)
    plus untracked-but-not-ignored — the set a pre-commit run needs to
    look at.
    """
    try:
        top = subprocess.run(
            ["git", "rev-parse", "--show-toplevel"],
            capture_output=True,
            text=True,
            check=True,
        ).stdout.strip()
        diff = subprocess.run(
            ["git", "diff", "--name-only", "HEAD"],
            capture_output=True,
            text=True,
            check=True,
        ).stdout
        untracked = subprocess.run(
            ["git", "ls-files", "--others", "--exclude-standard"],
            capture_output=True,
            text=True,
            check=True,
        ).stdout
    except (OSError, subprocess.CalledProcessError):
        return None
    changed: Set[str] = set()
    for line in (diff + untracked).splitlines():
        line = line.strip()
        if line:
            changed.add(_display_path(os.path.join(top, line)))
    return changed


def run_lint_cached(
    paths: Sequence[str],
    rules: Sequence[Rule],
    baseline: Optional[Set[Tuple[str, str, int]]],
    cache_path: str,
    changed: Optional[Set[str]] = None,
) -> Tuple[LintReport, CacheStats]:
    """:func:`repro.analysis.framework.run_lint` with the incremental cache.

    ``changed`` of ``None`` means every cache miss is analyzed (plain
    ``--cache`` mode); a set enables the ``--changed`` trust model
    described in the module docstring.
    """
    fingerprint = rulepack_fingerprint(rules)
    cache = load_cache(cache_path, fingerprint)
    cached_files = cache["files"]
    assert isinstance(cached_files, dict)
    stats = CacheStats()

    file_list: List[Tuple[str, str, str]] = []  # (path, display, digest)
    for root in paths:
        for file_path in iter_python_files(root):
            file_list.append(
                (file_path, _display_path(file_path), _file_digest(file_path))
            )

    findings: List[Finding] = []
    next_files: Dict[str, _FileEntry] = {}
    parsed: Dict[str, ParsedModule] = {}
    deferred: List[Tuple[str, str, str]] = []  # --changed trust candidates
    any_change = False

    def analyze(file_path: str, display: str, digest: str) -> None:
        try:
            module = parse_module(file_path)
        except SyntaxError as error:
            fresh = [syntax_finding(file_path, error)]
        else:
            parsed[display] = module
            fresh = module_findings(module, rules)
        findings.extend(fresh)
        next_files[display] = _FileEntry(digest, fresh)
        stats.analyzed += 1

    for file_path, display, digest in file_list:
        entry = cached_files.get(display)
        if isinstance(entry, dict) and entry.get("hash") == digest:
            replayed = [
                _finding_from_dict(record)
                for record in entry.get("findings", [])
            ]
            findings.extend(replayed)
            next_files[display] = _FileEntry(digest, replayed)
            stats.replayed += 1
            continue
        any_change = True
        if changed is not None and display not in changed:
            deferred.append((file_path, display, digest))
            continue
        analyze(file_path, display, digest)

    project_digest = hashlib.sha256(
        json.dumps(
            sorted((display, digest) for _, display, digest in file_list)
        ).encode("utf-8")
    ).hexdigest()

    project_results: Optional[List[Finding]] = None
    has_project_rules = any(is_project_rule(rule) for rule in rules)
    # No project rules ⇒ no project pass exists to replay; keep the
    # "project pass replayed" marker for actual replays only.
    stats.finalized = not has_project_rules
    cached_project = cache["project"]
    replay_project = (
        has_project_rules
        and not any_change
        and isinstance(cached_project, dict)
        and cached_project.get("hash") == project_digest
    )
    if has_project_rules and not replay_project:
        # Project rules see every module, so the --changed trust model
        # cannot skip anything this run: analyze the deferred files too
        # (caching them, so the next run replays instead), and re-parse
        # cache hits for the project pass only.
        for file_path, display, digest in deferred:
            analyze(file_path, display, digest)
        deferred = []
        project = Project()
        for file_path, display, _digest in file_list:
            module = parsed.get(display)
            if module is None and display not in parsed:
                try:
                    module = parse_module(file_path)
                except SyntaxError:
                    continue
                parsed[display] = module
            if module is None:
                module = parsed.get(display)
            if module is not None:
                project.modules.append(module)
        project_results = project_findings(project, rules)
        stats.finalized = True
        findings.extend(project_results)
    elif replay_project and isinstance(cached_project, dict):
        project_results = [
            _finding_from_dict(record)
            for record in cached_project.get("findings", [])
        ]
        findings.extend(project_results)
    stats.skipped = len(deferred)

    write_cache(cache_path, fingerprint, next_files, project_digest, project_results)
    findings, stale = apply_baseline(findings, baseline)
    findings.sort(key=lambda f: f.sort_key)
    return (
        LintReport(
            findings=findings,
            files_checked=len(file_list),
            stale_baseline=stale,
        ),
        stats,
    )
