"""``repro-lint``: the command-line front end of simlint.

Usage::

    repro-lint src/repro                      # text report, exit 1 on findings
    repro-lint --format json src/repro        # machine-readable findings
    repro-lint --select RNG001,DET003 src     # subset of rules
    repro-lint --baseline simlint.json src    # subtract accepted findings
    repro-lint --write-baseline simlint.json src   # snapshot current findings
    repro-lint --list-rules                   # rule pack documentation

Exit codes are CI-friendly: ``0`` clean, ``1`` findings, ``2`` usage or
internal error — the same contract as ruff/mypy, so the static-analysis
job can chain the three tools with plain shell ``&&``.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from typing import List, Optional, Sequence

from repro.analysis.framework import (
    RULE_REGISTRY,
    LintReport,
    Rule,
    baseline_payload,
    default_rules,
    load_baseline,
    run_lint,
)

# Import for the registration side effect: the rule pack populates
# RULE_REGISTRY when this module is first loaded.
import repro.analysis.rules  # noqa: F401  (registration side effect)

#: Exit codes (mirrors ruff: 0 clean, 1 findings, 2 tool/usage error).
EXIT_CLEAN = 0
EXIT_FINDINGS = 1
EXIT_ERROR = 2


def build_parser() -> argparse.ArgumentParser:
    """The repro-lint argument parser (exposed for tests and docs)."""
    parser = argparse.ArgumentParser(
        prog="repro-lint",
        description="AST-based determinism & invariant analyzer for the repro codebase.",
    )
    parser.add_argument(
        "paths", nargs="*", help="files or directories to lint (e.g. src/repro)"
    )
    parser.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="report format (default: text)",
    )
    parser.add_argument(
        "--select",
        metavar="RULES",
        help="comma-separated rule names to run (default: all registered rules)",
    )
    parser.add_argument(
        "--baseline",
        metavar="FILE",
        help="JSON baseline of accepted findings to subtract",
    )
    parser.add_argument(
        "--write-baseline",
        metavar="FILE",
        help="write the surviving findings to FILE as a baseline and exit 0",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print every registered rule with its rationale and exit",
    )
    return parser


def _select_rules(spec: Optional[str]) -> List[Rule]:
    if spec is None:
        return default_rules()
    rules: List[Rule] = []
    for name in (part.strip() for part in spec.split(",")):
        if not name:
            continue
        if name not in RULE_REGISTRY:
            raise KeyError(name)
        rules.append(RULE_REGISTRY[name]())
    if not rules:
        raise KeyError(spec)
    return rules


def _print_rules() -> None:
    for name in sorted(RULE_REGISTRY):
        rule = RULE_REGISTRY[name]
        print(f"{name}: {rule.summary}")
        if rule.rationale:
            print(f"    {rule.rationale}")


def _render(report: LintReport, fmt: str) -> None:
    if fmt == "json":
        payload = {
            "files_checked": report.files_checked,
            "findings": [finding.to_dict() for finding in report.findings],
        }
        print(json.dumps(payload, indent=2, sort_keys=True))
        return
    for finding in report.findings:
        print(finding.render())
    noun = "finding" if len(report.findings) == 1 else "findings"
    print(
        f"repro-lint: {len(report.findings)} {noun} "
        f"in {report.files_checked} file(s)"
    )


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.list_rules:
        _print_rules()
        return EXIT_CLEAN
    if not args.paths:
        parser.print_usage(sys.stderr)
        print("repro-lint: error: no paths given", file=sys.stderr)
        return EXIT_ERROR
    missing = [path for path in args.paths if not os.path.exists(path)]
    if missing:
        # A typo'd path must fail loudly: "0 findings in 0 file(s)"
        # would let the CI gate pass without checking anything.
        for path in missing:
            print(f"repro-lint: error: no such file or directory: {path}", file=sys.stderr)
        return EXIT_ERROR
    try:
        rules = _select_rules(args.select)
    except KeyError as error:
        print(
            f"repro-lint: error: unknown rule {error.args[0]!r} "
            f"(known: {', '.join(sorted(RULE_REGISTRY))})",
            file=sys.stderr,
        )
        return EXIT_ERROR
    baseline = None
    if args.baseline:
        try:
            baseline = load_baseline(args.baseline)
        except (OSError, ValueError, KeyError) as error:
            print(f"repro-lint: error: bad baseline {args.baseline}: {error}", file=sys.stderr)
            return EXIT_ERROR
    try:
        report = run_lint(args.paths, rules=rules, baseline=baseline)
    except OSError as error:
        print(f"repro-lint: error: {error}", file=sys.stderr)
        return EXIT_ERROR
    if args.write_baseline:
        with open(args.write_baseline, "w", encoding="utf-8") as handle:
            json.dump(baseline_payload(report.findings), handle, indent=2)
            handle.write("\n")
        print(
            f"repro-lint: wrote baseline with {len(report.findings)} finding(s) "
            f"to {args.write_baseline}"
        )
        return EXIT_CLEAN
    _render(report, args.format)
    return EXIT_CLEAN if report.clean else EXIT_FINDINGS


if __name__ == "__main__":  # pragma: no cover - exercised via __main__.py
    sys.exit(main())
