"""``repro-lint``: the command-line front end of simlint.

Usage::

    repro-lint src/repro                      # text report, exit 1 on findings
    repro-lint --format json src/repro        # machine-readable findings
    repro-lint --format sarif src/repro       # GitHub code-scanning upload
    repro-lint --select RNG001,DET003 src     # subset of rules
    repro-lint --baseline simlint.json src    # subtract accepted findings
    repro-lint --write-baseline simlint.json src   # snapshot current findings
    repro-lint --prune-baseline --baseline b.json src  # drop stale entries
    repro-lint --cache .simlint-cache.json src     # incremental (content hash)
    repro-lint --changed src/repro            # pre-commit mode (cache + git)
    repro-lint --explain HOT001               # one rule's full documentation
    repro-lint --list-rules                   # rule pack documentation

Exit codes are CI-friendly: ``0`` clean, ``1`` findings (or a stale
baseline), ``2`` usage or internal error — the same contract as
ruff/mypy, so the static-analysis job can chain the three tools with
plain shell ``&&``.  Warn-severity findings are reported but never
flip the exit code on their own.
"""

from __future__ import annotations

import argparse
import dataclasses
import json
import os
import sys
from typing import List, Optional, Sequence, Set, Tuple

from repro.analysis.framework import (
    RULE_REGISTRY,
    LintReport,
    Rule,
    baseline_payload,
    default_rules,
    is_project_rule,
    load_baseline,
    run_lint,
)
from repro.analysis.cache import (
    DEFAULT_CACHE_PATH,
    CacheStats,
    git_changed_files,
    run_lint_cached,
)
from repro.analysis.sarif import sarif_payload

# Import for the registration side effect: the rule packs populate
# RULE_REGISTRY when this module is first loaded.
import repro.analysis.rules  # noqa: F401  (registration side effect)
import repro.analysis.contracts  # noqa: F401  (registration side effect)

#: Exit codes (mirrors ruff: 0 clean, 1 findings, 2 tool/usage error).
EXIT_CLEAN = 0
EXIT_FINDINGS = 1
EXIT_ERROR = 2


def build_parser() -> argparse.ArgumentParser:
    """The repro-lint argument parser (exposed for tests and docs)."""
    parser = argparse.ArgumentParser(
        prog="repro-lint",
        description="AST-based determinism & invariant analyzer for the repro codebase.",
    )
    parser.add_argument(
        "paths", nargs="*", help="files or directories to lint (e.g. src/repro)"
    )
    parser.add_argument(
        "--format",
        choices=("text", "json", "sarif"),
        default="text",
        help="report format (default: text)",
    )
    parser.add_argument(
        "--select",
        metavar="RULES",
        help="comma-separated rule names to run (default: all registered rules)",
    )
    parser.add_argument(
        "--warn",
        metavar="RULES",
        help="comma-separated rule names demoted to warn severity "
        "(reported, but never exit 1)",
    )
    parser.add_argument(
        "--baseline",
        metavar="FILE",
        help="JSON baseline of accepted findings to subtract",
    )
    parser.add_argument(
        "--write-baseline",
        metavar="FILE",
        help="write the surviving findings to FILE as a baseline and exit 0",
    )
    parser.add_argument(
        "--prune-baseline",
        action="store_true",
        help="rewrite --baseline FILE without stale entries instead of "
        "failing on them",
    )
    parser.add_argument(
        "--cache",
        metavar="FILE",
        help="incremental cache keyed by file content hash "
        f"(--changed defaults this to {DEFAULT_CACHE_PATH})",
    )
    parser.add_argument(
        "--changed",
        action="store_true",
        help="pre-commit mode: use the incremental cache and let git "
        "bound the analyzed set to the working-tree diff",
    )
    parser.add_argument(
        "--explain",
        metavar="RULE",
        help="print one rule's full documentation and exit",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print every registered rule with its rationale and exit",
    )
    return parser


def _select_rules(spec: Optional[str]) -> List[Rule]:
    if spec is None:
        return default_rules()
    rules: List[Rule] = []
    for name in (part.strip() for part in spec.split(",")):
        if not name:
            continue
        if name not in RULE_REGISTRY:
            raise KeyError(name)
        rules.append(RULE_REGISTRY[name]())
    if not rules:
        raise KeyError(spec)
    return rules


def _print_rules() -> None:
    for name in sorted(RULE_REGISTRY):
        rule = RULE_REGISTRY[name]
        print(f"{name}: {rule.summary}")
        if rule.rationale:
            print(f"    {rule.rationale}")


def _explain_rule(name: str) -> int:
    cls = RULE_REGISTRY.get(name)
    if cls is None:
        print(
            f"repro-lint: error: unknown rule {name!r} "
            f"(known: {', '.join(sorted(RULE_REGISTRY))})",
            file=sys.stderr,
        )
        return EXIT_ERROR
    rule = cls()
    scope = "project (cross-module)" if is_project_rule(rule) else "module"
    print(f"{rule.name}: {rule.summary}")
    print(f"severity: {rule.severity}")
    print(f"scope: {scope}")
    print()
    print(rule.rationale or "(no extended rationale)")
    print()
    print("suppress a deliberate exemption inline with:")
    print(f"    offending_code()  # simlint: disable={rule.name} -- why this is safe")
    return EXIT_CLEAN


def _apply_warn_demotions(
    report: LintReport, warn_rules: Set[str]
) -> LintReport:
    if not warn_rules:
        return report
    demoted = [
        dataclasses.replace(f, severity="warn") if f.rule in warn_rules else f
        for f in report.findings
    ]
    return LintReport(
        findings=demoted,
        files_checked=report.files_checked,
        stale_baseline=report.stale_baseline,
    )


def _render(
    report: LintReport,
    fmt: str,
    rules: Sequence[Rule],
    stats: Optional[CacheStats],
) -> None:
    if fmt == "json":
        payload = {
            "files_checked": report.files_checked,
            "findings": [finding.to_dict() for finding in report.findings],
        }
        print(json.dumps(payload, indent=2, sort_keys=True))
        return
    if fmt == "sarif":
        print(json.dumps(sarif_payload(report, rules), indent=2, sort_keys=True))
        return
    for finding in report.findings:
        print(finding.render())
    noun = "finding" if len(report.findings) == 1 else "findings"
    summary = (
        f"repro-lint: {len(report.findings)} {noun} "
        f"in {report.files_checked} file(s)"
    )
    warnings = len(report.warnings)
    if warnings:
        summary += f" ({len(report.errors)} error(s), {warnings} warning(s))"
    if stats is not None:
        summary += (
            f" [cache: {stats.analyzed} analyzed, {stats.replayed} replayed"
            + (f", {stats.skipped} skipped" if stats.skipped else "")
            + ("" if stats.finalized else "; project pass replayed")
            + "]"
        )
    print(summary)


def _report_stale(
    report: LintReport,
    baseline_path: str,
    prune: bool,
) -> Optional[int]:
    """Handle stale baseline entries; an exit code ends the run early."""
    if not report.stale_baseline:
        return None
    if prune:
        kept = [
            {"rule": rule, "path": path, "line": line}
            for (rule, path, line) in sorted(
                load_baseline(baseline_path) - set(report.stale_baseline)
            )
        ]
        with open(baseline_path, "w", encoding="utf-8") as handle:
            json.dump({"version": 1, "findings": kept}, handle, indent=2)
            handle.write("\n")
        print(
            f"repro-lint: pruned {len(report.stale_baseline)} stale baseline "
            f"entr{'y' if len(report.stale_baseline) == 1 else 'ies'} from "
            f"{baseline_path}"
        )
        return None
    for rule, path, line in report.stale_baseline:
        print(
            f"repro-lint: stale baseline entry: {rule} at {path}:{line} "
            "matches no finding",
            file=sys.stderr,
        )
    print(
        "repro-lint: error: the baseline contains entries that match no "
        "finding — the debt was paid; remove them (or run with "
        "--prune-baseline)",
        file=sys.stderr,
    )
    return EXIT_FINDINGS


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.list_rules:
        _print_rules()
        return EXIT_CLEAN
    if args.explain:
        return _explain_rule(args.explain)
    if not args.paths:
        parser.print_usage(sys.stderr)
        print("repro-lint: error: no paths given", file=sys.stderr)
        return EXIT_ERROR
    missing = [path for path in args.paths if not os.path.exists(path)]
    if missing:
        # A typo'd path must fail loudly: "0 findings in 0 file(s)"
        # would let the CI gate pass without checking anything.
        for path in missing:
            print(f"repro-lint: error: no such file or directory: {path}", file=sys.stderr)
        return EXIT_ERROR
    try:
        rules = _select_rules(args.select)
        warn_rules = (
            {r.name for r in _select_rules(args.warn)} if args.warn else set()
        )
    except KeyError as error:
        print(
            f"repro-lint: error: unknown rule {error.args[0]!r} "
            f"(known: {', '.join(sorted(RULE_REGISTRY))})",
            file=sys.stderr,
        )
        return EXIT_ERROR
    baseline: Optional[Set[Tuple[str, str, int]]] = None
    if args.baseline:
        try:
            baseline = load_baseline(args.baseline)
        except (OSError, ValueError, KeyError) as error:
            print(f"repro-lint: error: bad baseline {args.baseline}: {error}", file=sys.stderr)
            return EXIT_ERROR
    elif args.prune_baseline:
        print(
            "repro-lint: error: --prune-baseline requires --baseline",
            file=sys.stderr,
        )
        return EXIT_ERROR
    cache_path = args.cache
    if args.changed and cache_path is None:
        cache_path = DEFAULT_CACHE_PATH
    stats: Optional[CacheStats] = None
    try:
        if cache_path is not None:
            changed: Optional[Set[str]] = None
            if args.changed:
                changed = git_changed_files()
                if changed is None:
                    print(
                        "repro-lint: warning: git diff failed; analyzing "
                        "every cache miss",
                        file=sys.stderr,
                    )
            report, stats = run_lint_cached(
                args.paths, rules, baseline, cache_path, changed
            )
        else:
            report = run_lint(args.paths, rules=rules, baseline=baseline)
    except OSError as error:
        print(f"repro-lint: error: {error}", file=sys.stderr)
        return EXIT_ERROR
    report = _apply_warn_demotions(report, warn_rules)
    if args.write_baseline:
        with open(args.write_baseline, "w", encoding="utf-8") as handle:
            json.dump(baseline_payload(report.findings), handle, indent=2)
            handle.write("\n")
        print(
            f"repro-lint: wrote baseline with {len(report.findings)} finding(s) "
            f"to {args.write_baseline}"
        )
        return EXIT_CLEAN
    if args.baseline:
        stale_exit = _report_stale(report, args.baseline, args.prune_baseline)
        if stale_exit is not None:
            return stale_exit
    _render(report, args.format, rules, stats)
    return EXIT_CLEAN if not report.errors else EXIT_FINDINGS


if __name__ == "__main__":  # pragma: no cover - exercised via __main__.py
    sys.exit(main())
