"""simlint: AST-based determinism & invariant analysis for this repo.

The package has two consumers in mind:

* the ``repro-lint`` CLI (:mod:`repro.analysis.cli`), which runs the
  registered rule pack (:mod:`repro.analysis.rules`) over ``src/repro``
  in CI and locally, and
* other AST tooling in the repository — ``tests/test_docstrings.py``
  reuses :func:`missing_docstrings` / :func:`iter_python_files` so the
  repo keeps exactly one AST toolkit.

See ``docs/DETERMINISM.md`` for what each rule protects and why.
"""

from repro.analysis.framework import (
    RULE_REGISTRY,
    Finding,
    LintReport,
    ParsedModule,
    Project,
    Rule,
    annotation_names,
    apply_baseline,
    baseline_payload,
    default_rules,
    dotted_name,
    is_project_rule,
    iter_python_files,
    load_baseline,
    missing_docstrings,
    parse_module,
    register_rule,
    run_lint,
    walk_with_ancestors,
)
from repro.analysis import rules as _rules  # noqa: F401  (rule registration)
from repro.analysis import contracts as _contracts  # noqa: F401  (rule registration)
from repro.analysis.cache import run_lint_cached
from repro.analysis.cli import main
from repro.analysis.project import ProjectGraph, project_graph
from repro.analysis.sarif import sarif_payload

__all__ = [
    "Finding",
    "LintReport",
    "ParsedModule",
    "Project",
    "ProjectGraph",
    "Rule",
    "RULE_REGISTRY",
    "annotation_names",
    "apply_baseline",
    "baseline_payload",
    "default_rules",
    "dotted_name",
    "is_project_rule",
    "iter_python_files",
    "load_baseline",
    "main",
    "missing_docstrings",
    "parse_module",
    "project_graph",
    "register_rule",
    "run_lint",
    "run_lint_cached",
    "sarif_payload",
    "walk_with_ancestors",
]
