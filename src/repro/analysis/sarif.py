"""SARIF 2.1.0 rendering for ``repro-lint --format sarif``.

GitHub code scanning ingests SARIF, so the static-analysis CI job can
upload simlint findings and have them annotate PRs inline.  Only the
slice of the (large) SARIF spec that code scanning consumes is
emitted: one run, the rule metadata under ``tool.driver.rules``, and
one ``result`` per finding with a physical location.

Paths are emitted exactly as simlint displays them (repo-relative,
forward slashes), which is what the upload action expects when run
from the repository root.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

from repro.analysis.framework import (
    RULE_REGISTRY,
    LintReport,
    Rule,
    SUPPRESSION_RULE,
    SYNTAX_RULE,
)

SARIF_VERSION = "2.1.0"
SARIF_SCHEMA = (
    "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/"
    "Schemata/sarif-schema-2.1.0.json"
)

#: Meta rules that have no Rule class but can appear in findings.
_META_RULES: Dict[str, str] = {
    SUPPRESSION_RULE: "malformed or unexplained simlint suppression comment",
    SYNTAX_RULE: "file failed to parse",
}


def _level(severity: str) -> str:
    return "warning" if severity == "warn" else "error"


def _rule_metadata(rules: Sequence[Rule]) -> List[Dict[str, object]]:
    entries: List[Dict[str, object]] = []
    for rule in sorted(rules, key=lambda r: r.name):
        entries.append(
            {
                "id": rule.name,
                "shortDescription": {"text": rule.summary or rule.name},
                "fullDescription": {"text": rule.rationale or rule.summary},
                "help": {"text": "See docs/DETERMINISM.md for the full rationale."},
                "defaultConfiguration": {"level": _level(rule.severity)},
            }
        )
    for name, summary in sorted(_META_RULES.items()):
        entries.append(
            {
                "id": name,
                "shortDescription": {"text": summary},
                "fullDescription": {"text": summary},
                "defaultConfiguration": {"level": "error"},
            }
        )
    return entries


def sarif_payload(report: LintReport, rules: Sequence[Rule]) -> Dict[str, object]:
    """The SARIF document for one lint run."""
    rule_entries = _rule_metadata(rules)
    rule_index = {entry["id"]: i for i, entry in enumerate(rule_entries)}
    results: List[Dict[str, object]] = []
    for finding in report.findings:
        result: Dict[str, object] = {
            "ruleId": finding.rule,
            "level": _level(finding.severity),
            "message": {"text": finding.message},
            "locations": [
                {
                    "physicalLocation": {
                        "artifactLocation": {"uri": finding.path},
                        "region": {
                            "startLine": finding.line,
                            "startColumn": finding.col,
                        },
                    }
                }
            ],
        }
        if finding.rule in rule_index:
            result["ruleIndex"] = rule_index[finding.rule]
        results.append(result)
    return {
        "$schema": SARIF_SCHEMA,
        "version": SARIF_VERSION,
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": "repro-lint",
                        "rules": rule_entries,
                    }
                },
                "results": results,
            }
        ],
    }


def default_rule_metadata() -> List[Dict[str, object]]:
    """Metadata rows for every registered rule (documentation helper)."""
    return _rule_metadata([RULE_REGISTRY[name]() for name in sorted(RULE_REGISTRY)])
