"""Core machinery of ``simlint``: findings, modules, suppressions, runner.

The framework is deliberately small and reusable: a :class:`Rule` is a
class with a ``name`` and a ``check_module`` hook (plus an optional
cross-module ``finalize`` hook), registered through
:func:`register_rule`; :func:`run_lint` parses every target file once
into a :class:`ParsedModule` and feeds it to every selected rule.  The
AST helpers at the bottom (:func:`dotted_name`,
:func:`walk_with_ancestors`, :func:`missing_docstrings`, ...) are shared
with other consumers — ``tests/test_docstrings.py`` reuses them so the
repo has exactly one AST toolkit.

Suppressions
------------
A finding is silenced inline with::

    some_code()  # simlint: disable=RULE1,RULE2 -- why this is safe

The ``-- reason`` part is mandatory: an unexplained suppression is
itself reported (rule ``SUP001``) because a bare "disable" comment is
exactly the kind of convention rot this tool exists to prevent.  A
suppression comment on its own line applies to the next code line;
otherwise it applies to its own line (for multi-line statements, anchor
the comment on the statement's first line, where the AST node starts).

Baselines
---------
``run_lint`` optionally subtracts a JSON baseline (a list of
``{rule, path, line}`` records) so the tool can be adopted on a codebase
with pre-existing findings.  This repository's own baseline is empty by
design — every finding is fixed or explicitly suppressed.
"""

from __future__ import annotations

import ast
import io
import json
import os
import re
import tokenize
from dataclasses import dataclass, field
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Set, Tuple, Type

#: Rule id used for malformed suppression comments (not suppressible).
SUPPRESSION_RULE = "SUP001"
#: Rule id used for files that fail to parse (not suppressible).
SYNTAX_RULE = "SYN001"

# The reason group is lazy (not ``.*\S``) so a whitespace-only reason
# still parses and is reported as "without a reason" rather than as an
# unparseable comment — the actionable message for the likelier typo.
_SUPPRESS_RE = re.compile(
    r"#\s*simlint:\s*disable=(?P<rules>[A-Za-z0-9_,\s]+?)"
    r"(?:\s*--\s*(?P<reason>.*?))?\s*$"
)


@dataclass(frozen=True)
class Finding:
    """One lint violation at a specific source location."""

    rule: str
    path: str
    line: int
    col: int
    message: str
    #: ``"error"`` findings gate CI (exit 1); ``"warn"`` findings are
    #: reported but never flip the exit code.
    severity: str = "error"

    @property
    def sort_key(self) -> Tuple[str, int, int, str]:
        """Stable ordering: by file, then position, then rule id."""
        return (self.path, self.line, self.col, self.rule)

    def to_dict(self) -> Dict[str, object]:
        """JSON-safe representation (used by ``--format json``)."""
        return {
            "rule": self.rule,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
            "severity": self.severity,
        }

    def render(self) -> str:
        """Human-readable one-liner, ``path:line:col: RULE message``.

        Warnings carry a ``[warn]`` marker; errors keep the historical
        unmarked form so baselines, CI grep patterns and test
        expectations written against v1 output stay valid.
        """
        marker = " [warn]" if self.severity == "warn" else ""
        return f"{self.path}:{self.line}:{self.col}: {self.rule}{marker} {self.message}"


@dataclass(frozen=True)
class Suppression:
    """One parsed ``# simlint: disable=...`` comment."""

    line: int  #: line the suppression *applies to* (not necessarily its own)
    rules: Tuple[str, ...]
    reason: str


class ParsedModule:
    """One source file: path, text, AST, and its inline suppressions."""

    def __init__(self, path: str, display_path: str, source: str) -> None:
        self.path = path
        self.display_path = display_path
        self.source = source
        self.lines = source.splitlines()
        self.tree = ast.parse(source, filename=path)
        #: applies-to line -> suppression
        self.suppressions: Dict[int, Suppression] = {}
        #: malformed-suppression findings discovered while parsing comments
        self.meta_findings: List[Finding] = []
        self._parse_suppressions()
        self._extend_to_decorated_defs()

    def _iter_comments(self) -> Iterator[Tuple[int, int, str]]:
        """``(line, col, text)`` for every real comment token.

        Tokenizing (rather than scanning raw lines) keeps suppression
        syntax inside string literals — docstrings documenting the
        feature, for instance — from being parsed as suppressions.
        """
        reader = io.StringIO(self.source).readline
        try:
            for token in tokenize.generate_tokens(reader):
                if token.type == tokenize.COMMENT:
                    yield token.start[0], token.start[1], token.string
        except (tokenize.TokenError, IndentationError):  # pragma: no cover
            return

    def _parse_suppressions(self) -> None:
        for lineno, col_offset, text in self._iter_comments():
            match = _SUPPRESS_RE.search(text)
            if match is None:
                if "simlint:" in text and "disable" in text:
                    self.meta_findings.append(
                        Finding(
                            SUPPRESSION_RULE,
                            self.display_path,
                            lineno,
                            col_offset + 1,
                            "unparseable simlint suppression comment "
                            "(expected '# simlint: disable=RULE -- reason')",
                        )
                    )
                continue
            rules = tuple(
                part.strip() for part in match.group("rules").split(",") if part.strip()
            )
            reason = (match.group("reason") or "").strip()
            col = col_offset + match.start() + 1
            if not rules:
                self.meta_findings.append(
                    Finding(
                        SUPPRESSION_RULE,
                        self.display_path,
                        lineno,
                        col,
                        "suppression names no rules",
                    )
                )
                continue
            if not reason:
                self.meta_findings.append(
                    Finding(
                        SUPPRESSION_RULE,
                        self.display_path,
                        lineno,
                        col,
                        "suppression without a reason — append ' -- why this is safe' "
                        f"(rules: {', '.join(rules)})",
                    )
                )
                continue
            # A comment alone on its line shields the next line; a
            # trailing comment shields its own.
            code_before = self.lines[lineno - 1][:col_offset].strip()
            applies_to = lineno if code_before else lineno + 1
            self.suppressions[applies_to] = Suppression(applies_to, rules, reason)

    def _extend_to_decorated_defs(self) -> None:
        """Let a suppression above a decorator shield the decorated def.

        A standalone suppression comment applies to the next line; for
        a decorated function or class that next line is the first
        decorator, while rules anchor their findings at the ``def`` /
        ``class`` line.  Alias any suppression that lands on a
        decorator line onto the definition's own line so the natural
        comment placement (directly above the decorator stack) works.
        """
        for node in ast.walk(self.tree):
            if not isinstance(
                node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
            ):
                continue
            for decorator in node.decorator_list:
                suppression = self.suppressions.get(decorator.lineno)
                if suppression is not None and node.lineno not in self.suppressions:
                    self.suppressions[node.lineno] = Suppression(
                        node.lineno, suppression.rules, suppression.reason
                    )

    def is_suppressed(self, rule: str, line: int) -> bool:
        """Whether ``rule`` is inline-suppressed for findings on ``line``."""
        suppression = self.suppressions.get(line)
        return suppression is not None and rule in suppression.rules


@dataclass
class Project:
    """Every parsed module of one lint run, for cross-module rules."""

    modules: List[ParsedModule] = field(default_factory=list)
    #: Scratch space for expensive cross-module artifacts (the call
    #: graph from :mod:`repro.analysis.project` caches itself here so
    #: several project-scope rules share one build).
    cache: Dict[str, object] = field(default_factory=dict)

    def module_by_path(self, display_path: str) -> Optional[ParsedModule]:
        """The module whose display path matches, or None."""
        for module in self.modules:
            if module.display_path == display_path:
                return module
        return None


class Rule:
    """Base class for lint rules.

    Subclasses set ``name`` / ``summary`` / ``rationale`` and override
    :meth:`check_module` (per-file findings) and/or :meth:`finalize`
    (cross-module findings, called once after every file was checked).
    Rules are instantiated fresh for each run, so instance attributes
    are safe scratch space for cross-module state.
    """

    name: str = "RULE"
    summary: str = ""
    rationale: str = ""
    #: Default severity stamped on this rule's findings ("error"/"warn").
    severity: str = "error"
    #: ``"module"`` rules see one file at a time and their per-file
    #: verdicts can be replayed from the incremental cache; ``"project"``
    #: rules need every module (call graph, fingerprint closure) and
    #: rerun whenever any file changed.
    scope: str = "module"

    def check_module(self, module: ParsedModule) -> Iterable[Finding]:
        """Findings local to one module (default: none)."""
        return ()

    def finalize(self, project: Project) -> Iterable[Finding]:
        """Cross-module findings after every module was seen (default: none)."""
        return ()


def is_project_rule(rule: Rule) -> bool:
    """Whether ``rule`` needs the whole project (cross-module state)."""
    return rule.scope == "project" or type(rule).finalize is not Rule.finalize


#: Global registry: rule name -> rule class.
RULE_REGISTRY: Dict[str, Type[Rule]] = {}


def register_rule(cls: Type[Rule]) -> Type[Rule]:
    """Class decorator adding a rule to :data:`RULE_REGISTRY`."""
    if not cls.name or cls.name in RULE_REGISTRY:
        raise ValueError(f"duplicate or empty rule name: {cls.name!r}")
    RULE_REGISTRY[cls.name] = cls
    return cls


def default_rules() -> List[Rule]:
    """Fresh instances of every registered rule, in name order."""
    return [RULE_REGISTRY[name]() for name in sorted(RULE_REGISTRY)]


# ----------------------------------------------------------------------
# file collection / parsing
# ----------------------------------------------------------------------
def iter_python_files(root: str) -> List[str]:
    """Every ``*.py`` under ``root`` (or ``root`` itself), sorted.

    ``__pycache__`` directories are skipped.  A single-file root is
    returned as-is so the CLI accepts files and directories alike.
    """
    if os.path.isfile(root):
        return [root]
    paths: List[str] = []
    for directory, dirnames, filenames in os.walk(root):
        dirnames[:] = sorted(d for d in dirnames if d != "__pycache__")
        for name in sorted(filenames):
            if name.endswith(".py"):
                paths.append(os.path.join(directory, name))
    return sorted(paths)


def parse_module(path: str, display_path: Optional[str] = None) -> ParsedModule:
    """Read and parse one file into a :class:`ParsedModule`."""
    with open(path, encoding="utf-8") as handle:
        source = handle.read()
    return ParsedModule(path, display_path or _display_path(path), source)


def _display_path(path: str) -> str:
    rel = os.path.relpath(path)
    # Stay stable across platforms so baselines and test expectations
    # never depend on the host's separator.
    return rel.replace(os.sep, "/")


# ----------------------------------------------------------------------
# baseline
# ----------------------------------------------------------------------
def load_baseline(path: str) -> Set[Tuple[str, str, int]]:
    """``(rule, path, line)`` triples accepted by the baseline file."""
    with open(path, encoding="utf-8") as handle:
        data = json.load(handle)
    records = data["findings"] if isinstance(data, dict) else data
    accepted: Set[Tuple[str, str, int]] = set()
    for record in records:
        accepted.add((record["rule"], record["path"], int(record["line"])))
    return accepted


def baseline_payload(findings: Sequence[Finding]) -> Dict[str, object]:
    """JSON structure for ``--write-baseline``."""
    return {
        "version": 1,
        "findings": [
            {"rule": f.rule, "path": f.path, "line": f.line} for f in findings
        ],
    }


# ----------------------------------------------------------------------
# runner
# ----------------------------------------------------------------------
@dataclass
class LintReport:
    """Outcome of one :func:`run_lint` call."""

    findings: List[Finding]
    files_checked: int
    #: Baseline ``(rule, path, line)`` triples that matched no finding —
    #: dead weight the CLI refuses unless ``--prune-baseline`` is given.
    stale_baseline: List[Tuple[str, str, int]] = field(default_factory=list)

    @property
    def clean(self) -> bool:
        """True when no findings survived suppression and baseline."""
        return not self.findings

    @property
    def errors(self) -> List[Finding]:
        """Findings that gate the exit code."""
        return [f for f in self.findings if f.severity != "warn"]

    @property
    def warnings(self) -> List[Finding]:
        """Advisory findings (reported, never exit 1 on their own)."""
        return [f for f in self.findings if f.severity == "warn"]


def syntax_finding(file_path: str, error: SyntaxError) -> Finding:
    """The SYN001 finding for a file that failed to parse."""
    return Finding(
        SYNTAX_RULE,
        _display_path(file_path),
        error.lineno or 1,
        (error.offset or 0) + 1,
        f"syntax error: {error.msg}",
    )


def module_findings(module: ParsedModule, rules: Sequence[Rule]) -> List[Finding]:
    """Meta findings plus every module-scope rule verdict for one file.

    This is the per-file unit of work the incremental cache replays:
    project-scope rules are deliberately excluded (their verdicts
    depend on other files), handled by :func:`project_findings`.
    """
    findings = list(module.meta_findings)
    for rule in rules:
        if is_project_rule(rule):
            continue
        for finding in rule.check_module(module):
            if not module.is_suppressed(finding.rule, finding.line):
                findings.append(finding)
    return findings


def project_findings(project: Project, rules: Sequence[Rule]) -> List[Finding]:
    """Run every project-scope rule over the fully parsed project."""
    findings: List[Finding] = []
    for rule in rules:
        if not is_project_rule(rule):
            continue
        for module in project.modules:
            for finding in rule.check_module(module):
                if not module.is_suppressed(finding.rule, finding.line):
                    findings.append(finding)
        for finding in rule.finalize(project):
            module_for = project.module_by_path(finding.path)
            if module_for is not None and module_for.is_suppressed(
                finding.rule, finding.line
            ):
                continue
            findings.append(finding)
    return findings


def apply_baseline(
    findings: Sequence[Finding],
    baseline: Optional[Set[Tuple[str, str, int]]],
) -> Tuple[List[Finding], List[Tuple[str, str, int]]]:
    """Subtract baseline matches; also report entries that matched nothing.

    Stale entries are the adoption debt this tool exists to burn down:
    silently carrying them would let a fixed finding's baseline slot be
    recycled by a *new* finding at the same location, so the CLI treats
    them as an error unless explicitly pruned.
    """
    if not baseline:
        return list(findings), []
    kept: List[Finding] = []
    matched: Set[Tuple[str, str, int]] = set()
    for finding in findings:
        key = (finding.rule, finding.path, finding.line)
        if key in baseline:
            matched.add(key)
        else:
            kept.append(finding)
    stale = sorted(baseline - matched)
    return kept, stale


def run_lint(
    paths: Sequence[str],
    rules: Optional[Sequence[Rule]] = None,
    baseline: Optional[Set[Tuple[str, str, int]]] = None,
) -> LintReport:
    """Lint every Python file under ``paths`` with the given rules.

    Suppressed findings are dropped (malformed suppressions are
    reported instead and cannot themselves be suppressed); baseline
    matches are dropped last, so a baseline can also grandfather a
    malformed suppression during adoption.
    """
    if rules is None:
        rules = default_rules()
    project = Project()
    findings: List[Finding] = []
    for root in paths:
        for file_path in iter_python_files(root):
            try:
                module = parse_module(file_path)
            except SyntaxError as error:
                findings.append(syntax_finding(file_path, error))
                continue
            project.modules.append(module)
            findings.extend(module_findings(module, rules))
    findings.extend(project_findings(project, rules))
    findings, stale = apply_baseline(findings, baseline)
    findings.sort(key=lambda f: f.sort_key)
    return LintReport(
        findings=findings,
        files_checked=len(project.modules),
        stale_baseline=stale,
    )


# ----------------------------------------------------------------------
# shared AST utilities
# ----------------------------------------------------------------------
def dotted_name(node: ast.AST) -> Optional[str]:
    """``a.b.c`` for a Name/Attribute chain, or None for anything else."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def walk_with_ancestors(
    tree: ast.AST,
) -> Iterator[Tuple[ast.AST, Tuple[ast.AST, ...]]]:
    """Depth-first ``(node, ancestors)`` pairs; ancestors outermost-first."""
    stack: List[Tuple[ast.AST, Tuple[ast.AST, ...]]] = [(tree, ())]
    while stack:
        node, ancestors = stack.pop()
        yield node, ancestors
        child_ancestors = ancestors + (node,)
        # Reversed so iteration order matches source order despite the
        # LIFO stack — rules then emit findings in file order.
        for child in reversed(list(ast.iter_child_nodes(node))):
            stack.append((child, child_ancestors))


def annotation_names(node: Optional[ast.AST]) -> Set[str]:
    """Every identifier referenced by an annotation expression.

    String constants are treated as forward references and parsed
    recursively, so ``Optional["StrategySpec"]`` still yields
    ``StrategySpec``.  Unparseable strings contribute nothing.
    """
    names: Set[str] = set()
    if node is None:
        return names
    for sub in ast.walk(node):
        if isinstance(sub, ast.Name):
            names.add(sub.id)
        elif isinstance(sub, ast.Constant) and isinstance(sub.value, str):
            try:
                parsed = ast.parse(sub.value, mode="eval")
            except SyntaxError:
                continue
            for inner in ast.walk(parsed):
                if isinstance(inner, ast.Name):
                    names.add(inner.id)
    return names


# ----------------------------------------------------------------------
# docstring audit (shared with tests/test_docstrings.py)
# ----------------------------------------------------------------------
def missing_docstrings(tree: ast.Module) -> List[Tuple[int, str]]:
    """``(line, label)`` for every public definition without a docstring.

    Mirrors ruff's D100-D104/D106 scope: the module itself, public
    classes (including nested ones), and public functions/methods.
    Private (``_``-prefixed) functions and magic/``__init__`` methods
    are out of scope, matching the repo's lint configuration; private
    classes are still walked because they can hold public methods.
    """
    missing: List[Tuple[int, str]] = []
    if not ast.get_docstring(tree):
        missing.append((1, "module"))

    def walk(node: ast.AST, prefix: str = "") -> None:
        for item in getattr(node, "body", []):
            if isinstance(item, ast.ClassDef):
                public = not item.name.startswith("_")
                if public and not ast.get_docstring(item):
                    missing.append((item.lineno, f"class {prefix}{item.name}"))
                walk(item, prefix=f"{prefix}{item.name}.")
            elif isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
                if item.name.startswith("_"):
                    continue
                if not ast.get_docstring(item):
                    missing.append((item.lineno, f"def {prefix}{item.name}"))

    walk(tree)
    return missing
