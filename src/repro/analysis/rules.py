"""The simlint rule pack: determinism & invariant checks for ``src/repro``.

Every rule machine-checks a convention that the simulator's
reproducibility guarantees rest on (see ``docs/DETERMINISM.md`` for the
full rationale of each):

========  =============================================================
RNG001    no module-level ``random.*`` calls — all randomness flows
          through seeded :class:`~repro.sim.rng.RandomSource` streams
RNG002    every ``RandomSource`` draw names its ``stream=`` explicitly
DET001    no builtin ``hash()`` in simulation code (per-process salt)
DET002    no unordered (set / dict-view) iteration feeding RNG draws or
          event scheduling without an intervening ``sorted()``
DET003    no wall-clock reads outside explicitly annotated measurement
          sites
SCH001    events enter the engine heap only via the seq-tie-break API,
          never raw ``heapq.heappush``
FPR001    every spec dataclass reachable from ``SimulationConfig`` is
          fully covered by the cache fingerprint
========  =============================================================

The columnar hot-core contract rules (``HOT001``, ``NUM001``,
``MIR001``, ``VER001``) live in :mod:`repro.analysis.contracts`, built
on the cross-module call graph of :mod:`repro.analysis.project`.

The rules are syntactic: they see one AST, not runtime types, so each
documents the receiver/shape heuristics it relies on.  False positives
are expected to be rare and are silenced inline with a reasoned
``# simlint: disable=RULE -- why`` comment, which doubles as in-code
documentation of the exemption.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Set, Tuple

from repro.analysis.framework import (
    Finding,
    ParsedModule,
    Project,
    Rule,
    annotation_names,
    dotted_name,
    register_rule,
)

#: Draw methods offered by :class:`repro.sim.rng.RandomSource`.
RANDOM_SOURCE_DRAWS = frozenset(
    {"uniform_int", "choice", "sample", "shuffled", "random", "weighted_index"}
)
#: Draws whose names exist on RandomSource but not on ``random.Random``,
#: so they identify the receiver type by themselves.
RANDOM_SOURCE_ONLY_DRAWS = frozenset({"uniform_int", "weighted_index", "shuffled"})
#: Receiver identifiers conventionally bound to a RandomSource.
RANDOM_SOURCE_NAMES = frozenset({"rng", "_rng"})

#: Wall-clock callables banned by DET003 (dotted forms as written at
#: call sites under both ``import x`` and ``from x import y`` styles).
WALL_CLOCK_CALLS = frozenset(
    {
        "time.time",
        "time.time_ns",
        "time.perf_counter",
        "time.perf_counter_ns",
        "time.monotonic",
        "time.monotonic_ns",
        "time.process_time",
        "time.process_time_ns",
        "datetime.datetime.now",
        "datetime.datetime.utcnow",
        "datetime.datetime.today",
        "datetime.now",
        "datetime.utcnow",
        "datetime.today",
        "datetime.date.today",
        "date.today",
    }
)
#: Names whose ``from``-import already smuggles a wall-clock callable in.
WALL_CLOCK_FROM_IMPORTS = {
    "time": {
        "time",
        "time_ns",
        "perf_counter",
        "perf_counter_ns",
        "monotonic",
        "monotonic_ns",
        "process_time",
        "process_time_ns",
    },
}

#: Annotation identifiers FPR001 accepts without further analysis.
FINGERPRINT_SAFE_NAMES = frozenset(
    {
        "int",
        "float",
        "str",
        "bool",
        "bytes",
        "None",
        "object",
        "Any",
        "Optional",
        "Union",
        "Tuple",
        "tuple",
        "List",
        "list",
        "Dict",
        "dict",
        "Sequence",
        "Mapping",
        "Iterable",
        "ClassVar",
    }
)
#: Unordered container types that must never appear in a fingerprinted
#: field annotation — their iteration order would leak into the hash.
FINGERPRINT_UNORDERED_TYPES = frozenset({"set", "Set", "frozenset", "FrozenSet"})


def _finding(
    rule: "Rule", module: ParsedModule, node: ast.AST, message: str
) -> Finding:
    return Finding(
        rule.name,
        module.display_path,
        getattr(node, "lineno", 1),
        getattr(node, "col_offset", 0) + 1,
        message,
        severity=rule.severity,
    )


@register_rule
class ModuleLevelRandomRule(Rule):
    """RNG001: ban the process-global ``random`` module's entropy."""

    name = "RNG001"
    summary = "no module-level random.* calls; thread RandomSource streams instead"
    rationale = (
        "The module-level random functions share one hidden global state: any "
        "draw from them couples every subsystem to every other and to import "
        "order, destroying replayability.  Only random.Random instances handed "
        "out by RandomSource.stream() are allowed (importing random for the "
        "random.Random type is fine)."
    )

    def check_module(self, module: ParsedModule) -> Iterable[Finding]:
        """Flag module-import and call misuse of the global ``random`` module."""
        findings: List[Finding] = []
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Call):
                name = dotted_name(node.func)
                if (
                    name is not None
                    and name.startswith("random.")
                    and name != "random.Random"
                ):
                    findings.append(
                        _finding(
                            self,
                            module,
                            node,
                            f"call to module-level {name}() — draw from a named "
                            "RandomSource stream instead",
                        )
                    )
            elif isinstance(node, ast.ImportFrom) and node.module == "random":
                banned = [a.name for a in node.names if a.name != "Random"]
                if banned:
                    findings.append(
                        _finding(
                            self,
                            module,
                            node,
                            "from-import of module-level random state "
                            f"({', '.join(banned)}) — import random and use "
                            "random.Random via RandomSource",
                        )
                    )
        return findings


@register_rule
class ExplicitStreamRule(Rule):
    """RNG002: RandomSource draws must name their stream."""

    name = "RNG002"
    summary = "every RandomSource draw passes an explicit stream= name"
    rationale = (
        "A draw that falls back to the 'default' stream silently couples "
        "unrelated subsystems through one sequence: adding a draw in one "
        "place perturbs every other default-stream consumer.  Naming the "
        "stream at the call site keeps subsystems independent and makes the "
        "coupling reviewable.  Receivers are inferred syntactically: names "
        "bound from RandomSource(...)/.spawn(...), parameters annotated "
        "RandomSource, identifiers named rng/_rng (or attributes ending in "
        "them), plus the RandomSource-only method names."
    )

    def check_module(self, module: ParsedModule) -> Iterable[Finding]:
        """Flag RandomSource draws that omit an explicit ``stream=``."""
        sources = self._random_source_names(module.tree)
        findings: List[Finding] = []
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if not isinstance(func, ast.Attribute) or func.attr not in RANDOM_SOURCE_DRAWS:
                continue
            if any(kw.arg == "stream" for kw in node.keywords):
                continue
            receiver = func.value
            if func.attr not in RANDOM_SOURCE_ONLY_DRAWS and not self._is_random_source(
                receiver, sources
            ):
                continue
            findings.append(
                _finding(
                    self,
                    module,
                    node,
                    f"RandomSource.{func.attr}() without an explicit stream= — "
                    "silent 'default' stream couples subsystems",
                )
            )
        return findings

    @staticmethod
    def _random_source_names(tree: ast.AST) -> Set[str]:
        """Identifiers bound to a RandomSource anywhere in the module."""
        names: Set[str] = set()
        for node in ast.walk(tree):
            if isinstance(node, ast.Assign) and isinstance(node.value, ast.Call):
                callee = dotted_name(node.value.func)
                if callee is not None and (
                    callee.endswith("RandomSource") or callee.endswith(".spawn")
                ):
                    for target in node.targets:
                        if isinstance(target, ast.Name):
                            names.add(target.id)
            elif isinstance(node, ast.arg):
                refs = annotation_names(node.annotation)
                if "RandomSource" in refs:
                    names.add(node.arg)
        return names

    @staticmethod
    def _is_random_source(receiver: ast.AST, sources: Set[str]) -> bool:
        name = dotted_name(receiver)
        if name is None:
            return False
        last = name.rsplit(".", 1)[-1]
        if last in RANDOM_SOURCE_NAMES:
            return True
        return "." not in name and name in sources


@register_rule
class BuiltinHashRule(Rule):
    """DET001: ban the salted builtin ``hash()``."""

    name = "DET001"
    summary = "no builtin hash() — it is salted per process"
    rationale = (
        "str/bytes hash() is randomized per interpreter process (PYTHONHASHSEED), "
        "so any seed, ordering or bucketing derived from it differs between "
        "runs and machines.  Seed derivation uses hashlib (see sim/rng.py); "
        "ordering uses explicit sort keys."
    )

    def check_module(self, module: ParsedModule) -> Iterable[Finding]:
        """Flag calls to the salted builtin ``hash()``."""
        findings: List[Finding] = []
        for node in ast.walk(module.tree):
            if (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Name)
                and node.func.id == "hash"
            ):
                findings.append(
                    _finding(
                        self,
                        module,
                        node,
                        "builtin hash() is salted per process — use hashlib for "
                        "seed derivation or an explicit sort key for ordering",
                    )
                )
        return findings


#: Method names treated as "consumes iteration order" by DET002: RNG
#: draws plus the engine scheduling API.
_ORDER_SENSITIVE_CALLS = frozenset(
    {"sample", "choice", "shuffled", "shuffle", "schedule", "schedule_at", "heappush"}
)
_DICT_VIEW_METHODS = frozenset({"keys", "values", "items"})


def _unordered_kind(node: ast.AST, tainted: Optional[Set[str]] = None) -> Optional[str]:
    """Why ``node`` evaluates to an unordered/fragile-order iterable.

    Returns a short description ("set(...)", "dict view .keys()", ...)
    or None.  ``sorted(...)`` wrapping makes anything ordered; a single
    ``list``/``tuple``/``iter`` wrapper is looked through because it
    preserves whatever order the inner expression has.  ``tainted``
    names are scope-local variables known to hold set values (see
    :meth:`UnorderedIterationRule._tainted_names`).
    """
    if isinstance(node, (ast.Set, ast.SetComp)):
        return "a set literal/comprehension"
    if tainted and isinstance(node, ast.Name) and node.id in tainted:
        return f"set-typed local {node.id!r}"
    if isinstance(node, ast.Call):
        callee = node.func
        if isinstance(callee, ast.Name):
            if callee.id in ("set", "frozenset"):
                return f"{callee.id}(...)"
            if callee.id in ("list", "tuple", "iter") and node.args:
                return _unordered_kind(node.args[0], tainted)
            return None
        if isinstance(callee, ast.Attribute) and callee.attr in _DICT_VIEW_METHODS:
            if not node.args and not node.keywords:
                return f"a dict view .{callee.attr}()"
    return None


@register_rule
class UnorderedIterationRule(Rule):
    """DET002: unordered iteration must not feed draws or scheduling."""

    name = "DET002"
    summary = "sorted() required between set/dict views and RNG draws or scheduling"
    rationale = (
        "Set iteration order depends on insertion history and string hashing; "
        "dict views are insertion-ordered but re-order under innocent "
        "refactors.  When such an iterable feeds an RNG draw (sample/choice/"
        "shuffled) or event scheduling, the replayed event sequence changes "
        "even though no seed did.  An intervening sorted() pins the order.  "
        "Checked shapes: the data argument of a draw call, and for-loops "
        "over an unordered expression whose body draws or schedules — "
        "including scope-local variables that are only ever assigned set "
        "values (simple flow-insensitive taint)."
    )

    def check_module(self, module: ParsedModule) -> Iterable[Finding]:
        """Flag unordered set/dict iteration feeding RNG draws or scheduling."""
        findings: List[Finding] = []
        scopes: List[ast.AST] = [module.tree]
        scopes.extend(
            node
            for node in ast.walk(module.tree)
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
        )
        for scope in scopes:
            tainted = self._tainted_names(scope)
            for node in self._scope_nodes(scope):
                if isinstance(node, ast.Call):
                    findings.extend(self._check_draw_argument(module, node, tainted))
                elif isinstance(node, (ast.For, ast.AsyncFor)):
                    findings.extend(self._check_for_loop(module, node, tainted))
        return findings

    @staticmethod
    def _scope_nodes(scope: ast.AST) -> Iterable[ast.AST]:
        """Every node of ``scope`` excluding nested function bodies."""
        stack = list(ast.iter_child_nodes(scope))
        while stack:
            node = stack.pop()
            yield node
            if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                stack.extend(ast.iter_child_nodes(node))

    @classmethod
    def _tainted_names(cls, scope: ast.AST) -> Set[str]:
        """Local names that can only hold set values in this scope.

        Conservative on purpose: any other binding of the name (a
        non-set assignment, a loop target, a function parameter, an
        augmented assignment) clears it, so only unambiguous
        "this is a set" locals are reported.
        """
        set_assigned: Set[str] = set()
        otherwise_bound: Set[str] = set()

        def note(target: ast.AST, unordered: bool) -> None:
            if isinstance(target, ast.Name):
                (set_assigned if unordered else otherwise_bound).add(target.id)
            else:
                for sub in ast.walk(target):
                    if isinstance(sub, ast.Name):
                        otherwise_bound.add(sub.id)

        for node in cls._scope_nodes(scope):
            if isinstance(node, ast.Assign):
                unordered = _unordered_kind(node.value) is not None
                for target in node.targets:
                    note(target, unordered)
            elif isinstance(node, ast.AnnAssign) and node.value is not None:
                note(node.target, _unordered_kind(node.value) is not None)
            elif isinstance(node, ast.AugAssign):
                note(node.target, False)
            elif isinstance(node, (ast.For, ast.AsyncFor)):
                note(node.target, False)
            elif isinstance(node, ast.arg):
                otherwise_bound.add(node.arg)
        return set_assigned - otherwise_bound

    def _check_draw_argument(
        self, module: ParsedModule, node: ast.Call, tainted: Set[str]
    ) -> Iterable[Finding]:
        func = node.func
        method = None
        if isinstance(func, ast.Attribute):
            method = func.attr
        elif isinstance(func, ast.Name):
            method = func.id
        if method not in ("sample", "choice", "shuffled", "shuffle"):
            return ()
        if not node.args:
            return ()
        kind = _unordered_kind(node.args[0], tainted)
        if kind is None:
            return ()
        return (
            _finding(
                self,
                module,
                node,
                f"{method}() over {kind} — wrap the iterable in sorted() so the "
                "draw sees a platform-stable order",
            ),
        )

    def _check_for_loop(
        self, module: ParsedModule, node: ast.stmt, tainted: Set[str]
    ) -> Iterable[Finding]:
        kind = _unordered_kind(node.iter, tainted)  # type: ignore[attr-defined]
        if kind is None:
            return ()
        for sub in ast.walk(node):
            if sub is node:
                continue
            if isinstance(sub, ast.Call):
                callee = sub.func
                name = (
                    callee.attr
                    if isinstance(callee, ast.Attribute)
                    else callee.id if isinstance(callee, ast.Name) else None
                )
                if name in _ORDER_SENSITIVE_CALLS:
                    return (
                        _finding(
                            self,
                            module,
                            node,
                            f"iteration over {kind} feeds {name}() inside the loop "
                            "— iterate sorted(...) so replay order is pinned",
                        ),
                    )
        return ()


@register_rule
class WallClockRule(Rule):
    """DET003: wall-clock reads only at annotated measurement sites."""

    name = "DET003"
    summary = "wall-clock (time.time / perf_counter / datetime.now) is banned"
    rationale = (
        "Simulated time comes from the event heap; any wall-clock read that "
        "leaks into model logic makes runs machine-dependent.  The only "
        "sanctioned uses are wall-time *measurement* (runner/simulation "
        "timing) and cache-orphan aging (orchestrator) — each carries an "
        "inline '# simlint: disable=DET003 -- ...' annotation, so the "
        "allowlist is visible in the code, not buried in lint config."
    )

    def check_module(self, module: ParsedModule) -> Iterable[Finding]:
        """Flag wall-clock reads outside the sanctioned allowlist."""
        findings: List[Finding] = []
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Call):
                name = dotted_name(node.func)
                if name in WALL_CLOCK_CALLS:
                    findings.append(
                        _finding(
                            self,
                            module,
                            node,
                            f"wall-clock call {name}() — simulation logic must "
                            "use engine time; annotate measurement sites inline",
                        )
                    )
            elif isinstance(node, ast.ImportFrom):
                banned = WALL_CLOCK_FROM_IMPORTS.get(node.module or "")
                if banned:
                    hits = [a.name for a in node.names if a.name in banned]
                    if hits:
                        findings.append(
                            _finding(
                                self,
                                module,
                                node,
                                f"from-import of wall-clock callable(s) "
                                f"{', '.join(hits)} — import the module and call "
                                "it at an annotated site",
                            )
                        )
        return findings


@register_rule
class RawHeappushRule(Rule):
    """SCH001: the engine heap is fed only via the seq-tie-break API."""

    name = "SCH001"
    summary = "no raw heapq.heappush — schedule via Engine.schedule/schedule_at"
    rationale = (
        "Engine ordering is the (time, seq) total order: equal-time events "
        "fire in scheduling order because schedule_at stamps a monotonically "
        "increasing sequence number.  A raw heappush bypasses the stamp and "
        "makes equal-time ordering fall back to whatever the pushed payload "
        "happens to compare as — a silent replay hazard.  heapify/heappop "
        "over locally built lists (e.g. service disciplines) are fine; only "
        "pushes are gated."
    )

    def check_module(self, module: ParsedModule) -> Iterable[Finding]:
        """Flag raw ``heapq.heappush`` outside the engine tie-break API."""
        findings: List[Finding] = []
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Call):
                name = dotted_name(node.func)
                if name is not None and (
                    name == "heapq.heappush" or name.rsplit(".", 1)[-1] == "heappush"
                ):
                    findings.append(
                        _finding(
                            self,
                            module,
                            node,
                            "raw heappush bypasses the engine's (time, seq) "
                            "tie-break — use Engine.schedule/schedule_at",
                        )
                    )
            elif isinstance(node, ast.ImportFrom) and node.module == "heapq":
                if any(a.name == "heappush" for a in node.names):
                    findings.append(
                        _finding(
                            self,
                            module,
                            node,
                            "from-import of heappush — push through the engine's "
                            "seq-tie-break API instead",
                        )
                    )
        return findings


@dataclass
class _DataclassInfo:
    """What FPR001 needs to know about one dataclass definition."""

    name: str
    module: ParsedModule
    lineno: int
    fields: List[Tuple[str, int, Set[str]]] = field(default_factory=list)
    to_dict_strings: Optional[Set[str]] = None  #: None = no custom to_dict


@register_rule
class FingerprintCoverageRule(Rule):
    """FPR001: config specs must be fully fingerprint-covered."""

    name = "FPR001"
    scope = "project"
    summary = "every spec dataclass reachable from SimulationConfig is fingerprinted"
    rationale = (
        "The experiment cache is keyed by a hash of SimulationConfig.to_dict(); "
        "a config knob that escapes the dict makes two different experiments "
        "share one cache entry — silently wrong results (the population field "
        "once did exactly this, hence CACHE_SCHEMA_VERSION).  The rule walks "
        "field annotations transitively from SimulationConfig, expanding "
        "module-level Union/tuple aliases, and requires every reachable type "
        "to be an analyzable dataclass whose fields all reach the dict: "
        "dataclasses.asdict covers everything automatically, but a class "
        "with a hand-written to_dict must mention every field name, and "
        "unordered containers (set/frozenset) may not appear in fingerprinted "
        "annotations at all.  An intentionally excluded field carries an "
        "inline suppression on its declaration line."
    )

    #: Class name the reachability walk starts from.
    ROOT_CLASS = "SimulationConfig"

    def __init__(self) -> None:
        self._dataclasses: Dict[str, _DataclassInfo] = {}
        self._plain_classes: Dict[str, Tuple[ParsedModule, int]] = {}
        self._aliases: Dict[str, Set[str]] = {}

    def check_module(self, module: ParsedModule) -> Iterable[Finding]:
        """Record spec dataclasses and fingerprint wiring in this module."""
        for node in module.tree.body:
            if isinstance(node, ast.ClassDef):
                self._collect_class(module, node)
            elif isinstance(node, ast.Assign) and len(node.targets) == 1:
                target = node.targets[0]
                if isinstance(target, ast.Name):
                    refs = annotation_names(node.value)
                    if refs:
                        self._aliases.setdefault(target.id, set()).update(refs)
        return ()

    def _collect_class(self, module: ParsedModule, node: ast.ClassDef) -> None:
        if not self._is_dataclass(node):
            self._plain_classes.setdefault(node.name, (module, node.lineno))
            return
        info = _DataclassInfo(node.name, module, node.lineno)
        for item in node.body:
            if isinstance(item, ast.AnnAssign) and isinstance(item.target, ast.Name):
                refs = annotation_names(item.annotation)
                if "ClassVar" in refs:
                    continue
                info.fields.append((item.target.id, item.lineno, refs))
            elif isinstance(item, ast.FunctionDef) and item.name == "to_dict":
                # A to_dict built on dataclasses.asdict covers every
                # field by construction; only hand-enumerated dicts
                # need per-field coverage checking.
                uses_asdict = any(
                    isinstance(sub, ast.Call)
                    and (dotted_name(sub.func) or "").rsplit(".", 1)[-1] == "asdict"
                    for sub in ast.walk(item)
                )
                if uses_asdict:
                    info.to_dict_strings = None
                    continue
                strings = {
                    sub.value
                    for sub in ast.walk(item)
                    if isinstance(sub, ast.Constant) and isinstance(sub.value, str)
                }
                info.to_dict_strings = strings
        self._dataclasses.setdefault(node.name, info)

    @staticmethod
    def _is_dataclass(node: ast.ClassDef) -> bool:
        for decorator in node.decorator_list:
            target = decorator.func if isinstance(decorator, ast.Call) else decorator
            name = dotted_name(target)
            if name in ("dataclass", "dataclasses.dataclass"):
                return True
        return False

    def finalize(self, project: Project) -> Iterable[Finding]:
        """Check every spec reachable from the root is fingerprint-covered."""
        if self.ROOT_CLASS not in self._dataclasses:
            return ()
        findings: List[Finding] = []
        seen: Set[str] = set()
        queue = [self.ROOT_CLASS]
        while queue:
            info = self._dataclasses[queue.pop()]
            if info.name in seen:
                continue
            seen.add(info.name)
            for field_name, lineno, refs in info.fields:
                if info.to_dict_strings is not None and field_name not in info.to_dict_strings:
                    findings.append(
                        Finding(
                            self.name,
                            info.module.display_path,
                            lineno,
                            1,
                            f"{info.name}.{field_name} is missing from the custom "
                            "to_dict() — the cache fingerprint cannot see it "
                            "(suppress on this line if the exclusion is intended)",
                        )
                    )
                findings.extend(self._check_refs(info, field_name, lineno, refs, queue))
        return findings

    def _check_refs(
        self,
        info: _DataclassInfo,
        field_name: str,
        lineno: int,
        refs: Set[str],
        queue: List[str],
    ) -> Iterable[Finding]:
        findings: List[Finding] = []
        expanded: Set[str] = set()
        pending = list(refs)
        while pending:
            ref = pending.pop()
            if ref in expanded:
                continue
            expanded.add(ref)
            if ref in self._aliases and ref not in self._dataclasses:
                pending.extend(self._aliases[ref])
                continue
            if ref in FINGERPRINT_UNORDERED_TYPES:
                findings.append(
                    Finding(
                        self.name,
                        info.module.display_path,
                        lineno,
                        1,
                        f"{info.name}.{field_name} is typed with unordered "
                        f"container {ref!r} — iteration order would leak into "
                        "the cache fingerprint",
                    )
                )
            elif ref in self._dataclasses:
                queue.append(ref)
            elif ref in self._plain_classes:
                findings.append(
                    Finding(
                        self.name,
                        info.module.display_path,
                        lineno,
                        1,
                        f"{info.name}.{field_name} references {ref}, which is "
                        "not a dataclass — dataclasses.asdict cannot fingerprint "
                        "its contents",
                    )
                )
            elif ref not in FINGERPRINT_SAFE_NAMES:
                findings.append(
                    Finding(
                        self.name,
                        info.module.display_path,
                        lineno,
                        1,
                        f"{info.name}.{field_name} references {ref}, which simlint "
                        "cannot resolve to a fingerprint-analyzable dataclass",
                    )
                )
        return findings
