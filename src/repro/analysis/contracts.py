"""The columnar hot-core contract rules (simlint v2).

PR 7's columnar core (``docs/PERFORMANCE.md``) rests on four
conventions that were previously prose plus equivalence tests.  These
rules machine-check them, using the project-wide call graph from
:mod:`repro.analysis.project` where per-event reachability matters:

========  =============================================================
HOT001    no record-dataclass / dict-per-event allocation inside
          hot-set functions of the five hot-path modules
          (``transfer`` / ``peer`` / ``strategy`` /
          ``exchange_manager`` / ``irq``)
NUM001    byte-identity reductions in ``metrics/aggregates.py`` and
          ``metrics/columnar.py``: no ``np.sum`` / ``math.fsum`` /
          method reductions; builtin ``sum`` must carry an explicit
          start (left-fold ``sum(values, 0.0)``)
MIR001    every store to a ``PeerStateTable``-mirrored ``Peer``
          attribute (online / behavior / policy / departed) pairs
          with a table write-through in the same function
VER001    methods of version-fingerprinted classes that mutate
          ``self`` containers in place must bump ``self.version``
========  =============================================================

Like the v1 pack the rules are syntactic; each documents the
receiver/shape heuristics it relies on, and deliberate exemptions are
sanctioned inline with ``# simlint: disable=RULE -- why``.
"""

from __future__ import annotations

import ast
import os
from typing import Dict, Iterable, List, Optional, Set, Tuple

from repro.analysis.framework import (
    Finding,
    ParsedModule,
    Project,
    Rule,
    dotted_name,
    register_rule,
)
from repro.analysis.project import (
    FunctionInfo,
    ProjectGraph,
    _own_body_nodes,
    project_graph,
)

#: File basenames whose hot-set functions HOT001 polices.  Matching on
#: the basename (not the repo path) keeps the rule testable on fixture
#: files in temp directories.
HOT_PATH_BASENAMES = frozenset(
    {"transfer.py", "peer.py", "strategy.py", "exchange_manager.py", "irq.py"}
)

#: Compat shims that allocate a record object per call; hot paths must
#: use the scalar ``add_*`` column API instead.
RECORD_COMPAT_CALLS = frozenset(
    {"record_session", "record_download", "record_strategy_epoch"}
)

#: File basenames under the NUM001 byte-identity contract.
NUMERIC_BASENAMES = frozenset({"aggregates.py", "columnar.py"})

#: Reduction attribute names banned on a numpy-module receiver.
NUMPY_REDUCTIONS = frozenset(
    {"sum", "nansum", "mean", "nanmean", "prod", "dot", "cumsum", "average"}
)

#: Peer attribute -> PeerStateTable write-through methods that keep the
#: columnar mirror in sync with that attribute.
MIRRORED_ATTRS: Dict[str, Tuple[str, ...]] = {
    "online": ("set_online", "register"),
    "behavior": ("set_shares", "register"),
    "policy": ("set_policy", "register"),
    "departed": ("set_departed", "register"),
}

#: In-place mutator method names VER001 watches on ``self`` containers.
CONTAINER_MUTATORS = frozenset(
    {
        "add",
        "append",
        "appendleft",
        "extend",
        "insert",
        "pop",
        "popitem",
        "popleft",
        "remove",
        "discard",
        "clear",
        "update",
        "setdefault",
    }
)


def _basename(module: ParsedModule) -> str:
    return os.path.basename(module.display_path)


def _finding(rule: Rule, module: ParsedModule, node: ast.AST, message: str) -> Finding:
    return Finding(
        rule.name,
        module.display_path,
        getattr(node, "lineno", 1),
        getattr(node, "col_offset", 0) + 1,
        message,
        severity=rule.severity,
    )


@register_rule
class HotPathAllocationRule(Rule):
    """HOT001: no per-event record/dict allocation on hot paths."""

    name = "HOT001"
    scope = "project"
    summary = (
        "no record-dataclass or dict allocation inside Engine-dispatch-"
        "reachable functions of the hot-path modules"
    )
    rationale = (
        "The columnar core exists because a 50k-peer run fires millions of "
        "events; one dict or record object per event is exactly the "
        "allocation profile it removed (docs/PERFORMANCE.md).  The hot set "
        "is computed from the project call graph: every function reachable "
        "from a callback handed to Engine.schedule/schedule_at (directly or "
        "through a callback= parameter such as PeriodicProcess's).  Within "
        "hot functions of transfer/peer/strategy/exchange_manager/irq the "
        "rule flags dict displays, dict() calls, dict comprehensions, "
        "*Record(...) constructions and the record_* compat shims.  Dunder "
        "methods (__init__ and friends) are exempt: they run per entity, "
        "not per event.  Deliberate small allocations carry an inline "
        "suppression explaining the amortization argument."
    )

    def finalize(self, project: Project) -> Iterable[Finding]:
        """Flag per-event allocations in hot functions of hot modules."""
        graph = project_graph(project)
        findings: List[Finding] = []
        for module in project.modules:
            if _basename(module) not in HOT_PATH_BASENAMES:
                continue
            for info in graph.functions_in(module):
                if not graph.is_hot(info.qname):
                    continue
                if info.bare.startswith("__") and info.bare.endswith("__"):
                    continue
                findings.extend(self._check_function(module, graph, info))
        return findings

    def _check_function(
        self,
        module: ParsedModule,
        graph: ProjectGraph,
        info: FunctionInfo,
    ) -> Iterable[Finding]:
        why = graph.hot_reason(info.qname)
        label = f"{info.cls}.{info.bare}" if info.cls else info.bare
        for node in _own_body_nodes(info.node):
            if isinstance(node, ast.Dict):
                yield _finding(
                    self,
                    module,
                    node,
                    f"dict allocated in hot function '{label}' ({why}); "
                    "hoist it or use the columnar scalar API",
                )
            elif isinstance(node, ast.DictComp):
                yield _finding(
                    self,
                    module,
                    node,
                    f"dict comprehension in hot function '{label}' ({why}); "
                    "hoist it or use the columnar scalar API",
                )
            elif isinstance(node, ast.Call):
                callee = dotted_name(node.func)
                final = callee.rsplit(".", 1)[-1] if callee else None
                if final == "dict":
                    yield _finding(
                        self,
                        module,
                        node,
                        f"dict() allocated in hot function '{label}' ({why}); "
                        "hoist it or use the columnar scalar API",
                    )
                elif final is not None and (
                    final in RECORD_COMPAT_CALLS
                    or (final.endswith("Record") and final[0].isupper())
                ):
                    yield _finding(
                        self,
                        module,
                        node,
                        f"per-event record object ('{final}') in hot function "
                        f"'{label}' ({why}); pass scalars to the columnar "
                        "add_* API instead",
                    )


@register_rule
class NumericReductionRule(Rule):
    """NUM001: byte-identity reductions in the metrics columns."""

    name = "NUM001"
    summary = (
        "metrics reductions must be sequential left-folds sum(values, 0.0) "
        "— np.sum/math.fsum/method reductions are banned"
    )
    rationale = (
        "The columnar backend's equivalence contract is byte-identity with "
        "the per-record reference implementation, and float addition is not "
        "associative: np.sum's pairwise reduction and math.fsum's exact "
        "summation both round differently from the left-fold the record "
        "path performs.  In metrics/aggregates.py and metrics/columnar.py "
        "the rule bans numpy/math reduction calls and ndarray .sum() "
        "methods, and requires builtin sum() to pass an explicit start "
        "(sum(values, 0.0)) so the fold order is spelled out.  Integer "
        "tallies where rounding cannot occur may be suppressed inline with "
        "that argument."
    )

    def check_module(self, module: ParsedModule) -> Iterable[Finding]:
        """Flag reordered reductions in the metrics modules."""
        if _basename(module) not in NUMERIC_BASENAMES:
            return
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            callee = dotted_name(node.func)
            if callee is not None and "." in callee:
                receiver, final = callee.rsplit(".", 1)
                if receiver in ("np", "numpy") and final in NUMPY_REDUCTIONS:
                    yield _finding(
                        self,
                        module,
                        node,
                        f"{callee}() reorders the reduction; use the "
                        "sequential left-fold sum(values, 0.0) over a "
                        "record-order extraction",
                    )
                    continue
                if callee in ("math.fsum", "fsum"):
                    yield _finding(
                        self,
                        module,
                        node,
                        "math.fsum() rounds differently from the record "
                        "path's left-fold; use sum(values, 0.0)",
                    )
                    continue
            if isinstance(node.func, ast.Attribute) and node.func.attr == "sum":
                receiver_name = dotted_name(node.func.value)
                if receiver_name not in ("np", "numpy", "math", "builtins"):
                    yield _finding(
                        self,
                        module,
                        node,
                        ".sum() method reductions are pairwise on ndarrays; "
                        "use the sequential left-fold sum(values, 0.0)",
                    )
                continue
            if (
                isinstance(node.func, ast.Name)
                and node.func.id == "sum"
                and len(node.args) < 2
                and not node.keywords
            ):
                yield _finding(
                    self,
                    module,
                    node,
                    "builtin sum() without an explicit start hides the fold "
                    "order; write sum(values, 0.0) (or 0 for int tallies)",
                )


def _attr_store_targets(node: ast.AST) -> List[ast.Attribute]:
    """Plain attribute targets of an assignment-like statement."""
    targets: List[ast.AST] = []
    if isinstance(node, ast.Assign):
        targets = list(node.targets)
    elif isinstance(node, (ast.AugAssign, ast.AnnAssign)):
        targets = [node.target]
    out: List[ast.Attribute] = []
    for target in targets:
        if isinstance(target, ast.Tuple):
            out.extend(e for e in target.elts if isinstance(e, ast.Attribute))
        elif isinstance(target, ast.Attribute):
            out.append(target)
    return out


@register_rule
class MirrorWriteThroughRule(Rule):
    """MIR001: mirrored Peer attribute stores write through to the table."""

    name = "MIR001"
    summary = (
        "stores to PeerStateTable-mirrored attributes (online/behavior/"
        "policy/departed) must pair with the table write-through in the "
        "same function"
    )
    rationale = (
        "PeerStateTable is a mirror, never the source of truth: Peer "
        "objects own online/behavior/policy/departed and push every change "
        "through set_online/set_shares/set_policy/set_departed (or the "
        "initial register).  A store without the write-through leaves the "
        "vectorized scans reading stale columns — exactly the bug class "
        "the mirror's 'one write behind nothing' guarantee excludes "
        "(docs/PERFORMANCE.md).  The rule is name-based: any attribute "
        "store named like a mirrored attribute, on any receiver, must "
        "co-occur with a call to one of its write-through methods; "
        "register(...) only counts on a receiver path mentioning "
        "'peer_table'.  The table's own column initialization is exempt "
        "(class PeerStateTable)."
    )

    def check_module(self, module: ParsedModule) -> Iterable[Finding]:
        """Flag mirrored-attribute stores lacking a write-through."""
        findings: List[Finding] = []

        def visit(node: ast.AST, in_table: bool) -> None:
            for item in getattr(node, "body", []):
                if isinstance(item, ast.ClassDef):
                    visit(item, in_table or item.name == "PeerStateTable")
                elif isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    if not in_table:
                        findings.extend(self._check_function(module, item))
                    visit(item, in_table)

        visit(module.tree, False)
        return findings

    def _check_function(
        self, module: ParsedModule, func: ast.AST
    ) -> Iterable[Finding]:
        stores: List[Tuple[ast.Attribute, str]] = []
        called: Set[str] = set()
        register_ok = False
        for node in _own_body_nodes(func):
            for target in _attr_store_targets(node):
                if target.attr in MIRRORED_ATTRS:
                    stores.append((target, target.attr))
            if isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute):
                called.add(node.func.attr)
                if node.func.attr == "register":
                    receiver = dotted_name(node.func.value) or ""
                    if "peer_table" in receiver:
                        register_ok = True
        for target, attr in stores:
            accepted = MIRRORED_ATTRS[attr]
            satisfied = any(
                method in called for method in accepted if method != "register"
            ) or ("register" in accepted and register_ok)
            if not satisfied:
                writers = "/".join(m for m in accepted if m != "register")
                yield _finding(
                    self,
                    module,
                    target,
                    f"store to mirrored attribute '{attr}' without a "
                    f"PeerStateTable write-through ({writers} or "
                    "peer_table.register) in the same function — the "
                    "columnar mirror would go stale",
                )


@register_rule
class VersionBumpRule(Rule):
    """VER001: versioned containers bump on every in-place mutation path."""

    name = "VER001"
    summary = (
        "methods of version-fingerprinted classes that mutate self "
        "containers in place must bump self.version"
    )
    rationale = (
        "The bitset mask caches (and the idle-search gate before them) key "
        "off version fingerprints: LookupService per-object versions, "
        "IncomingRequestQueue.version, PeerStateTable.version.  A mutation "
        "that skips the bump makes a cached mask stale while its key still "
        "matches — the 'structurally impossible' case PERFORMANCE.md "
        "relies on.  The rule applies to any class whose __init__ assigns "
        "self.version; in its other methods, subscript stores/deletes on "
        "self attributes and in-place mutator calls (append/add/pop/...) "
        "rooted at self require a self.version bump somewhere in the same "
        "method.  Rebinding a whole attribute is not counted (the "
        "compaction idiom builds a fresh equal-content object), and "
        "version-keyed cache attributes are sanctioned inline where they "
        "are written."
    )

    def check_module(self, module: ParsedModule) -> Iterable[Finding]:
        """Flag unbumped in-place mutations in versioned classes."""
        findings: List[Finding] = []
        for node in ast.walk(module.tree):
            if isinstance(node, ast.ClassDef) and self._is_versioned(node):
                findings.extend(self._check_class(module, node))
        return findings

    @staticmethod
    def _is_versioned(cls: ast.ClassDef) -> bool:
        for item in cls.body:
            if (
                isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef))
                and item.name == "__init__"
            ):
                for node in ast.walk(item):
                    for target in _attr_store_targets(node):
                        if (
                            target.attr == "version"
                            and isinstance(target.value, ast.Name)
                            and target.value.id == "self"
                        ):
                            return True
        return False

    def _check_class(
        self, module: ParsedModule, cls: ast.ClassDef
    ) -> Iterable[Finding]:
        for item in cls.body:
            if not isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            if item.name == "__init__":
                continue
            mutations = list(self._self_mutations(item))
            if mutations and not self._bumps_version(item):
                for node, attr in mutations:
                    yield _finding(
                        self,
                        module,
                        node,
                        f"in-place mutation of self.{attr} in "
                        f"'{cls.name}.{item.name}' without a self.version "
                        "bump — version-keyed mask caches would serve "
                        "stale entries",
                    )

    @staticmethod
    def _self_attr_root(node: ast.AST) -> Optional[str]:
        """``self.X`` root attribute under Subscript/Call/Attribute layers."""
        while True:
            if isinstance(node, ast.Subscript):
                node = node.value
            elif isinstance(node, ast.Call):
                node = node.func
            elif isinstance(node, ast.Attribute):
                if isinstance(node.value, ast.Name) and node.value.id == "self":
                    return node.attr
                node = node.value
            else:
                return None

    def _self_mutations(
        self, func: ast.AST
    ) -> Iterable[Tuple[ast.AST, str]]:
        for node in _own_body_nodes(func):
            if isinstance(node, (ast.Assign, ast.AugAssign, ast.AnnAssign)):
                targets = (
                    node.targets
                    if isinstance(node, ast.Assign)
                    else [node.target]
                )
                for target in targets:
                    if isinstance(target, ast.Subscript):
                        attr = self._self_attr_root(target.value)
                        if attr is not None and attr != "version":
                            yield target, attr
            elif isinstance(node, ast.Delete):
                for target in node.targets:
                    if isinstance(target, ast.Subscript):
                        attr = self._self_attr_root(target.value)
                        if attr is not None:
                            yield target, attr
            elif isinstance(node, ast.Call):
                if (
                    isinstance(node.func, ast.Attribute)
                    and node.func.attr in CONTAINER_MUTATORS
                ):
                    attr = self._self_attr_root(node.func.value)
                    if attr is not None:
                        yield node, attr

    @staticmethod
    def _bumps_version(func: ast.AST) -> bool:
        for node in _own_body_nodes(func):
            for target in _attr_store_targets(node):
                if (
                    target.attr == "version"
                    and isinstance(target.value, ast.Name)
                    and target.value.id == "self"
                ):
                    return True
        return False
