"""Project-wide import & call-graph analysis for the hot-core rules.

Where :mod:`repro.analysis.rules` inspects one AST at a time, the
contract rules of :mod:`repro.analysis.contracts` need to know *which
functions run per simulated event*.  This module derives that from the
whole parsed project:

1. **Import graph** — for every module, the repo-internal modules it
   imports (``import repro.x`` / ``from repro.x import y``, plus
   single-level relative imports).  Bare-name call resolution only
   looks at a module's own definitions and its imports, so an
   unimported helper never produces a phantom edge.
2. **Approximate call graph** — name-based resolution, no type
   inference: ``self.meth(...)`` binds to the enclosing class when it
   defines ``meth`` and otherwise to every project method of that
   name; ``obj.meth(...)`` binds to every project method named
   ``meth``; ``Cls(...)`` binds to ``Cls.__init__``.  Methods that
   only exist on stdlib/numpy objects are not in the index and
   resolve to nothing, which keeps the over-approximation small.
   A nested ``def`` gets an edge from its encloser (closures are
   invoked later, from wherever the encloser escaped them to), and
   calls inside ``lambda`` bodies belong to the enclosing function.
3. **Hot set** — everything reachable from ``Engine``'s event
   dispatch.  Every callback only enters the dispatch loop through a
   ``callback`` parameter (``Engine.schedule`` / ``schedule_at``,
   ``Event``, ``PeriodicProcess``), so the seeds are: any function
   reference bound to a parameter named ``callback`` of a resolvable
   project callee, plus — as a fallback for unresolvable receivers —
   the second positional argument of any ``*.schedule(...)`` /
   ``*.schedule_at(...)`` call.  A ``lambda`` seed contributes the
   project functions its body calls.  The hot set is the transitive
   closure of the seeds over the call graph; each hot function
   remembers the seed it was reached from so findings can explain
   *why* a function is considered hot.

The graph is deliberately flow- and type-insensitive: it may include
functions that never actually run per event (over-approximation), and
it can miss calls made through containers of callables other than the
``callback`` convention (under-approximation).  Both limits are
acceptable for lint: false positives are sanctioned inline with a
reasoned suppression, and the conventions the rules guard are exactly
the ones the codebase already follows.
"""

from __future__ import annotations

import ast
import os
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Sequence, Set, Tuple

from repro.analysis.framework import ParsedModule, Project

#: Callee attribute names whose second positional argument is treated
#: as a scheduled callback even when the receiver cannot be resolved
#: (``engine.schedule(delay, cb)`` on an untyped ``engine``).
SCHEDULE_CALLEES = frozenset({"schedule", "schedule_at"})

#: The parameter-name convention that marks a dispatched callback.
CALLBACK_PARAM = "callback"

_GRAPH_CACHE_KEY = "repro.analysis.project:graph"


@dataclass(frozen=True)
class FunctionInfo:
    """One function or method definition in the project."""

    qname: str  #: ``modname:Class.method`` / ``modname:func``
    modname: str
    display_path: str
    bare: str  #: unqualified name (``method``)
    cls: Optional[str]  #: enclosing class name, if any
    node: ast.AST  #: the FunctionDef / AsyncFunctionDef
    params: Tuple[str, ...]  #: positional parameter names, incl. self


def module_name(display_path: str) -> str:
    """Dotted module name for a display path.

    ``src/repro/network/peer.py`` maps to ``repro.network.peer``; a
    path without a ``src`` component (test fixtures in temp dirs) maps
    to its bare stem, and ``__init__.py`` maps to its package.
    """
    parts = display_path.split("/")
    if "src" in parts:
        # rindex: a temp dir could itself contain a 'src' component.
        parts = parts[len(parts) - 1 - parts[::-1].index("src"):][1:]
    else:
        parts = parts[-1:]
    if not parts:
        return os.path.splitext(os.path.basename(display_path))[0]
    parts = list(parts)
    parts[-1] = os.path.splitext(parts[-1])[0]
    if parts[-1] == "__init__":
        parts = parts[:-1]
    return ".".join(parts) or os.path.splitext(os.path.basename(display_path))[0]


def _own_body_nodes(func: ast.AST) -> Iterator[ast.AST]:
    """Every node of a function's own body, skipping nested defs.

    Lambda bodies *are* walked (they execute as part of the enclosing
    function's logic once invoked); nested ``def``/``class`` bodies are
    not — they are separate call-graph nodes.
    """
    body = getattr(func, "body", [])
    stack: List[ast.AST] = list(body)
    while stack:
        node = stack.pop()
        yield node
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            continue
        stack.extend(ast.iter_child_nodes(node))


@dataclass
class _ModuleScope:
    """Per-module name-resolution context."""

    modname: str
    #: local name -> imported module dotted name (``import a.b as c``)
    module_aliases: Dict[str, str] = field(default_factory=dict)
    #: local name -> (source module, object name) (``from a import b``)
    object_imports: Dict[str, Tuple[str, str]] = field(default_factory=dict)


class ProjectGraph:
    """Import graph, approximate call graph, and the derived hot set."""

    def __init__(self) -> None:
        #: qname -> definition
        self.functions: Dict[str, FunctionInfo] = {}
        #: modname -> project-internal imported modnames
        self.imports: Dict[str, Set[str]] = {}
        #: caller qname -> callee qnames
        self.calls: Dict[str, Set[str]] = {}
        #: hot qname -> qname of the scheduled-callback seed it was
        #: reached from (a seed maps to itself)
        self.hot: Dict[str, str] = {}
        # indexes (internal)
        self._toplevel: Dict[Tuple[str, str], str] = {}  # (mod, name) -> qname
        self._methods: Dict[str, Set[str]] = {}  # bare method name -> qnames
        self._classes: Dict[Tuple[str, str], Dict[str, str]] = {}
        self._class_names: Dict[str, Set[Tuple[str, str]]] = {}
        self._scopes: Dict[str, _ModuleScope] = {}

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def is_hot(self, qname: str) -> bool:
        """Whether ``qname`` is in the Engine-dispatch-reachable set."""
        return qname in self.hot

    def hot_reason(self, qname: str) -> str:
        """Human-readable provenance for a hot function."""
        seed = self.hot.get(qname, qname)
        if seed == qname:
            return "scheduled as an Engine callback"
        return f"reachable from scheduled callback '{seed}'"

    def functions_in(self, module: ParsedModule) -> List[FunctionInfo]:
        """Every function defined in ``module``, in qname order."""
        return sorted(
            (
                info
                for info in self.functions.values()
                if info.display_path == module.display_path
            ),
            key=lambda info: info.qname,
        )


def project_graph(project: Project) -> ProjectGraph:
    """Build (or reuse) the call graph for this lint run's project."""
    cached = project.cache.get(_GRAPH_CACHE_KEY)
    if isinstance(cached, ProjectGraph):
        return cached
    graph = _build(project.modules)
    project.cache[_GRAPH_CACHE_KEY] = graph
    return graph


# ----------------------------------------------------------------------
# construction
# ----------------------------------------------------------------------
def _build(modules: Sequence[ParsedModule]) -> ProjectGraph:
    graph = ProjectGraph()
    for module in modules:
        _collect_definitions(graph, module)
    for module in modules:
        _collect_imports(graph, module)
    seeds: Dict[str, str] = {}
    for module in modules:
        _collect_edges_and_seeds(graph, module, seeds)
    _close_hot_set(graph, seeds)
    return graph


def _collect_definitions(graph: ProjectGraph, module: ParsedModule) -> None:
    modname = module_name(module.display_path)
    graph._scopes.setdefault(modname, _ModuleScope(modname))

    def visit(node: ast.AST, prefix: str, cls: Optional[str]) -> None:
        for item in getattr(node, "body", []):
            if isinstance(item, ast.ClassDef):
                graph._classes.setdefault((modname, item.name), {})
                graph._class_names.setdefault(item.name, set()).add(
                    (modname, item.name)
                )
                visit(item, prefix=f"{prefix}{item.name}.", cls=item.name)
            elif isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
                qname = f"{modname}:{prefix}{item.name}"
                params = tuple(arg.arg for arg in item.args.args)
                info = FunctionInfo(
                    qname=qname,
                    modname=modname,
                    display_path=module.display_path,
                    bare=item.name,
                    cls=cls,
                    node=item,
                    params=params,
                )
                graph.functions[qname] = info
                if cls is None and prefix == "":
                    graph._toplevel[(modname, item.name)] = qname
                if cls is not None:
                    graph._methods.setdefault(item.name, set()).add(qname)
                    graph._classes[(modname, cls)][item.name] = qname
                # Nested defs: separate nodes, edge added by the edge pass.
                visit(item, prefix=f"{prefix}{item.name}.", cls=cls)

    visit(module.tree, prefix="", cls=None)


def _collect_imports(graph: ProjectGraph, module: ParsedModule) -> None:
    modname = module_name(module.display_path)
    scope = graph._scopes[modname]
    imported: Set[str] = set()
    package = modname.rsplit(".", 1)[0] if "." in modname else ""
    for node in ast.walk(module.tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                local = alias.asname or alias.name.split(".")[0]
                scope.module_aliases[local] = (
                    alias.name if alias.asname else alias.name.split(".")[0]
                )
                imported.add(alias.name)
        elif isinstance(node, ast.ImportFrom):
            source = node.module or ""
            if node.level:
                source = f"{package}.{source}" if source else package
            if not source:
                continue
            imported.add(source)
            for alias in node.names:
                local = alias.asname or alias.name
                scope.object_imports[local] = (source, alias.name)
                # ``from pkg import mod`` imports a module, not an object;
                # the ``known`` filter below keeps only real project modules.
                imported.add(f"{source}.{alias.name}")
    known = {info.modname for info in graph.functions.values()}
    graph.imports[modname] = {name for name in imported if name in known}


def _collect_edges_and_seeds(
    graph: ProjectGraph, module: ParsedModule, seeds: Dict[str, str]
) -> None:
    modname = module_name(module.display_path)
    for info in graph.functions_in(module):
        callees: Set[str] = graph.calls.setdefault(info.qname, set())
        # Closures: the encloser can hand any nested def to the engine.
        node = info.node
        for item in ast.walk(node):
            if item is node:
                continue
            if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
                parent_prefix = info.qname
                # Only direct or transitive nested defs of this function
                # are rooted under its qname.
                nested = f"{parent_prefix}.{item.name}"
                if nested in graph.functions:
                    callees.add(nested)
        for item in _own_body_nodes(node):
            if not isinstance(item, ast.Call):
                continue
            targets = _resolve_call(graph, modname, info, item.func)
            callees.update(targets)
            _seed_callbacks(graph, modname, info, item, targets, seeds)


def _resolve_call(
    graph: ProjectGraph,
    modname: str,
    caller: FunctionInfo,
    func: ast.AST,
) -> Set[str]:
    """Approximate targets of a call/reference expression."""
    targets: Set[str] = set()
    if isinstance(func, ast.Name):
        name = func.id
        # Local class constructor?
        ctor = _constructor(graph, modname, name)
        if ctor is not None:
            targets.add(ctor)
            return targets
        qname = graph._toplevel.get((modname, name))
        if qname is not None:
            targets.add(qname)
            return targets
        scope = graph._scopes.get(modname)
        if scope is not None and name in scope.object_imports:
            source, obj = scope.object_imports[name]
            ctor = _constructor(graph, source, obj)
            if ctor is not None:
                targets.add(ctor)
                return targets
            qname = graph._toplevel.get((source, obj))
            if qname is not None:
                targets.add(qname)
        return targets
    if isinstance(func, ast.Attribute):
        attr = func.attr
        receiver = func.value
        # self.meth: prefer the enclosing class's own method.
        if (
            isinstance(receiver, ast.Name)
            and receiver.id == "self"
            and caller.cls is not None
        ):
            own = graph._classes.get((modname, caller.cls), {}).get(attr)
            if own is not None:
                targets.add(own)
                return targets
        # module alias call: imported_mod.func(...) — both ``import a.b
        # as c`` and ``from a import b`` (where ``b`` is a module) bind
        # a module object to a local name.
        if isinstance(receiver, ast.Name):
            scope = graph._scopes.get(modname)
            sources: List[str] = []
            if scope is not None and receiver.id in scope.module_aliases:
                sources.append(scope.module_aliases[receiver.id])
            if scope is not None and receiver.id in scope.object_imports:
                package, obj = scope.object_imports[receiver.id]
                sources.append(f"{package}.{obj}")
            for source in sources:
                qname = graph._toplevel.get((source, attr))
                if qname is not None:
                    targets.add(qname)
                    return targets
                ctor = _constructor(graph, source, attr)
                if ctor is not None:
                    targets.add(ctor)
                    return targets
        # Any project method of that name (approximate).
        targets.update(graph._methods.get(attr, ()))
    return targets


def _constructor(graph: ProjectGraph, modname: str, cls: str) -> Optional[str]:
    methods = graph._classes.get((modname, cls))
    if methods is None:
        return None
    return methods.get("__init__")


def _callable_params(graph: ProjectGraph, qname: str) -> Tuple[Tuple[str, ...], bool]:
    """Positional params of a callee and whether the first is bound."""
    info = graph.functions[qname]
    bound = info.cls is not None  # methods & constructors drop self
    return info.params, bound


def _seed_callbacks(
    graph: ProjectGraph,
    modname: str,
    caller: FunctionInfo,
    call: ast.Call,
    targets: Set[str],
    seeds: Dict[str, str],
) -> None:
    """Record arguments bound to a ``callback`` parameter as hot seeds."""
    callback_args: List[ast.AST] = []
    for qname in targets:
        params, bound = _callable_params(graph, qname)
        positional = params[1:] if bound and params else params
        if CALLBACK_PARAM not in positional:
            continue
        index = positional.index(CALLBACK_PARAM)
        if index < len(call.args):
            callback_args.append(call.args[index])
    if not callback_args and isinstance(call.func, ast.Attribute):
        # Unresolvable receiver (engine of unknown type): fall back to
        # the Engine.schedule/schedule_at positional convention.
        if call.func.attr in SCHEDULE_CALLEES and len(call.args) >= 2:
            callback_args.append(call.args[1])
    for keyword in call.keywords:
        if keyword.arg == CALLBACK_PARAM:
            callback_args.append(keyword.value)
    for arg in callback_args:
        for target in _callback_targets(graph, modname, caller, arg):
            seeds.setdefault(target, target)


def _callback_targets(
    graph: ProjectGraph,
    modname: str,
    caller: FunctionInfo,
    expr: ast.AST,
) -> Set[str]:
    """Project functions a callback expression can invoke at dispatch."""
    if isinstance(expr, ast.Lambda):
        targets: Set[str] = set()
        for node in ast.walk(expr.body):
            if isinstance(node, ast.Call):
                targets.update(_resolve_call(graph, modname, caller, node.func))
        return targets
    if isinstance(expr, (ast.Name, ast.Attribute)):
        return _resolve_call(graph, modname, caller, expr)
    return set()


def _close_hot_set(graph: ProjectGraph, seeds: Dict[str, str]) -> None:
    pending = [(qname, seed) for qname, seed in sorted(seeds.items())]
    while pending:
        qname, seed = pending.pop()
        if qname in graph.hot:
            continue
        graph.hot[qname] = seed
        for callee in sorted(graph.calls.get(qname, ())):
            if callee not in graph.hot:
                pending.append((callee, seed))
