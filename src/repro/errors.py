"""Exception hierarchy for the :mod:`repro` package.

All exceptions raised intentionally by the library derive from
:class:`ReproError`, so callers can catch a single base class.  Each
subsystem raises the most specific subclass that applies; error messages
always name the offending entity (peer, object, parameter) to make
simulation failures debuggable.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class ConfigError(ReproError):
    """A :class:`~repro.config.SimulationConfig` value is invalid.

    Raised eagerly at configuration-validation time, never in the middle
    of a run, so that a bad sweep fails before burning simulation time.
    """


class SimulationError(ReproError):
    """The simulation engine was used incorrectly.

    Examples: scheduling an event in the past, stepping a finished
    engine, or re-running a simulation object that already ran.
    """


class SchedulingError(SimulationError):
    """An event was scheduled at a time earlier than the current clock."""


class CapacityError(ReproError):
    """A slot pool was asked to exceed its configured capacity."""


class StorageError(ReproError):
    """Invalid operation on a peer's object store.

    Examples: storing a duplicate object, evicting a pinned object, or
    unpinning an object that was never pinned.
    """


class LookupError_(ReproError):
    """Object lookup failed in a way that indicates a programming error.

    Named with a trailing underscore to avoid shadowing the builtin
    :class:`LookupError`.
    """


class ProtocolError(ReproError):
    """A protocol invariant was violated (requests, rings, tokens)."""


class RingError(ProtocolError):
    """An exchange ring is malformed or was manipulated illegally."""


class TokenValidationFailed(ProtocolError):
    """A ring-initiation token pass failed validation.

    Carries the reason so callers (and tests) can distinguish between
    stale ownership, vanished interest, missing capacity and offline
    members.
    """

    def __init__(self, reason: str, peer_id: int = -1) -> None:
        self.reason = reason
        self.peer_id = peer_id
        if peer_id >= 0:
            message = f"ring validation failed at peer {peer_id}: {reason}"
        else:
            message = f"ring validation failed: {reason}"
        super().__init__(message)


class MetricsError(ReproError):
    """Metrics were queried in an inconsistent way (e.g. empty CDF)."""
