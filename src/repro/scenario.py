"""Scenario timelines: open-system dynamics on top of a built world.

The paper simulates a *closed* system — every peer is present from t=0,
the catalog never changes, and one stationary workload runs until the
clock stops.  Its §V discussion points beyond that world ("transient
peer participation", demand shifts), and the related work makes the
open-system questions concrete: Salek et al. ("You Share, I Share")
study how sharing incentives interact with network effects *as the
population grows*, and Mishra's mobile-P2P incentive survey centres on
transient peers that arrive and leave mid-run.  A scenario timeline
makes those regimes expressible declaratively.

A scenario is a tuple of timed events on
:attr:`~repro.config.SimulationConfig.scenario`; the
:class:`ScenarioDirector` schedules them on the engine at build time and
applies each one when the clock reaches it.  Event types, and the
motivation each models:

* :class:`Phase` — a named phase marker.  Metrics records completed from
  this instant on carry the phase label, and
  :func:`~repro.metrics.summary.summarize` slices per phase, so one run
  yields before/after comparisons without re-running.
* :class:`PeerArrival` — ``count`` new peers join as an existing
  population class (``class_name``) or as an inline
  :class:`~repro.population.PeerClassSpec` (``spec``), bootstrap
  interests and initial placement, and start their workloads (the
  swarm-growth / network-effects regime of Salek et al.).
* :class:`PeerDeparture` — ``count`` peers leave *permanently*: the
  churn teardown path runs once and the peer never returns (Mishra's
  transient participation, as opposed to churn's round-trips).
* :class:`FlashCrowd` — ``count`` new hot objects enter the catalog at
  the top popularity rank of one category, ``seed_providers`` sharers
  receive a copy, and ``attract_fraction`` of the population adds the
  category to its interests (the demand-shock regime the paper's fixed
  library cannot express).
* :class:`DemandShift` — a fraction of peers re-draws its interest
  profile from the global category popularity (a slow demand migration
  rather than a shock).
* :class:`MechanismRamp` — every peer of a class flips to a new
  exchange mechanism (staged adoption: what happens when the fifo
  holdouts turn on n-way exchanges at time t).
* :class:`CapacityChange` — every peer of a class is re-provisioned to
  new link capacities (an access-network upgrade or degradation).
* :class:`StrategyShock` — perturb the adaptive strategy dynamics of
  :mod:`repro.strategy`: forcibly flip a fraction of the revising peers
  and/or bias the perceived sharing payoff for a while (equilibrium
  stability probes in the style of the game-theoretic related work).
* :class:`IdentityWhitewash` — ``count`` whitewashing adversaries (a
  class with ``adversary="whitewash"``) retire and re-arrive under
  fresh identities, shedding blacklist entries (paper §V's cheap
  pseudonyms; see :mod:`repro.security.adversaries`).
* :class:`SybilSpawn` — one principal spawns ``count`` fresh sybil
  identities (a class with ``adversary="sybil"``) bound into a ring
  that cross-reports standing and fakes participation.

An **empty scenario is the closed system, bit-for-bit**: no events are
scheduled, no RNG stream is touched, and a ``scenario=()`` run replays
the pre-scenario build exactly (the golden fig7 table guards this).
All scenario randomness draws from the dedicated ``"scenario"`` stream
— except the adversarial events, which draw from their own
``"adversary"`` stream (created lazily on first use), so adding an
attack to a timeline never perturbs the benign events' draws — and two
runs of the same seed and scenario are identical.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Optional, Tuple, Union

from repro.errors import ConfigError
from repro.population import PeerClassSpec

if TYPE_CHECKING:  # pragma: no cover - hints only
    from repro.config import SimulationConfig
    from repro.simulation import FileSharingSimulation


@dataclass(frozen=True)
class Phase:
    """Start a named measurement phase at ``time``.

    Records completed at or after this instant carry ``name`` until the
    next marker fires.  Events and phases at equal times apply in
    declaration order, so list the marker *before* the events that open
    the phase.
    """

    time: float
    name: str
    kind: str = field(default="phase", init=False)


@dataclass(frozen=True)
class PeerArrival:
    """``count`` new peers join, bootstrap, and start their workloads.

    Exactly one of ``class_name`` (an existing population class, e.g.
    the derived legacy ``"sharer"``/``"freeloader"``) or ``spec`` (an
    inline class with ``count``/``fraction`` left ``None``) selects the
    arrivals' class.
    """

    time: float
    count: int
    class_name: Optional[str] = None
    spec: Optional[PeerClassSpec] = None
    kind: str = field(default="arrival", init=False)


@dataclass(frozen=True)
class PeerDeparture:
    """``count`` peers leave permanently (never to reconnect).

    Departing peers are sampled uniformly from the remaining
    population, or from one class when ``class_name`` is given.  Fewer
    than ``count`` remaining candidates is not an error — everyone who
    can leave does.
    """

    time: float
    count: int
    class_name: Optional[str] = None
    kind: str = field(default="departure", init=False)


@dataclass(frozen=True)
class FlashCrowd:
    """``count`` new hot objects enter the catalog and demand spikes.

    The objects are injected at the top popularity rank of
    ``category_id`` (``None`` = the globally most popular category), so
    within-category popularity re-ranks; ``seed_providers`` online
    sharers receive and publish a copy; ``attract_fraction`` of the
    population adds the category to its interests at its favourite's
    weight.
    """

    time: float
    count: int = 1
    category_id: Optional[int] = None
    seed_providers: int = 2
    attract_fraction: float = 0.0
    kind: str = field(default="flash_crowd", init=False)


@dataclass(frozen=True)
class DemandShift:
    """A ``fraction`` of peers re-draws its interest profile."""

    time: float
    fraction: float
    kind: str = field(default="demand_shift", init=False)


@dataclass(frozen=True)
class MechanismRamp:
    """Every peer of ``class_name`` flips to ``exchange_mechanism``.

    Later arrivals of the class join with the new mechanism too.
    """

    time: float
    class_name: str
    exchange_mechanism: str
    kind: str = field(default="mechanism_ramp", init=False)


@dataclass(frozen=True)
class CapacityChange:
    """Every peer of ``class_name`` is re-provisioned to new capacities.

    ``None`` leaves a direction unchanged.  Shrinking below the slots
    currently in use never kills transfers — the pool is simply
    over-subscribed until enough of them finish.
    """

    time: float
    class_name: str
    upload_capacity_kbit: Optional[float] = None
    download_capacity_kbit: Optional[float] = None
    kind: str = field(default="capacity_change", init=False)


@dataclass(frozen=True)
class StrategyShock:
    """Perturb the strategy dynamics mid-run (see :mod:`repro.strategy`).

    ``flip_fraction`` forcibly flips that fraction of the
    strategy-enrolled peers between sharing and free-riding at ``time``
    (a stability probe: does the population return to its equilibrium?).
    ``payoff_bias`` is added to the sharing side of every best-response
    comparison for ``duration`` seconds (a perceived-payoff shock — a
    subsidy when positive, a sharing scare when negative).  Requires at
    least one strategy-enabled peer class; a fully static population
    has no dynamics to shock and fails validation.
    """

    time: float
    flip_fraction: float = 0.0
    payoff_bias: float = 0.0
    duration: float = 0.0
    kind: str = field(default="strategy_shock", init=False)


@dataclass(frozen=True)
class IdentityWhitewash:
    """``count`` whitewashing adversaries launder their identities.

    Each sampled adversary (from ``class_name``, or from every
    whitewash-capable class when ``None``) retires permanently and
    immediately re-arrives as a *fresh* peer id of the same class —
    blacklist entries, credit debt and participation history all stay
    with the dead identity.  Targets are sampled from the dedicated
    ``"adversary"`` RNG stream.  Fewer than ``count`` live candidates
    is not an error — everyone who can launder does.
    """

    time: float
    count: int
    class_name: Optional[str] = None
    kind: str = field(default="whitewash", init=False)


@dataclass(frozen=True)
class SybilSpawn:
    """One principal spawns ``count`` sybil identities as a ring.

    The identities join ``class_name`` (which must declare
    ``adversary="sybil"``) exactly like an arrival wave, then bind into
    a :class:`~repro.security.adversaries.SybilRing` whose members
    cross-report standing and fake participation for each other.
    """

    time: float
    count: int
    class_name: str
    kind: str = field(default="sybil_spawn", init=False)


#: Every concrete scenario event type (isinstance checks, docs, tests).
EVENT_TYPES = (
    Phase,
    PeerArrival,
    PeerDeparture,
    FlashCrowd,
    DemandShift,
    MechanismRamp,
    CapacityChange,
    StrategyShock,
    IdentityWhitewash,
    SybilSpawn,
)

ScenarioEvent = Union[
    Phase,
    PeerArrival,
    PeerDeparture,
    FlashCrowd,
    DemandShift,
    MechanismRamp,
    CapacityChange,
    StrategyShock,
    IdentityWhitewash,
    SybilSpawn,
]

ScenarioSpec = Tuple[ScenarioEvent, ...]


def scenario_class_names(config: "SimulationConfig") -> set:
    """Every class name addressable at runtime under ``config``.

    Population classes (explicit or legacy-derived) plus the names of
    inline arrival specs — a ramp may target a class that only exists
    after its first arrival wave.
    """
    names = {cls.name for cls in config.resolved_population()}
    for event in config.scenario:
        if isinstance(event, PeerArrival) and event.spec is not None:
            names.add(event.spec.name)
    return names


def ordered_events(events) -> list:
    """Events in firing order: by time, declaration order breaking ties.

    The single definition of the timeline's order — validation's
    arrival-before-spec-wave check and the director's scheduling both
    use it, so they can never disagree on equal-time tiebreaks.
    Returns ``(declaration_index, event)`` pairs.
    """
    return sorted(enumerate(events), key=lambda pair: (pair[1].time, pair[0]))


def adversary_kind_by_class(config: "SimulationConfig") -> dict:
    """Class name → adversary kind (``None`` = honest) for every
    runtime-addressable class: population classes plus inline arrival
    specs (an attack may target a class that only exists after its
    first wave)."""
    kinds = {cls.name: cls.adversary for cls in config.resolved_population()}
    for event in config.scenario:
        if isinstance(event, PeerArrival) and event.spec is not None:
            kinds.setdefault(event.spec.name, event.spec.adversary)
    return kinds


def _has_strategy_dynamics(config: "SimulationConfig") -> bool:
    """Whether any runtime-addressable class revises its strategy."""
    if any(not cls.strategy.is_static for cls in config.resolved_population()):
        return True
    global_strategy = config.strategy
    for event in config.scenario:
        if isinstance(event, PeerArrival) and event.spec is not None:
            spec = event.spec.strategy
            if spec is None:
                spec = global_strategy
            if spec is not None and not spec.is_static:
                return True
    return False


def validate_scenario(config: "SimulationConfig") -> None:
    """Eagerly validate ``config.scenario``; raises :class:`ConfigError`."""
    events = config.scenario
    if not events:
        return
    known_names = scenario_class_names(config)

    def check_class(event: ScenarioEvent, name: Optional[str]) -> None:
        if name is not None and name not in known_names:
            raise ConfigError(
                f"scenario {event.kind} at t={event.time:g} targets unknown "
                f"peer class {name!r}; known classes: {sorted(known_names)}"
            )

    for event in events:
        if not isinstance(event, EVENT_TYPES):
            raise ConfigError(
                f"unknown scenario event {event!r}; expected one of "
                f"{sorted(t.__name__ for t in EVENT_TYPES)}"
            )
        if not (isinstance(event.time, (int, float)) and math.isfinite(event.time)):
            raise ConfigError(f"scenario event time must be finite, got {event.time!r}")
        if event.time < 0:
            raise ConfigError(
                f"scenario {event.kind} time must be >= 0, got {event.time}"
            )
        if isinstance(event, Phase):
            if not event.name:
                raise ConfigError("scenario phase name must be non-empty")
        elif isinstance(event, PeerArrival):
            if event.count < 1:
                raise ConfigError(
                    f"arrival count must be >= 1, got {event.count}"
                )
            if (event.class_name is None) == (event.spec is None):
                raise ConfigError(
                    "arrival needs exactly one of class_name or spec"
                )
            check_class(event, event.class_name)
            if event.spec is not None:
                if event.spec.count is not None or event.spec.fraction is not None:
                    raise ConfigError(
                        f"arrival spec {event.spec.name!r} must leave "
                        "count/fraction unset (the event's count sizes the wave)"
                    )
                event.spec.validate()
        elif isinstance(event, PeerDeparture):
            if event.count < 1:
                raise ConfigError(
                    f"departure count must be >= 1, got {event.count}"
                )
            check_class(event, event.class_name)
        elif isinstance(event, FlashCrowd):
            if event.count < 1:
                raise ConfigError(
                    f"flash crowd object count must be >= 1, got {event.count}"
                )
            if event.seed_providers < 1:
                raise ConfigError(
                    "flash crowd needs seed_providers >= 1 "
                    "(an unseeded object is unlocatable forever)"
                )
            if not 0.0 <= event.attract_fraction <= 1.0:
                raise ConfigError(
                    f"attract_fraction must be in [0,1], got {event.attract_fraction}"
                )
            if event.category_id is not None and not (
                0 <= event.category_id < config.num_categories
            ):
                raise ConfigError(
                    f"flash crowd category_id {event.category_id} outside "
                    f"[0, {config.num_categories})"
                )
        elif isinstance(event, DemandShift):
            if not 0.0 < event.fraction <= 1.0:
                raise ConfigError(
                    f"demand shift fraction must be in (0,1], got {event.fraction}"
                )
        elif isinstance(event, MechanismRamp):
            check_class(event, event.class_name)
            # Locally imported: policies sits below config in the import
            # graph and this module is imported by config.
            from repro.core.policies import parse_mechanism

            parse_mechanism(event.exchange_mechanism)
        elif isinstance(event, CapacityChange):
            check_class(event, event.class_name)
            if (
                event.upload_capacity_kbit is None
                and event.download_capacity_kbit is None
            ):
                raise ConfigError(
                    f"capacity change for {event.class_name!r} changes nothing"
                )
            for value in (event.upload_capacity_kbit, event.download_capacity_kbit):
                if value is not None and value < config.slot_kbit:
                    raise ConfigError(
                        f"capacity change for {event.class_name!r} below one "
                        f"slot ({value} < {config.slot_kbit})"
                    )
        elif isinstance(event, StrategyShock):
            if not 0.0 <= event.flip_fraction <= 1.0:
                raise ConfigError(
                    f"flip_fraction must be in [0,1], got {event.flip_fraction}"
                )
            if not math.isfinite(event.payoff_bias):
                raise ConfigError(
                    f"payoff_bias must be finite, got {event.payoff_bias}"
                )
            if not (event.duration >= 0 and math.isfinite(event.duration)):
                raise ConfigError(
                    f"shock duration must be >= 0 and finite, got {event.duration}"
                )
            if event.flip_fraction == 0.0 and event.payoff_bias == 0.0:
                raise ConfigError(
                    f"strategy shock at t={event.time:g} changes nothing "
                    "(flip_fraction and payoff_bias both zero)"
                )
            if event.payoff_bias != 0.0 and event.duration == 0.0:
                raise ConfigError(
                    "strategy shock payoff_bias needs a positive duration"
                )
            if not _has_strategy_dynamics(config):
                raise ConfigError(
                    f"strategy shock at t={event.time:g} targets a fully "
                    "static population; give some class (or the global "
                    "config) a non-static StrategySpec"
                )
        elif isinstance(event, IdentityWhitewash):
            if event.count < 1:
                raise ConfigError(
                    f"whitewash count must be >= 1, got {event.count}"
                )
            check_class(event, event.class_name)
            kinds = adversary_kind_by_class(config)
            if event.class_name is not None:
                if kinds.get(event.class_name) != "whitewash":
                    raise ConfigError(
                        f"whitewash at t={event.time:g} targets class "
                        f"{event.class_name!r}, which does not declare "
                        'adversary="whitewash"'
                    )
            elif "whitewash" not in kinds.values():
                raise ConfigError(
                    f"whitewash at t={event.time:g} but no peer class "
                    'declares adversary="whitewash"'
                )
        elif isinstance(event, SybilSpawn):
            if event.count < 2:
                raise ConfigError(
                    f"a sybil ring needs count >= 2 identities, "
                    f"got {event.count}"
                )
            check_class(event, event.class_name)
            if adversary_kind_by_class(config).get(event.class_name) != "sybil":
                raise ConfigError(
                    f"sybil spawn at t={event.time:g} targets class "
                    f"{event.class_name!r}, which does not declare "
                    'adversary="sybil"'
                )

    # A *named* arrival needs a concrete class shape at fire time, so
    # its class must be a population class or a spec class whose
    # defining wave fires earlier (ramps/capacity changes/departures may
    # target future classes — they apply to zero peers and park their
    # overrides).  Walk events in the director's firing order.
    population_names = {cls.name for cls in config.resolved_population()}
    defined = set(population_names)
    for _, event in ordered_events(events):
        # Sybil spawns resolve their class by name at fire time exactly
        # like named arrivals, so they obey the same ordering rule.
        if isinstance(event, SybilSpawn) and event.class_name not in defined:
            raise ConfigError(
                f"sybil spawn at t={event.time:g} references class "
                f"{event.class_name!r} before any spec wave defined it"
            )
        if not isinstance(event, PeerArrival):
            continue
        if event.class_name is not None and event.class_name not in defined:
            raise ConfigError(
                f"arrival at t={event.time:g} references class "
                f"{event.class_name!r} before any spec wave defined it"
            )
        if event.spec is not None:
            defined.add(event.spec.name)


class ScenarioDirector:
    """Schedules and applies one config's scenario timeline.

    Constructed by :meth:`FileSharingSimulation.build` when the scenario
    is non-empty.  Every event is scheduled on the engine up front (in
    stable time order, so equal-time events apply in declaration order)
    and dispatched to the simulation's world-mutation primitives
    (:meth:`~repro.simulation.FileSharingSimulation.spawn_peer` /
    :meth:`~repro.simulation.FileSharingSimulation.retire_peer`) or to
    the content/population layers when it fires.
    """

    def __init__(self, sim: "FileSharingSimulation") -> None:
        self.sim = sim
        self.ctx = sim.ctx
        self.events_applied = 0
        self.peers_spawned = 0
        self.peers_retired = 0
        self._rand = self.ctx.rng.stream("scenario")
        # The adversarial events' stream, created on first use so
        # attack-free timelines never touch it (stream creation is
        # side-effect-free, but lazy keeps the intent visible).
        self._adv_rand = None
        for index, event in ordered_events(sim.config.scenario):
            # Event times are absolute timeline timestamps, so use the
            # absolute scheduling entry point: a director constructed
            # after the clock advanced past an event fails loudly
            # instead of silently shifting the timeline.
            self.ctx.engine.schedule_at(
                event.time,
                lambda e=event: self._fire(e),
                name=f"scenario.{event.kind}.{index}",
            )

    # ------------------------------------------------------------------
    def _fire(self, event: ScenarioEvent) -> None:
        self.events_applied += 1
        self.ctx.metrics.count(f"scenario.{event.kind}")
        if isinstance(event, Phase):
            self.ctx.metrics.current_phase = event.name
        elif isinstance(event, PeerArrival):
            self._apply_arrival(event)
        elif isinstance(event, PeerDeparture):
            self._apply_departure(event)
        elif isinstance(event, FlashCrowd):
            self._apply_flash_crowd(event)
        elif isinstance(event, DemandShift):
            self._apply_demand_shift(event)
        elif isinstance(event, MechanismRamp):
            self._apply_mechanism_ramp(event)
        elif isinstance(event, CapacityChange):
            self._apply_capacity_change(event)
        elif isinstance(event, StrategyShock):
            self._apply_strategy_shock(event)
        elif isinstance(event, IdentityWhitewash):
            self._apply_whitewash(event)
        elif isinstance(event, SybilSpawn):
            self._apply_sybil_spawn(event)
        else:  # pragma: no cover - validate_scenario rejects these
            raise ConfigError(f"unknown scenario event {event!r}")

    # ------------------------------------------------------------------
    def _apply_arrival(self, event: PeerArrival) -> None:
        resolved = self.sim.arrival_class(event.class_name, event.spec, event.count)
        for _ in range(event.count):
            self.sim.spawn_peer(resolved)
        self.peers_spawned += event.count

    def _alive_peer_ids(self, class_name: Optional[str] = None) -> list:
        # Columnar scan: ascending-id enumeration over the peer table's
        # masks — identical to sorting the registry-derived ids.
        return self.ctx.peer_table.alive_ids(class_name)

    def _apply_departure(self, event: PeerDeparture) -> None:
        candidates = self._alive_peer_ids(event.class_name)
        chosen = self._rand.sample(candidates, min(event.count, len(candidates)))
        for peer_id in chosen:
            self.sim.retire_peer(self.ctx.peers[peer_id])
        self.peers_retired += len(chosen)

    def _apply_flash_crowd(self, event: FlashCrowd) -> None:
        ctx = self.ctx
        # Category ids are 0-based and ranked by id (rank = id + 1), so
        # the globally hottest category is id 0.
        category_id = 0 if event.category_id is None else event.category_id
        new_objects = [
            ctx.catalog.inject_object(
                category_id, size_kbit=self.sim.config.object_size_kbit
            )
            for _ in range(event.count)
        ]
        # Seed copies: the crowd needs at least one provider to find.
        # Prefer online sharers; under heavy churn every sharer may be
        # offline at fire time, in which case offline (non-departed)
        # ones are seeded instead — their copy publishes on reconnect,
        # so the hot objects become locatable rather than staying
        # orphaned forever.
        sharers = ctx.peer_table.sharer_ids(online_only=True)
        if not sharers:
            sharers = ctx.peer_table.sharer_ids(online_only=False)
            if sharers:
                ctx.metrics.count("scenario.flash_seeded_offline")
            else:
                ctx.metrics.count("scenario.flash_unseeded")
        seeds = self._rand.sample(sharers, min(event.seed_providers, len(sharers)))
        for peer_id in seeds:
            peer = ctx.peers[peer_id]
            for obj in new_objects:
                if peer.store.add_if_absent(obj.object_id):
                    # Pinned: the seeds model the release's origin
                    # hosts, and random overflow eviction must not make
                    # the hot object unlocatable before the crowd ever
                    # downloads a copy (crowd-made copies evict freely).
                    peer.store.pin(obj.object_id)
                    if peer.shares:
                        ctx.lookup.register(peer_id, obj.object_id)
        # Demand spike: a slice of the population turns to the category.
        if event.attract_fraction > 0.0:
            alive = self._alive_peer_ids()
            count = int(round(len(alive) * event.attract_fraction))
            for peer_id in self._rand.sample(alive, count):
                peer = ctx.peers[peer_id]
                peer.retarget_interests(peer.profile.with_category(category_id))
        ctx.metrics.count("scenario.flash_objects", len(new_objects))

    def _apply_demand_shift(self, event: DemandShift) -> None:
        from repro.content.interests import build_interest_profile

        alive = self._alive_peer_ids()
        count = int(round(len(alive) * event.fraction))
        for peer_id in self._rand.sample(alive, count):
            peer = self.ctx.peers[peer_id]
            peer_class = self.sim.class_by_name(peer.class_name)
            categories = self._rand.randint(
                peer_class.categories_per_peer_min, peer_class.categories_per_peer_max
            )
            profile = build_interest_profile(
                self.ctx.catalog,
                self.sim.category_popularity,
                self._rand,
                categories,
            )
            peer.retarget_interests(profile)

    def _apply_mechanism_ramp(self, event: MechanismRamp) -> None:
        # The simulation's policy cache keeps one instance per
        # mechanism string, shared by build-time peers, ramped peers
        # and later arrivals alike.
        policy = self.sim.policy_for(event.exchange_mechanism)
        for peer_id in self._alive_peer_ids(event.class_name):
            self.ctx.peers[peer_id].set_policy(policy)
        # Later arrivals of the class adopt the new mechanism too.
        self.sim.note_class_override(
            event.class_name, exchange_mechanism=event.exchange_mechanism
        )

    def _apply_strategy_shock(self, event: StrategyShock) -> None:
        # Validation guarantees some class is strategy-enabled, but the
        # first enrollment may still be ahead (an arrival-spec class
        # whose wave lands later); the shock then has nobody to touch.
        director = self.sim.strategy
        if director is None:
            self.ctx.metrics.count("scenario.strategy_shock_noop")
            return
        director.apply_shock(event)

    def _adversary_stream(self):
        if self._adv_rand is None:
            self._adv_rand = self.ctx.rng.stream("adversary")
        return self._adv_rand

    def _apply_whitewash(self, event: IdentityWhitewash) -> None:
        state = self.sim.adversary
        if state is None:
            # The whitewash class is an arrival-spec class whose first
            # wave has not landed yet: nobody to launder.
            self.ctx.metrics.count("adversary.whitewash_noop")
            return
        candidates = [
            peer_id
            for peer_id in self._alive_peer_ids(event.class_name)
            if state.kind_of.get(peer_id) == "whitewash"
        ]
        chosen = self._adversary_stream().sample(
            candidates, min(event.count, len(candidates))
        )
        for peer_id in chosen:
            state.whitewash(self.ctx.peers[peer_id])
        self.peers_retired += len(chosen)
        self.peers_spawned += len(chosen)

    def _apply_sybil_spawn(self, event: SybilSpawn) -> None:
        resolved = self.sim.arrival_class(event.class_name, None, event.count)
        members = [self.sim.spawn_peer(resolved) for _ in range(event.count)]
        self.peers_spawned += len(members)
        # spawn_peer enrolled every member, so the state exists now.
        self.sim.adversary.form_ring(members)
        self.ctx.metrics.count("adversary.sybil_identities", len(members))

    def _apply_capacity_change(self, event: CapacityChange) -> None:
        for peer_id in self._alive_peer_ids(event.class_name):
            self.ctx.peers[peer_id].resize_capacity(
                upload_capacity_kbit=event.upload_capacity_kbit,
                download_capacity_kbit=event.download_capacity_kbit,
            )
        # Later arrivals of the class are provisioned at the new
        # capacities too (same contract as mechanism ramps).
        overrides = {
            key: value
            for key, value in (
                ("upload_capacity_kbit", event.upload_capacity_kbit),
                ("download_capacity_kbit", event.download_capacity_kbit),
            )
            if value is not None
        }
        self.sim.note_class_override(event.class_name, **overrides)
