"""Declarative heterogeneous peer populations.

The paper's population model is a binary sharer/freeloader split with
one global exchange mechanism, one global service discipline and
identical link capacities for every peer.  The questions that matter at
scale are about *mixed* populations: what fraction of peers must adopt
exchanges before the incentive bites, and how the mechanism behaves when
peers have heterogeneous capacities.

A :class:`PeerClassSpec` describes one class of peers declaratively:
its size (an absolute ``count``, a ``fraction`` of the population, or
neither — at most one class may omit both and absorbs the remainder),
its behaviour, and optional per-class overrides for the exchange
mechanism, service discipline, link capacities, storage range and
interest breadth.  Any field left ``None`` inherits the corresponding
global :class:`~repro.config.SimulationConfig` value, so a population
spec only states what *differs* between classes.

:func:`resolve_population` turns the specs (or, when
``config.population`` is empty, the two-class split derived from the
legacy ``freeloader_fraction``/``exchange_mechanism``/``scheduler_mode``
fields) into concrete :class:`ResolvedPeerClass` rows with exact counts;
:func:`assign_peer_classes` then maps peer ids to classes.  The
assignment consumes the ``"behavior"`` RNG stream exactly as the
pre-population code did for the derived two-class case, which is what
keeps every legacy config bit-identical across the refactor.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, List, Optional, Tuple

from repro.errors import ConfigError
from repro.network.behaviors import FREELOADER, SHARER, PeerBehavior
from repro.strategy import STATIC, StrategySpec

if TYPE_CHECKING:  # pragma: no cover - hints only
    from repro.config import SimulationConfig
    from repro.sim.rng import RandomSource

#: Behaviour names accepted by :attr:`PeerClassSpec.behavior`.
BEHAVIORS: Dict[str, PeerBehavior] = {
    SHARER.name: SHARER,
    FREELOADER.name: FREELOADER,
}

#: Service-discipline names accepted by :attr:`PeerClassSpec.service_discipline`
#: (see :mod:`repro.core.disciplines`).
DISCIPLINES = ("fifo", "credit", "participation")


@dataclass(frozen=True)
class PeerClassSpec:
    """One class of peers; ``None`` fields inherit the global config.

    Sizing: give ``count`` (absolute) or ``fraction`` (of ``num_peers``,
    rounded) but not both.  At most one class may give neither — it
    absorbs whatever the other classes leave over.
    """

    name: str
    count: Optional[int] = None
    fraction: Optional[float] = None
    behavior: str = "sharer"
    exchange_mechanism: Optional[str] = None
    service_discipline: Optional[str] = None
    upload_capacity_kbit: Optional[float] = None
    download_capacity_kbit: Optional[float] = None
    storage_min_objects: Optional[int] = None
    storage_max_objects: Optional[int] = None
    categories_per_peer_min: Optional[int] = None
    categories_per_peer_max: Optional[int] = None
    #: How this class revises its sharing strategy at runtime (see
    #: :mod:`repro.strategy`).  ``None`` inherits the global
    #: :attr:`~repro.config.SimulationConfig.strategy` (itself static
    #: by default), so pre-strategy configs never revise.  The class's
    #: ``behavior`` is the *initial condition* of the dynamics.
    strategy: Optional[StrategySpec] = None
    #: Attacker kind for this class (see
    #: :mod:`repro.security.adversaries`): ``"whitewash"``, ``"sybil"``
    #: or ``"collusion"``.  ``None`` (the default, and the only value
    #: legacy configs can hold) means the class is honest and the run
    #: constructs no adversary machinery at all.
    adversary: Optional[str] = None

    def validate(self) -> None:
        """Spec-local checks (cross-class checks live in resolution)."""
        if not self.name:
            raise ConfigError("peer class name must be non-empty")
        if self.count is not None and self.fraction is not None:
            raise ConfigError(
                f"peer class {self.name!r} gives both count and fraction"
            )
        if self.count is not None and self.count < 0:
            raise ConfigError(
                f"peer class {self.name!r} count must be >= 0, got {self.count}"
            )
        if self.fraction is not None and not 0.0 <= self.fraction <= 1.0:
            raise ConfigError(
                f"peer class {self.name!r} fraction must be in [0,1], "
                f"got {self.fraction}"
            )
        if self.behavior not in BEHAVIORS:
            raise ConfigError(
                f"peer class {self.name!r} has unknown behavior "
                f"{self.behavior!r}; expected one of {sorted(BEHAVIORS)}"
            )
        if (
            self.service_discipline is not None
            and self.service_discipline not in DISCIPLINES
        ):
            raise ConfigError(
                f"peer class {self.name!r} has unknown service discipline "
                f"{self.service_discipline!r}; expected one of {DISCIPLINES}"
            )
        if self.exchange_mechanism is not None:
            # Locally imported: policies sits below config in the import
            # graph and this module is imported by config.
            from repro.core.policies import parse_mechanism

            parse_mechanism(self.exchange_mechanism)
        if self.strategy is not None:
            if not isinstance(self.strategy, StrategySpec):
                raise ConfigError(
                    f"peer class {self.name!r} strategy must be a "
                    f"StrategySpec, got {type(self.strategy).__name__}"
                )
            self.strategy.validate()
        if self.adversary is not None:
            # Locally imported: the security package sits outside the
            # config import graph (same idiom as parse_mechanism above).
            from repro.security.adversaries import ADVERSARIES

            if self.adversary not in ADVERSARIES:
                raise ConfigError(
                    f"peer class {self.name!r} has unknown adversary kind "
                    f"{self.adversary!r}; expected one of {ADVERSARIES}"
                )
            if self.adversary == "collusion" and self.behavior != "sharer":
                raise ConfigError(
                    f"peer class {self.name!r}: colluders must be sharers "
                    "(a clique of non-serving peers has nothing to "
                    "reciprocate internally)"
                )


@dataclass(frozen=True)
class ResolvedPeerClass:
    """A :class:`PeerClassSpec` with every inherited field made concrete."""

    name: str
    count: int
    behavior: PeerBehavior
    exchange_mechanism: str
    service_discipline: str
    upload_capacity_kbit: float
    download_capacity_kbit: float
    storage_min_objects: int
    storage_max_objects: int
    categories_per_peer_min: int
    categories_per_peer_max: int
    strategy: StrategySpec = STATIC
    adversary: Optional[str] = None

    def validate(self, slot_kbit: float) -> None:
        """Check the concrete per-class values against the slot geometry."""
        if self.upload_capacity_kbit < slot_kbit:
            raise ConfigError(
                f"peer class {self.name!r}: upload capacity smaller than one "
                f"slot ({self.upload_capacity_kbit} < {slot_kbit})"
            )
        if self.download_capacity_kbit < slot_kbit:
            raise ConfigError(
                f"peer class {self.name!r}: download capacity smaller than one "
                f"slot ({self.download_capacity_kbit} < {slot_kbit})"
            )
        if not 0 < self.storage_min_objects <= self.storage_max_objects:
            raise ConfigError(
                f"peer class {self.name!r}: storage capacity range invalid: "
                f"[{self.storage_min_objects}, {self.storage_max_objects}]"
            )
        if not 0 < self.categories_per_peer_min <= self.categories_per_peer_max:
            raise ConfigError(
                f"peer class {self.name!r}: categories_per_peer range invalid: "
                f"[{self.categories_per_peer_min}, {self.categories_per_peer_max}]"
            )


def derived_legacy_specs(config: "SimulationConfig") -> Tuple[PeerClassSpec, ...]:
    """The two-class population implied by the legacy global fields.

    The sharer class absorbs the remainder and the freeloader class takes
    an explicit count so the split matches ``config.num_freeloaders``
    (one rounding, not two).  Every other field inherits, which is what
    keeps derived populations bit-identical to pre-population configs.
    """
    return (
        PeerClassSpec(name="sharer", behavior="sharer"),
        PeerClassSpec(
            name="freeloader",
            behavior="freeloader",
            count=config.num_freeloaders,
        ),
    )


def _resolve_one(spec: PeerClassSpec, count: int, config: "SimulationConfig") -> ResolvedPeerClass:
    def inherit(value, default):
        return default if value is None else value

    return ResolvedPeerClass(
        name=spec.name,
        count=count,
        behavior=BEHAVIORS[spec.behavior],
        exchange_mechanism=inherit(spec.exchange_mechanism, config.exchange_mechanism),
        service_discipline=inherit(spec.service_discipline, config.scheduler_mode),
        upload_capacity_kbit=inherit(
            spec.upload_capacity_kbit, config.upload_capacity_kbit
        ),
        download_capacity_kbit=inherit(
            spec.download_capacity_kbit, config.download_capacity_kbit
        ),
        storage_min_objects=inherit(spec.storage_min_objects, config.storage_min_objects),
        storage_max_objects=inherit(spec.storage_max_objects, config.storage_max_objects),
        categories_per_peer_min=inherit(
            spec.categories_per_peer_min, config.categories_per_peer_min
        ),
        categories_per_peer_max=inherit(
            spec.categories_per_peer_max, config.categories_per_peer_max
        ),
        strategy=inherit(spec.strategy, inherit(config.strategy, STATIC)),
        adversary=spec.adversary,
    )


def resolve_spec(
    spec: PeerClassSpec, count: int, config: "SimulationConfig"
) -> ResolvedPeerClass:
    """Resolve one spec at an explicit count (scenario arrival waves).

    The scenario layer sizes arrival waves per event, so the spec itself
    carries no count/fraction; everything else inherits exactly as in
    build-time resolution.
    """
    spec.validate()
    resolved = _resolve_one(spec, count, config)
    resolved.validate(config.slot_kbit)
    return resolved


def class_by_name(
    classes: Tuple[ResolvedPeerClass, ...], name: str
) -> ResolvedPeerClass:
    """Look up a resolved class by name; unknown names raise ConfigError."""
    for cls in classes:
        if cls.name == name:
            return cls
    raise ConfigError(
        f"unknown peer class {name!r}; known classes: "
        f"{sorted(cls.name for cls in classes)}"
    )


def resolve_population(config: "SimulationConfig") -> Tuple[ResolvedPeerClass, ...]:
    """Concrete per-class rows (exact counts) for one configuration.

    Raises :class:`~repro.errors.ConfigError` on duplicate names, counts
    that do not sum to ``num_peers``, more than one remainder class, or
    any invalid per-class override.
    """
    specs = config.population or derived_legacy_specs(config)
    seen: set = set()
    for spec in specs:
        spec.validate()
        if spec.name in seen:
            raise ConfigError(f"duplicate peer class name {spec.name!r}")
        seen.add(spec.name)

    num_peers = config.num_peers
    counts: List[Optional[int]] = []
    remainder_index: Optional[int] = None
    for index, spec in enumerate(specs):
        if spec.count is not None:
            counts.append(spec.count)
        elif spec.fraction is not None:
            counts.append(int(round(num_peers * spec.fraction)))
        else:
            if remainder_index is not None:
                raise ConfigError(
                    f"peer classes {specs[remainder_index].name!r} and "
                    f"{spec.name!r} both omit count and fraction; at most "
                    "one class may absorb the remainder"
                )
            remainder_index = index
            counts.append(None)

    explicit = sum(c for c in counts if c is not None)
    if remainder_index is not None:
        leftover = num_peers - explicit
        if leftover < 0:
            raise ConfigError(
                f"peer class counts exceed num_peers: {explicit} > {num_peers}"
            )
        counts[remainder_index] = leftover
    elif explicit != num_peers:
        # Without a remainder class, independently-rounded fractions can
        # miss num_peers by a peer or two (two 0.5 classes over an odd
        # population, say).  Re-apportion the fraction classes by
        # largest remainder — deterministic, and exact whenever the
        # declared sizes are actually consistent with num_peers.
        fraction_indices = [
            index for index, spec in enumerate(specs) if spec.count is None
        ]
        budget = num_peers - sum(
            spec.count for spec in specs if spec.count is not None
        )
        ideals = [num_peers * specs[index].fraction for index in fraction_indices]
        floors = [int(ideal) for ideal in ideals]
        leftover = budget - sum(floors)
        if not 0 <= leftover <= len(fraction_indices):
            raise ConfigError(
                f"peer class counts must sum to num_peers ({num_peers}), "
                f"got {explicit}"
            )
        by_remainder = sorted(
            range(len(fraction_indices)),
            key=lambda i: (-(ideals[i] - floors[i]), i),
        )
        for i in by_remainder[:leftover]:
            floors[i] += 1
        for index, count in zip(fraction_indices, floors):
            counts[index] = count

    resolved = tuple(
        _resolve_one(spec, count, config)  # type: ignore[arg-type]
        for spec, count in zip(specs, counts)
    )
    for cls in resolved:
        # Mechanism strings need no re-check here: per-class overrides
        # were parsed by spec.validate() above and the inherited global
        # is parsed by SimulationConfig.validate().
        cls.validate(config.slot_kbit)
    return resolved


def assign_peer_classes(
    classes: Tuple[ResolvedPeerClass, ...],
    num_peers: int,
    rng: "RandomSource",
) -> Dict[int, ResolvedPeerClass]:
    """Map each peer id to its class, consuming the ``"behavior"`` stream.

    Classes after the first are sampled, in declaration order, from the
    shrinking pool of unassigned ids; the first class keeps the rest.
    For the derived legacy population this is exactly one
    ``sample(range(num_peers), num_freeloaders)`` call — the same draw
    the pre-population assembly made, preserving bit-identical runs.
    """
    pool = list(range(num_peers))
    assignment: Dict[int, ResolvedPeerClass] = {}
    for cls in classes[1:]:
        chosen = rng.sample(pool, cls.count, stream="behavior")
        for peer_id in chosen:
            assignment[peer_id] = cls
        chosen_set = set(chosen)
        pool = [peer_id for peer_id in pool if peer_id not in chosen_set]
    first = classes[0]
    for peer_id in pool:
        assignment[peer_id] = first
    return assignment


def class_sizes(classes: Tuple[ResolvedPeerClass, ...]) -> Dict[str, int]:
    """``class name -> peer count`` for the metrics layer."""
    return {cls.name: cls.count for cls in classes}
