"""End-to-end simulation assembly.

:class:`FileSharingSimulation` turns a
:class:`~repro.config.SimulationConfig` into a fully wired system —
catalog, lookup oracle, peers with interests, stores, initial placement,
workloads and periodic processes — runs the event loop, and reduces the
metrics to a :class:`~repro.metrics.summary.SimulationSummary`.

Typical use::

    from repro import FileSharingSimulation, SimulationConfig

    config = SimulationConfig(exchange_mechanism="2-5-way", seed=7)
    result = FileSharingSimulation(config).run()
    print(result.summary.mean_download_time_sharers_min)
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import List

from repro.config import SimulationConfig
from repro.content.catalog import Catalog
from repro.content.interests import build_interest_profile
from repro.content.placement import place_objects_for_peer
from repro.content.popularity import PopularityCache, RankPopularity
from repro.content.storage import ObjectStore
from repro.content.workload import RequestGenerator
from repro.context import SimContext
from repro.core.policies import parse_mechanism
from repro.errors import SimulationError
from repro.core.disciplines import make_discipline
from repro.metrics.collectors import MetricsCollector
from repro.metrics.summary import SimulationSummary, summarize
from repro.network.lookup import LookupService
from repro.network.peer import Peer
from repro.population import assign_peer_classes, class_sizes
from repro.sim.processes import PeriodicProcess


@dataclass
class SimulationResult:
    """Everything a caller needs after a run."""

    config: SimulationConfig
    summary: SimulationSummary
    metrics: MetricsCollector
    events_fired: int
    wall_seconds: float

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"SimulationResult(mechanism={self.config.exchange_mechanism!r}, "
            f"sharers={self.summary.mean_download_time_sharers_min}, "
            f"freeloaders={self.summary.mean_download_time_freeloaders_min})"
        )


class FileSharingSimulation:
    """Builds and runs one simulated file-sharing network."""

    def __init__(self, config: SimulationConfig) -> None:
        self.config = config
        self.ctx = SimContext(config)
        self.population = config.resolved_population()
        self.churn = None  # set by build() when churn is enabled
        self._built = False
        self._ran = False
        self._processes: List[PeriodicProcess] = []

    # ------------------------------------------------------------------
    def build(self) -> SimContext:
        """Construct the whole system; idempotent guard against reuse."""
        if self._built:
            raise SimulationError("simulation already built")
        self._built = True
        config = self.config
        ctx = self.ctx
        rng = ctx.rng

        ctx.catalog = Catalog.build(
            rng,
            num_categories=config.num_categories,
            objects_per_category_min=config.objects_per_category_min,
            objects_per_category_max=config.objects_per_category_max,
            object_size_kbit=config.object_size_kbit,
        )
        ctx.lookup = LookupService(coverage=config.lookup_coverage)

        category_popularity = RankPopularity(
            config.num_categories, config.category_factor
        )
        placement_cache = PopularityCache()
        workload_cache = PopularityCache()

        class_of = assign_peer_classes(self.population, config.num_peers, rng)
        policies = {
            cls.name: parse_mechanism(cls.exchange_mechanism)
            for cls in self.population
        }
        interest_rand = rng.stream("interests")
        placement_rand = rng.stream("placement")

        for peer_id in range(config.num_peers):
            peer_class = class_of[peer_id]
            categories = rng.uniform_int(
                peer_class.categories_per_peer_min,
                peer_class.categories_per_peer_max,
                stream="peer-categories",
            )
            profile = build_interest_profile(
                ctx.catalog, category_popularity, interest_rand, categories
            )
            capacity = rng.uniform_int(
                peer_class.storage_min_objects,
                peer_class.storage_max_objects,
                stream="peer-storage",
            )
            store = ObjectStore(capacity)
            behavior = peer_class.behavior
            peer = Peer(
                ctx,
                peer_id,
                behavior,
                policies[peer_class.name],
                profile,
                store,
                upload_capacity_kbit=peer_class.upload_capacity_kbit,
                download_capacity_kbit=peer_class.download_capacity_kbit,
                discipline=make_discipline(
                    peer_class.service_discipline,
                    peer_id,
                    shares=behavior.shares,
                    fake_participation=config.freeloaders_fake_participation,
                ),
                class_name=peer_class.name,
            )
            placed = place_objects_for_peer(
                ctx.catalog,
                profile,
                store,
                placement_rand,
                config.object_factor,
                placement_cache,
                fill_fraction=config.initial_fill_fraction,
            )
            if behavior.shares:
                for object_id in placed:
                    ctx.lookup.register(peer_id, object_id)
            workload = RequestGenerator(
                ctx.catalog,
                profile,
                rng.stream(f"workload{peer_id}"),
                config.object_factor,
                is_known=self._make_is_known(peer),
                is_locatable=self._make_is_locatable(ctx),
                popularity_cache=workload_cache,
            )
            peer.attach_workload(workload)
            ctx.peers[peer_id] = peer

        self._start_processes()
        self._bootstrap()
        if config.churn_enabled:
            from repro.network.churn import ChurnModel

            self.churn = ChurnModel(
                ctx,
                list(ctx.peers.values()),
                mean_online=config.churn_mean_online,
                mean_offline=config.churn_mean_offline,
                rand=rng.stream("churn"),
            )
        return ctx

    @staticmethod
    def _make_is_known(peer: Peer):
        def is_known(object_id: int) -> bool:
            return object_id in peer.store or object_id in peer.pending

        return is_known

    @staticmethod
    def _make_is_locatable(ctx: SimContext):
        def is_locatable(object_id: int) -> bool:
            return ctx.lookup.provider_count(object_id) > 0

        return is_locatable

    def _start_processes(self) -> None:
        config = self.config
        engine = self.ctx.engine
        stagger = self.ctx.rng.stream("stagger")
        for peer in self.ctx.peers.values():
            # Attached to the peer as well so churn can pause the loops
            # while the peer is offline (an offline peer's scan/storage
            # ticks are pure event-heap churn).
            scan = PeriodicProcess(
                engine,
                config.scan_interval,
                peer.scan,
                name=f"scan.p{peer.peer_id}",
                start_delay=stagger.random() * config.scan_interval,
            )
            storage = PeriodicProcess(
                engine,
                config.storage_check_interval,
                peer.storage_check,
                name=f"storage.p{peer.peer_id}",
                start_delay=stagger.random() * config.storage_check_interval,
            )
            peer.attach_periodic(scan)
            peer.attach_periodic(storage)
            self._processes.extend((scan, storage))

    def _bootstrap(self) -> None:
        """Stagger initial request bursts over the bootstrap window."""
        stagger = self.ctx.rng.stream("bootstrap")
        window = self.config.bootstrap_window
        for peer in self.ctx.peers.values():
            delay = stagger.random() * window if window > 0 else 0.0
            self.ctx.engine.schedule(
                delay, peer.fill_pending, name=f"bootstrap.p{peer.peer_id}"
            )

    # ------------------------------------------------------------------
    def run(self) -> SimulationResult:
        """Build (if needed), run to ``config.duration``, summarize."""
        if self._ran:
            raise SimulationError("simulation already ran; build a new one")
        if not self._built:
            self.build()
        self._ran = True
        started = time.perf_counter()
        self.ctx.engine.run(until=self.config.duration)
        for process in self._processes:
            process.stop()
        wall = time.perf_counter() - started
        # Class sizes come from the resolved population, not the legacy
        # freeloader_fraction properties — under an explicit population
        # the latter say nothing about the actual split.
        num_sharers = sum(c.count for c in self.population if c.behavior.shares)
        summary = summarize(
            self.ctx.metrics,
            warmup=self.config.warmup,
            num_sharers=num_sharers,
            num_freeloaders=self.config.num_peers - num_sharers,
            class_sizes=class_sizes(self.population),
        )
        return SimulationResult(
            config=self.config,
            summary=summary,
            metrics=self.ctx.metrics,
            events_fired=self.ctx.engine.events_fired,
            wall_seconds=wall,
        )


def run_simulation(config: SimulationConfig) -> SimulationResult:
    """One-call convenience wrapper."""
    return FileSharingSimulation(config).run()


def run_summary(config: SimulationConfig) -> SimulationSummary:
    """Run one simulation and return only its summary.

    This is the pickle-safe entry point the experiment orchestrator
    ships to ``multiprocessing`` workers: the argument is a plain frozen
    dataclass and the return value is a plain dataclass of built-in
    types, so both cross process boundaries cheaply — unlike the full
    :class:`SimulationResult`, which drags the entire metrics record
    store with it.
    """
    return run_simulation(config).summary
