"""End-to-end simulation assembly.

:class:`FileSharingSimulation` turns a
:class:`~repro.config.SimulationConfig` into a fully wired system —
catalog, lookup oracle, peers with interests, stores, initial placement,
workloads and periodic processes — runs the event loop, and reduces the
metrics to a :class:`~repro.metrics.summary.SimulationSummary`.

The world is assembled from two reusable mutation primitives,
:meth:`FileSharingSimulation.spawn_peer` and
:meth:`FileSharingSimulation.retire_peer`: :meth:`build` spawns the
initial population with them, and a non-empty
:attr:`~repro.config.SimulationConfig.scenario` drives the same
primitives mid-run through a :class:`~repro.scenario.ScenarioDirector`
(peer arrivals and permanent departures, flash crowds, demand shifts,
mechanism ramps, capacity changes).  With an empty scenario the
lifecycle is exactly the classic build-once/run-once closed system.

Typical use::

    from repro import FileSharingSimulation, SimulationConfig

    config = SimulationConfig(exchange_mechanism="2-5-way", seed=7)
    result = FileSharingSimulation(config).run()
    print(result.summary.mean_download_time_sharers_min)
"""

from __future__ import annotations

import dataclasses
import gc
import time
from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.config import SimulationConfig
from repro.content.catalog import Catalog
from repro.content.interests import build_interest_profile
from repro.content.placement import place_objects_for_peer
from repro.content.popularity import PopularityCache, RankPopularity
from repro.content.storage import ObjectStore
from repro.content.workload import RequestGenerator
from repro.context import SimContext
from repro.core.policies import ExchangePolicy, parse_mechanism
from repro.errors import SimulationError
from repro.core.disciplines import make_discipline
from repro.metrics.summary import AnyCollector, SimulationSummary, summarize
from repro.network.lookup import LookupService
from repro.network.peer import Peer
from repro.population import (
    ResolvedPeerClass,
    assign_peer_classes,
    class_by_name,
    class_sizes,
)
from repro.scenario import ScenarioDirector
from repro.sim.processes import PeriodicProcess
from repro.strategy import StrategyDirector


@dataclass
class SimulationResult:
    """Everything a caller needs after a run."""

    config: SimulationConfig
    summary: SimulationSummary
    metrics: AnyCollector
    events_fired: int
    wall_seconds: float
    #: JSON-ready perf-counter snapshot (``ctx.counters.snapshot()``) —
    #: all-empty with ``enabled: False`` unless ``config.perf_counters``
    #: asked for instrumentation.  Benchmarks publish this verbatim.
    perf_counters: Dict[str, object] = dataclasses.field(default_factory=dict)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"SimulationResult(mechanism={self.config.exchange_mechanism!r}, "
            f"sharers={self.summary.mean_download_time_sharers_min}, "
            f"freeloaders={self.summary.mean_download_time_freeloaders_min})"
        )


class FileSharingSimulation:
    """Builds and runs one simulated file-sharing network."""

    def __init__(self, config: SimulationConfig) -> None:
        self.config = config
        self.ctx = SimContext(config)
        self.population = config.resolved_population()
        self.churn = None  # set by build() when churn is enabled
        self.scenario = None  # set by build() when the scenario is non-empty
        self.strategy = None  # set lazily when some class revises its strategy
        self.adversary = None  # set lazily when some class is adversarial
        self._built = False
        self._ran = False
        self._processes: List[PeriodicProcess] = []
        # Live population accounting, mutated by spawn_peer/retire_peer.
        # Seeded from the resolved population so that with an empty
        # scenario the summary inputs are exactly the build-time sizes.
        self._classes_by_name: Dict[str, ResolvedPeerClass] = {
            cls.name: cls for cls in self.population
        }
        self._class_sizes: Dict[str, int] = class_sizes(self.population)
        self._num_sharers = sum(
            cls.count for cls in self.population if cls.behavior.shares
        )
        self._num_freeloaders = config.num_peers - self._num_sharers
        self._next_peer_id = config.num_peers
        self._policies: Dict[str, ExchangePolicy] = {}
        # Scenario overrides (mechanism ramps, capacity changes) aimed
        # at classes that do not exist yet — an inline arrival spec
        # whose first wave lands after the event; applied when the
        # class is first resolved.
        self._pending_class_overrides: Dict[str, Dict[str, object]] = {}

    # ------------------------------------------------------------------
    # runtime class registry (scenario layer)
    # ------------------------------------------------------------------
    @property
    def category_popularity(self) -> RankPopularity:
        """The global category rank distribution (set by :meth:`build`)."""
        return self._category_popularity

    def class_by_name(self, name: str) -> ResolvedPeerClass:
        """A runtime-addressable peer class: population or arrival spec."""
        return class_by_name(tuple(self._classes_by_name.values()), name)

    def note_class_override(self, name: str, **overrides: object) -> None:
        """A scenario event re-provisioned a class; later arrivals follow.

        A ramp or capacity change may legally target an arrival-spec
        class whose first wave has not landed yet — the overrides are
        parked and applied when :meth:`arrival_class` first resolves
        that class.
        """
        cls = self._classes_by_name.get(name)
        if cls is not None:
            self._classes_by_name[name] = dataclasses.replace(cls, **overrides)
        else:
            self._pending_class_overrides.setdefault(name, {}).update(overrides)

    def arrival_class(
        self, class_name: Optional[str], spec, count: int
    ) -> ResolvedPeerClass:
        """Resolve one arrival wave's class at the event's count.

        Named arrivals address the live registry (so a ramped or
        re-provisioned class arrives in its current shape).  Inline-spec
        arrivals also prefer the registry once the name is known — the
        first wave registers it — and apply any overrides that fired
        before the first wave landed.
        """
        from repro.population import resolve_spec

        known = self._classes_by_name.get(
            class_name if class_name is not None else spec.name
        )
        if known is not None:
            resolved = dataclasses.replace(known, count=count)
        elif spec is None:
            # validate_scenario orders named arrivals after the spec
            # waves that define their class, so this is unreachable
            # from a validated config — guard it with a clear error
            # rather than an AttributeError deep in resolution.
            raise SimulationError(
                f"arrival references class {class_name!r} before any "
                "spec wave defined it"
            )
        else:
            resolved = resolve_spec(spec, count, self.config)
        pending = self._pending_class_overrides.pop(resolved.name, None)
        if pending:
            resolved = dataclasses.replace(resolved, **pending)
        return resolved

    def policy_for(self, mechanism: str) -> ExchangePolicy:
        """The shared :class:`ExchangePolicy` instance for one mechanism
        string (one instance per mechanism for the whole run)."""
        policy = self._policies.get(mechanism)
        if policy is None:
            policy = parse_mechanism(mechanism)
            self._policies[mechanism] = policy
        return policy

    def _ensure_strategy_director(self) -> StrategyDirector:
        """The strategy director, created on first demand.

        Lazy because an arrival-spec class may be the first (or only)
        strategy-enabled class — the director then comes to life with
        the wave that needs it.  Creation order does not affect
        determinism: the ``"strategy"`` RNG stream is derived from its
        name, independently of every other stream.
        """
        if self.strategy is None:
            self.strategy = StrategyDirector(self)
        return self.strategy

    def _ensure_adversary_state(self):
        """The adversary bookkeeping, created on first enrollment.

        Lazy for the same reason as the strategy director: only configs
        with an adversarial peer class pay for it, and an honest run is
        bit-identical to a pre-adversary build (no state, no audit
        process, no events).  The first enrollment also starts the
        periodic cooperative-blacklist audit.
        """
        if self.adversary is None:
            from repro.security.adversaries import AdversaryState

            state = AdversaryState(self)
            self.adversary = state
            self.ctx.adversary = state
            # Detection is deliberately slower than serving: one audit
            # every four scan intervals, aligned (no stagger — the
            # audit draws no randomness and order is sorted-id).
            interval = self.config.scan_interval * 4.0
            audit = PeriodicProcess(
                self.ctx.engine,
                interval,
                state.audit,
                name="adversary.audit",
                start_delay=interval,
            )
            self.register_process(audit)
        return self.adversary

    def register_process(self, process: PeriodicProcess) -> None:
        """Track a periodic process so :meth:`run` stops it at the end."""
        self._processes.append(process)

    def note_behavior_change(self, peer: Peer) -> None:
        """Live sharer/freeloader accounting after a strategy switch.

        Class sizes are untouched — the peer stays in its population
        class; only the behaviour-derived split (used to normalize
        per-peer volumes) moves.
        """
        if peer.behavior.shares:
            self._num_sharers += 1
            self._num_freeloaders -= 1
        else:
            self._num_sharers -= 1
            self._num_freeloaders += 1

    # ------------------------------------------------------------------
    def build(self) -> SimContext:
        """Construct the whole system; idempotent guard against reuse."""
        if self._built:
            raise SimulationError("simulation already built")
        self._built = True
        config = self.config
        ctx = self.ctx
        rng = ctx.rng

        ctx.catalog = Catalog.build(
            rng,
            num_categories=config.num_categories,
            objects_per_category_min=config.objects_per_category_min,
            objects_per_category_max=config.objects_per_category_max,
            object_size_kbit=config.object_size_kbit,
        )
        ctx.lookup = LookupService(coverage=config.lookup_coverage)

        self._category_popularity = RankPopularity(
            config.num_categories, config.category_factor
        )
        self._placement_cache = PopularityCache()
        self._workload_cache = PopularityCache()

        class_of = assign_peer_classes(self.population, config.num_peers, rng)
        self._interest_rand = rng.stream("interests")
        self._placement_rand = rng.stream("placement")
        self._stagger = rng.stream("stagger")
        self._bootstrap_stagger = rng.stream("bootstrap")

        # Three passes (create, start processes, bootstrap) in exactly
        # the pre-scenario order: each named RNG stream and the engine's
        # event sequence numbers see the same consumption sequence, so
        # empty-scenario runs stay bit-identical across the refactor.
        for peer_id in range(config.num_peers):
            self._create_peer(peer_id, class_of[peer_id])
        for peer in ctx.peers.values():
            self._start_peer_processes(peer)
        window = config.bootstrap_window
        for peer in ctx.peers.values():
            delay = self._bootstrap_stagger.random() * window if window > 0 else 0.0
            self._schedule_bootstrap(peer, delay)

        if config.churn_enabled:
            from repro.network.churn import ChurnModel

            self.churn = ChurnModel(
                ctx,
                list(ctx.peers.values()),
                mean_online=config.churn_mean_online,
                mean_offline=config.churn_mean_offline,
                rand=rng.stream("churn"),
            )
        # The director schedules every timeline event up front.  An
        # empty scenario constructs nothing and consumes nothing.
        if config.scenario:
            self.scenario = ScenarioDirector(self)
        # The strategy director comes *after* the scenario director so
        # build-scheduled scenario events carry smaller engine sequence
        # numbers than any revision epoch: at equal timestamps, scenario
        # events (phases, shocks) always apply before revisions.  A
        # fully static population constructs nothing and consumes
        # nothing (bit-identical to pre-strategy builds).
        if any(not cls.strategy.is_static for cls in self.population):
            director = self._ensure_strategy_director()
            for peer_id in range(config.num_peers):
                director.enroll(ctx.peers[peer_id], class_of[peer_id].strategy)
        return ctx

    # ------------------------------------------------------------------
    # world-mutation primitives (build-time loop and scenario runtime)
    # ------------------------------------------------------------------
    def _create_peer(self, peer_id: int, peer_class: ResolvedPeerClass) -> Peer:
        """Wire one peer into the world: interests, store, placement,
        lookup registration and workload (no processes yet)."""
        config = self.config
        ctx = self.ctx
        rng = ctx.rng
        categories = rng.uniform_int(
            peer_class.categories_per_peer_min,
            peer_class.categories_per_peer_max,
            stream="peer-categories",
        )
        profile = build_interest_profile(
            ctx.catalog, self._category_popularity, self._interest_rand, categories
        )
        capacity = rng.uniform_int(
            peer_class.storage_min_objects,
            peer_class.storage_max_objects,
            stream="peer-storage",
        )
        store = ObjectStore(capacity)
        behavior = peer_class.behavior
        peer = Peer(
            ctx,
            peer_id,
            behavior,
            self.policy_for(peer_class.exchange_mechanism),
            profile,
            store,
            upload_capacity_kbit=peer_class.upload_capacity_kbit,
            download_capacity_kbit=peer_class.download_capacity_kbit,
            discipline=make_discipline(
                peer_class.service_discipline,
                peer_id,
                shares=behavior.shares,
                fake_participation=config.freeloaders_fake_participation,
            ),
            class_name=peer_class.name,
        )
        placed = place_objects_for_peer(
            ctx.catalog,
            profile,
            store,
            self._placement_rand,
            config.object_factor,
            self._placement_cache,
            fill_fraction=config.initial_fill_fraction,
        )
        if behavior.shares:
            for object_id in placed:
                ctx.lookup.register(peer_id, object_id)
        workload = RequestGenerator(
            ctx.catalog,
            profile,
            rng.stream(f"workload{peer_id}"),
            config.object_factor,
            is_known=self._make_is_known(peer),
            is_locatable=self._make_is_locatable(ctx),
            popularity_cache=self._workload_cache,
            max_miss_attempts=config.max_miss_attempts,
        )
        peer.attach_workload(workload)
        ctx.peers[peer_id] = peer
        if peer_class.adversary is not None:
            self._ensure_adversary_state().enroll(peer, peer_class)
        return peer

    def _start_peer_processes(self, peer: Peer) -> None:
        """Attach one peer's periodic scan/storage loops (staggered)."""
        config = self.config
        engine = self.ctx.engine
        # Attached to the peer as well so churn can pause the loops
        # while the peer is offline (an offline peer's scan/storage
        # ticks are pure event-heap churn).
        scan = PeriodicProcess(
            engine,
            config.scan_interval,
            peer.scan,
            name=f"scan.p{peer.peer_id}",
            start_delay=self._stagger.random() * config.scan_interval,
        )
        storage = PeriodicProcess(
            engine,
            config.storage_check_interval,
            peer.storage_check,
            name=f"storage.p{peer.peer_id}",
            start_delay=self._stagger.random() * config.storage_check_interval,
        )
        peer.attach_periodic(scan)
        peer.attach_periodic(storage)
        self._processes.extend((scan, storage))

    def _schedule_bootstrap(self, peer: Peer, delay: float) -> None:
        """Issue the peer's initial request burst after ``delay``."""
        self.ctx.engine.schedule(
            delay, peer.fill_pending, name=f"bootstrap.p{peer.peer_id}"
        )

    def spawn_peer(self, peer_class: ResolvedPeerClass) -> Peer:
        """A new peer joins the running world (scenario arrivals).

        Allocates the next peer id, wires the peer in exactly as the
        build loop does (interests, placement, workload — drawing from
        the same named RNG streams, continued), starts its periodic
        processes, and staggers its first request burst over the
        bootstrap window from *now*.
        """
        peer_id = self._next_peer_id
        self._next_peer_id += 1
        self._classes_by_name.setdefault(peer_class.name, peer_class)
        peer = self._create_peer(peer_id, peer_class)
        self._start_peer_processes(peer)
        window = self.config.bootstrap_window
        delay = self._bootstrap_stagger.random() * window if window > 0 else 0.0
        self._schedule_bootstrap(peer, delay)
        self._class_sizes[peer_class.name] = (
            self._class_sizes.get(peer_class.name, 0) + 1
        )
        if peer.behavior.shares:
            self._num_sharers += 1
        else:
            self._num_freeloaders += 1
        if self.churn is not None:
            self.churn.enroll(peer)
        if not peer_class.strategy.is_static:
            self._ensure_strategy_director().enroll(peer, peer_class.strategy)
        self.ctx.metrics.count("scenario.peer_joined")
        return peer

    def retire_peer(self, peer: Peer) -> None:
        """A peer leaves the running world permanently (departures).

        Runs the same audited teardown churn uses
        (:meth:`~repro.network.peer.Peer.disconnect`), then makes the
        departure irreversible: pending downloads are dropped, the
        periodic processes are stopped outright, and ``peer.departed``
        blocks any later reconnect (churn's or anyone else's).  The
        peer stays in the registry so ids remain resolvable.
        """
        if peer.departed:
            return
        peer.disconnect()  # no-op when churn already took it offline
        peer.departed = True
        peer.ctx.peer_table.set_departed(peer.peer_id)
        peer.pending.clear()
        for process in peer.periodic_processes:
            process.stop()
        self._class_sizes[peer.class_name] = max(
            0, self._class_sizes.get(peer.class_name, 0) - 1
        )
        if peer.behavior.shares:
            self._num_sharers -= 1
        else:
            self._num_freeloaders -= 1
        self.ctx.metrics.count("scenario.peer_left")

    @staticmethod
    def _make_is_known(peer: Peer):
        def is_known(object_id: int) -> bool:
            return object_id in peer.store or object_id in peer.pending

        return is_known

    @staticmethod
    def _make_is_locatable(ctx: SimContext):
        def is_locatable(object_id: int) -> bool:
            return ctx.lookup.provider_count(object_id) > 0

        return is_locatable

    # ------------------------------------------------------------------
    def run(self) -> SimulationResult:
        """Build (if needed), run to ``config.duration``, summarize."""
        if self._ran:
            raise SimulationError("simulation already ran; build a new one")
        if not self._built:
            self.build()
        self._ran = True
        # Wall-clock here measures the run for reporting only — it
        # never feeds simulation state, which advances on engine time.
        started = time.perf_counter()  # simlint: disable=DET003 -- sanctioned wall-time measurement of the run itself
        # The built world (peers, stores, catalog — millions of objects
        # at scale) is long-lived: freeze it out of the cyclic collector
        # so every mid-run full collection stops re-tracing it.  GC
        # timing is invisible to the simulation (no RNG, no scheduling),
        # so this cannot move the trajectory.
        gc.collect()
        gc.freeze()
        try:
            self.ctx.engine.run(until=self.config.duration)
        finally:
            gc.unfreeze()
        for process in self._processes:
            process.stop()
        wall = time.perf_counter() - started  # simlint: disable=DET003 -- sanctioned wall-time measurement of the run itself
        # Class sizes come from the live accounting, not the legacy
        # freeloader_fraction properties: scenario arrivals/departures
        # move them mid-run, and under an explicit population the
        # legacy properties say nothing about the actual split.  With
        # an empty scenario these are exactly the build-time values.
        adversary_classes = sorted(
            name
            for name, cls in self._classes_by_name.items()
            if cls.adversary is not None
        )
        summary = summarize(
            self.ctx.metrics,
            warmup=self.config.warmup,
            num_sharers=self._num_sharers,
            num_freeloaders=self._num_freeloaders,
            class_sizes=self._class_sizes,
            adversary_classes=adversary_classes or None,
        )
        return SimulationResult(
            config=self.config,
            summary=summary,
            metrics=self.ctx.metrics,
            events_fired=self.ctx.engine.events_fired,
            wall_seconds=wall,
            perf_counters=self.ctx.counters.snapshot(),
        )


def run_simulation(config: SimulationConfig) -> SimulationResult:
    """One-call convenience wrapper."""
    return FileSharingSimulation(config).run()


def run_summary(config: SimulationConfig) -> SimulationSummary:
    """Run one simulation and return only its summary.

    This is the pickle-safe entry point the experiment orchestrator
    ships to ``multiprocessing`` workers: the argument is a plain frozen
    dataclass and the return value is a plain dataclass of built-in
    types, so both cross process boundaries cheaply — unlike the full
    :class:`SimulationResult`, which drags the entire metrics record
    store with it.
    """
    return run_simulation(config).summary
