"""Discrete-event simulation substrate.

Provides the event engine (:class:`~repro.sim.engine.Engine`),
cancellable events (:class:`~repro.sim.events.Event`), periodic
processes (:func:`~repro.sim.processes.every`) and deterministic
random-stream management (:class:`~repro.sim.rng.RandomSource`).
"""

from repro.sim.engine import Engine
from repro.sim.events import Event
from repro.sim.processes import PeriodicProcess, every
from repro.sim.rng import RandomSource

__all__ = ["Engine", "Event", "PeriodicProcess", "RandomSource", "every"]
