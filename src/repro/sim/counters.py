"""Per-subsystem perf counters: event counts plus coarse wall timings.

The benchmark layer needs to attribute a throughput or RSS regression to
a *subsystem* (engine, IRQ, ring search, collector) instead of staring
at one wall-seconds number.  :class:`PerfCounters` is that attribution
channel: hot paths bump named integer counters and time coarse blocks,
and the bench harness publishes :meth:`PerfCounters.snapshot` into every
``BENCH_*.json``.

Design constraints:

* **Zero overhead when off.**  The default is disabled; every call site
  either guards on :attr:`PerfCounters.enabled` (hot loops hoist the
  check) or calls methods that return immediately on the flag.  A
  disabled counter set adds one predictable branch to the paths it
  instruments, nothing else.
* **No trajectory coupling.**  Counters read the wall clock only through
  the two sanctioned call sites below (DET003); values feed benchmark
  artifacts, never simulation state, RNG, or scheduling.  Enabling the
  counters cannot move a single event.
* **Deterministic publication.**  :meth:`snapshot` sorts keys, so two
  runs of the same build diff cleanly in the JSON artifacts.
"""

from __future__ import annotations

import time
from typing import Dict


class PerfCounters:
    """Named integer counters + accumulated wall-clock timings."""

    __slots__ = ("enabled", "counts", "timings")

    def __init__(self, enabled: bool = False) -> None:
        self.enabled = enabled
        #: name -> integer tally.  Public so hot loops can bind the dict
        #: once (inside an ``enabled`` guard) instead of paying a method
        #: call per bump.
        self.counts: Dict[str, int] = {}
        #: name -> accumulated seconds.
        self.timings: Dict[str, float] = {}

    # ------------------------------------------------------------------
    def bump(self, name: str, amount: int = 1) -> None:
        """Add ``amount`` to one named counter (no-op when disabled)."""
        if not self.enabled:
            return
        counts = self.counts
        counts[name] = counts.get(name, 0) + amount

    def clock(self) -> float:
        """A wall-clock token for :meth:`add_elapsed`; 0.0 when disabled.

        The only sanctioned wall-time reads of the counter layer live
        here and in :meth:`add_elapsed`: the values land in benchmark
        artifacts only and never feed simulation state.
        """
        if not self.enabled:
            return 0.0
        return time.perf_counter()  # simlint: disable=DET003 -- perf-counter timing channel; feeds BENCH artifacts, never simulation state

    def add_elapsed(self, name: str, token: float) -> None:
        """Accumulate time since ``token`` (from :meth:`clock`) under ``name``."""
        if not self.enabled:
            return
        elapsed = time.perf_counter() - token  # simlint: disable=DET003 -- perf-counter timing channel; feeds BENCH artifacts, never simulation state
        timings = self.timings
        timings[name] = timings.get(name, 0.0) + elapsed

    # ------------------------------------------------------------------
    def snapshot(self) -> Dict[str, object]:
        """JSON-ready view: sorted counts and timings (seconds, rounded).

        Returned even when disabled (all-empty), so benchmark records
        carry a ``counters`` block unconditionally and downstream guards
        can rely on its presence.
        """
        return {
            "enabled": self.enabled,
            "counts": {name: self.counts[name] for name in sorted(self.counts)},
            "timings_seconds": {
                name: round(self.timings[name], 6)
                for name in sorted(self.timings)
            },
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "on" if self.enabled else "off"
        return f"PerfCounters({state}, counts={len(self.counts)})"
