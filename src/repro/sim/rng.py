"""Deterministic random-stream management.

Simulations need *independent* random streams per concern (topology,
workload, storage eviction, ...) so that changing how many numbers one
subsystem draws does not perturb every other subsystem — otherwise a
sweep over, say, upload capacity would also silently re-randomize peer
interests and the curves would be noise, not signal.

:class:`RandomSource` wraps the root seed and hands out named
sub-streams derived with a stable hash, so ``RandomSource(7).stream("x")``
is the same sequence on every platform and Python version (we avoid
``hash()`` which is salted per-process).
"""

from __future__ import annotations

import hashlib
import random
from typing import Dict, Iterable, List, Sequence, TypeVar

T = TypeVar("T")


def _derive_seed(root_seed: int, name: str) -> int:
    """Stable 64-bit seed derived from a root seed and a stream name."""
    digest = hashlib.sha256(f"{root_seed}:{name}".encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big")


class RandomSource:
    """A root seed plus a registry of named, independent sub-streams."""

    def __init__(self, seed: int = 0) -> None:
        self.seed = int(seed)
        self._streams: Dict[str, random.Random] = {}

    def stream(self, name: str) -> random.Random:
        """Return (creating on first use) the sub-stream called ``name``."""
        stream = self._streams.get(name)
        if stream is None:
            stream = random.Random(_derive_seed(self.seed, name))
            self._streams[name] = stream
        return stream

    def spawn(self, name: str) -> "RandomSource":
        """A child source whose streams are independent of this one's."""
        return RandomSource(_derive_seed(self.seed, f"spawn:{name}"))

    # Convenience draws on the default stream -------------------------------
    def uniform_int(self, low: int, high: int, stream: str = "default") -> int:
        """Inclusive uniform integer draw, matching the paper's uniform(a,b)."""
        if low > high:
            raise ValueError(f"uniform_int bounds reversed: [{low}, {high}]")
        return self.stream(stream).randint(low, high)

    def choice(self, items: Sequence[T], stream: str = "default") -> T:
        """One uniformly drawn element of ``items``."""
        if not items:
            raise ValueError("cannot choose from an empty sequence")
        return self.stream(stream).choice(items)

    def sample(self, items: Sequence[T], k: int, stream: str = "default") -> List[T]:
        """``k`` distinct elements drawn without replacement."""
        return self.stream(stream).sample(items, k)

    def shuffled(self, items: Iterable[T], stream: str = "default") -> List[T]:
        """A shuffled copy of ``items`` (the input is untouched)."""
        result = list(items)
        self.stream(stream).shuffle(result)
        return result

    def random(self, stream: str = "default") -> float:
        """One uniform float in [0, 1)."""
        return self.stream(stream).random()

    def weighted_index(self, weights: Sequence[float], stream: str = "default") -> int:
        """Index drawn proportionally to ``weights`` (need not sum to 1).

        Implemented by inverse-CDF walk; raises :class:`ValueError` on
        empty or non-positive total weight because a silent fallback
        would skew popularity distributions undetectably.
        """
        total = 0.0
        for w in weights:
            if w < 0:
                raise ValueError(f"negative weight {w} in weighted_index")
            total += w
        if not weights or total <= 0.0:
            raise ValueError("weighted_index needs positive total weight")
        point = self.stream(stream).random() * total
        acc = 0.0
        for index, w in enumerate(weights):
            acc += w
            if point < acc:
                return index
        return len(weights) - 1  # floating-point edge: point == total

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"RandomSource(seed={self.seed}, streams={sorted(self._streams)})"
