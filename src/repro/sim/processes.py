"""Periodic processes on top of the event engine.

Peers run several recurring activities — IRQ scans for feasible
exchanges, storage-limit checks — which the paper describes as happening
"in regular intervals".  :class:`PeriodicProcess` packages the
schedule/fire/reschedule loop with clean cancellation semantics.
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.errors import SimulationError
from repro.sim.engine import Engine
from repro.sim.events import Event


class PeriodicProcess:
    """Fires ``callback`` every ``interval`` seconds until stopped.

    The first firing happens at ``start_delay`` (default: one full
    interval) so that, e.g., storage checks do not all run at t=0 before
    anything happened.  Pass ``jitter_fn`` to desynchronize the peers'
    scan phases — with 200 peers all scanning at the same instant the
    simulation would serialize ring formation artificially.
    """

    __slots__ = (
        "_engine",
        "_interval",
        "_callback",
        "_name",
        "_jitter_fn",
        "_event",
        "_stopped",
        "_paused",
        "_fired",
    )

    def __init__(
        self,
        engine: Engine,
        interval: float,
        callback: Callable[[], None],
        name: str = "periodic",
        start_delay: Optional[float] = None,
        jitter_fn: Optional[Callable[[], float]] = None,
    ) -> None:
        if interval <= 0:
            raise SimulationError(f"periodic interval must be positive, got {interval}")
        self._engine = engine
        self._interval = interval
        self._callback = callback
        self._name = name
        self._jitter_fn = jitter_fn
        self._event: Optional[Event] = None
        self._stopped = False
        self._paused = False
        self._fired = 0
        first = interval if start_delay is None else start_delay
        if jitter_fn is not None:
            first += jitter_fn()
        self._event = engine.schedule(max(0.0, first), self._fire, name=name)

    @property
    def fired(self) -> int:
        """Number of times the callback has run."""
        return self._fired

    @property
    def stopped(self) -> bool:
        """Whether the process was stopped for good."""
        return self._stopped

    @property
    def paused(self) -> bool:
        """Whether the process is paused (resumable, nothing scheduled)."""
        return self._paused

    @property
    def interval(self) -> float:
        """Seconds between firings."""
        return self._interval

    def stop(self) -> None:
        """Cancel the pending firing and stop rescheduling."""
        self._stopped = True
        self._paused = False
        if self._event is not None:
            self._event.cancel()
            self._event = None

    def pause(self) -> None:
        """Suspend firing without tearing the process down.

        The pending event is cancelled, so a paused process contributes
        *nothing* to the event heap — the point of pausing offline
        peers' scan/storage loops is exactly that their no-op ticks
        stop being scheduled at all.  Idempotent; a no-op once stopped.
        """
        if self._stopped or self._paused:
            return
        self._paused = True
        if self._event is not None:
            self._event.cancel()
            self._event = None

    def resume(self, start_delay: Optional[float] = None) -> None:
        """Resume a paused process.

        ``start_delay`` seconds until the next firing; None restarts
        the regular cadence (one interval, plus jitter if configured).
        Callers that staggered the original phases should pass a fresh
        stagger here — peers pausing together (e.g. a churn burst)
        would otherwise resume in phase.  Idempotent; a no-op unless
        paused.
        """
        if self._stopped or not self._paused:
            return
        self._paused = False
        delay = self._interval if start_delay is None else start_delay
        if start_delay is None and self._jitter_fn is not None:
            delay += self._jitter_fn()
        self._event = self._engine.schedule(max(0.0, delay), self._fire, name=self._name)

    def _fire(self) -> None:
        if self._stopped or self._paused:
            return
        self._fired += 1
        # Reschedule before invoking the callback so a callback that
        # raises still leaves the process alive for the next tick, and a
        # callback that calls stop() cancels the already-queued event.
        delay = self._interval
        if self._jitter_fn is not None:
            delay += self._jitter_fn()
        self._event = self._engine.schedule(max(0.0, delay), self._fire, name=self._name)
        self._callback()


def every(
    engine: Engine,
    interval: float,
    callback: Callable[[], None],
    name: str = "periodic",
    start_delay: Optional[float] = None,
) -> PeriodicProcess:
    """Shorthand constructor mirroring ``engine.schedule``'s shape."""
    return PeriodicProcess(engine, interval, callback, name=name, start_delay=start_delay)
