"""Cancellable simulation events.

An :class:`Event` wraps a zero-argument callback together with its fire
time and a monotonically increasing sequence number.  The sequence number
makes the store ordering total and deterministic: two events scheduled
for the same instant fire in the order they were scheduled, which keeps
runs reproducible under a fixed seed.  The ordering itself lives in the
engine's store entries — ``(time, seq, event)`` tuples — so events carry
no comparison methods of their own.

Cancellation is *eagerly indexed*: cancelling marks the event AND
notifies the owning engine, which keeps an exact live count and compacts
its store when cancelled entries pile up.  The engine clears the
back-reference when it pops an event to fire it, so a late cancel (a
transfer racing ring tear-down) stays a harmless no-op.
"""

from __future__ import annotations

from typing import Callable, Optional


class Event:
    """A scheduled callback in simulated time.

    Instances are created by :meth:`repro.sim.engine.Engine.schedule`;
    user code holds on to them only to call :meth:`cancel`.
    """

    __slots__ = ("time", "seq", "callback", "name", "engine", "_cancelled")

    def __init__(
        self,
        time: float,
        seq: int,
        callback: Callable[[], None],
        name: Optional[str] = None,
        engine: Optional[object] = None,
    ) -> None:
        self.time = time
        self.seq = seq
        self.callback = callback
        self.name = name or getattr(callback, "__name__", "event")
        #: Back-reference for eager cancellation accounting; the engine
        #: sets this to None when the event is popped to fire.
        self.engine = engine
        self._cancelled = False

    @property
    def cancelled(self) -> bool:
        """Whether :meth:`cancel` has been called on this event."""
        return self._cancelled

    def cancel(self) -> None:
        """Mark the event so the engine will skip it.

        Cancelling an already-cancelled or already-fired event is a
        harmless no-op; transfers race with ring tear-down and both
        sides may try to cancel the same block event.
        """
        if self._cancelled:
            return
        self._cancelled = True
        # Drop the callback reference so cancelled events do not keep
        # large object graphs (peers, transfers) alive inside the store.
        self.callback = _noop
        engine = self.engine
        if engine is not None:
            self.engine = None
            engine._note_cancelled()

    def fire(self) -> None:
        """Invoke the callback (the engine calls this; tests may too)."""
        self.callback()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "cancelled" if self._cancelled else "pending"
        return f"Event({self.name!r}, t={self.time:.3f}, seq={self.seq}, {state})"


def _noop() -> None:
    """Replacement callback for cancelled events."""
