"""Two-level bucketed discrete-event simulation engine.

The engine is deliberately minimal: a clock, a pending-event store and a
run loop.  Everything domain-specific (peers, transfers, rings) lives
above it and interacts with the engine only through
:meth:`Engine.schedule` / :meth:`Engine.schedule_at`.

The pending store is a calendar-style two-level structure instead of the
single binary heap it replaced:

* a **near-future ring** of ``ring_buckets`` buckets, each
  ``bucket_width`` simulated seconds wide and holding a small
  ``(time, seq, event)`` heap, covering the window the run loop is
  about to drain, and
* a **far-future heap** for everything beyond the ring's horizon,
  migrated into the ring as the cursor advances.

Per-event cost is therefore ``O(log bucket_occupancy)`` — a function of
event *density*, not of the total pending population: at 50k peers the
old heap held hundreds of thousands of entries and every push/pop paid
``O(log total)``.

Determinism guarantees (unchanged from the single-heap engine):

* events fire in exactly the ``(time, seq)`` total order — equal times
  fire in scheduling order — and the bucketing is provably
  order-identical to one big heap (see ``docs/DETERMINISM.md``), and
* the engine itself uses no randomness,

so a simulation driven by a seeded :class:`~repro.sim.rng.RandomSource`
replays exactly, event for event, across the scheduler generations.

Cancellation is **eagerly indexed**: every event knows its engine, so
:meth:`~repro.sim.events.Event.cancel` notifies the engine immediately
instead of leaving a tombstone for the run loop to trip over.  When
cancelled entries outnumber live ones (past a small floor) the engine
compacts the ring and the far heap in one sweep, so N cancellations cost
O(N) amortized regardless of how many events are pending.
"""

from __future__ import annotations

import heapq
import math
from typing import Callable, List, Optional, Tuple

from repro.errors import SchedulingError, SimulationError
from repro.sim.counters import PerfCounters
from repro.sim.events import Event

#: Default near-future ring geometry.  The width must be a (negative)
#: power of two: scaling a float by a power of two is exact, which makes
#: the bucket-index arithmetic in :meth:`Engine._migrate` provably safe
#: at the horizon boundary.  256 buckets x 1/64 s covers a 4 s window —
#: transfers and coalesced passes land in the ring, periodic scans and
#: storage checks wait in the far heap.
_RING_BUCKETS = 256
_BUCKET_WIDTH = 1.0 / 64.0

#: Cancelled entries tolerated before a compaction sweep may trigger
#: (it still requires cancelled > live).  Mirrors the IRQ's compaction
#: floor: tiny queues never pay a rebuild.
_PURGE_FLOOR = 64


class Engine:
    """Discrete-event scheduler with a floating-point clock in seconds.

    Buckets hold ``(time, seq, event)`` tuples rather than bare events:
    tuple comparison runs in C, and with millions of heap operations per
    run the Python-level ``Event.__lt__`` dispatch was a measurable
    slice of the whole simulation.  The ordering is (time, seq) — the
    same total order the single-heap engine implemented.
    """

    def __init__(
        self,
        start_time: float = 0.0,
        *,
        ring_buckets: int = _RING_BUCKETS,
        bucket_width: float = _BUCKET_WIDTH,
        counters: Optional[PerfCounters] = None,
    ) -> None:
        if ring_buckets < 1:
            raise SimulationError(f"ring_buckets must be >= 1, got {ring_buckets}")
        if bucket_width <= 0.0:
            raise SimulationError(f"bucket_width must be > 0, got {bucket_width}")
        mantissa, _exponent = math.frexp(bucket_width)
        if mantissa != 0.5:
            raise SimulationError(
                f"bucket_width must be a power of two, got {bucket_width} "
                "(exact float scaling keeps horizon arithmetic lossless)"
            )
        self._now = float(start_time)
        self._seq = 0
        self._fired = 0
        self._cancelled_skipped = 0
        self._purge_ops = 0
        self._compactions = 0
        self._running = False
        self._ring_len = int(ring_buckets)
        self._width = float(bucket_width)
        self._inv_width = 1.0 / self._width
        self._ring: List[List[Tuple[float, int, Event]]] = [
            [] for _ in range(self._ring_len)
        ]
        #: Absolute bucket number the run loop is draining; buckets below
        #: the cursor are empty forever.
        self._cursor = int(math.floor(self._now * self._inv_width))
        self._ring_count = 0
        self._far: List[Tuple[float, int, Event]] = []
        #: Pending non-cancelled events (the store may briefly hold more
        #: entries than this: cancelled ones awaiting purge).
        self._live = 0
        #: Cancelled entries still inside the ring / far heap.
        self._cancelled_pending = 0
        self.counters = counters if counters is not None else PerfCounters()

    # ------------------------------------------------------------------
    # clock
    # ------------------------------------------------------------------
    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    @property
    def events_fired(self) -> int:
        """Number of events executed so far (excludes cancelled skips)."""
        return self._fired

    @property
    def events_pending(self) -> int:
        """Number of events still stored (including cancelled ones)."""
        return self._ring_count + len(self._far)

    @property
    def cancelled_skipped(self) -> int:
        """Number of cancelled events discarded (scans + compactions)."""
        return self._cancelled_skipped

    @property
    def purge_ops(self) -> int:
        """Entries touched while discarding cancelled events.

        The cancellation-cost regression guard asserts this stays O(N)
        in the number of cancellations, independent of how many live
        events are pending around them.
        """
        return self._purge_ops

    @property
    def compactions(self) -> int:
        """Number of eager compaction sweeps performed."""
        return self._compactions

    # ------------------------------------------------------------------
    # scheduling
    # ------------------------------------------------------------------
    def schedule(
        self,
        delay: float,
        callback: Callable[[], None],
        name: Optional[str] = None,
    ) -> Event:
        """Schedule ``callback`` to fire ``delay`` seconds from now.

        Returns the :class:`Event`, which the caller may cancel.  A
        negative delay raises :class:`SchedulingError` — events in the
        past indicate a bookkeeping bug upstream, never a valid model.
        """
        if delay < 0:
            raise SchedulingError(
                f"cannot schedule {name or callback!r} {-delay:.6f}s in the past"
            )
        return self.schedule_at(self._now + delay, callback, name)

    def schedule_at(
        self,
        time: float,
        callback: Callable[[], None],
        name: Optional[str] = None,
    ) -> Event:
        """Schedule ``callback`` at absolute simulated ``time``."""
        if time < self._now:
            raise SchedulingError(
                f"cannot schedule {name or callback!r} at t={time:.6f} "
                f"before current time t={self._now:.6f}"
            )
        seq = self._seq
        event = Event(time, seq, callback, name, engine=self)
        bucket = int(time * self._inv_width)
        if time < 0.0 and bucket * self._width > time:
            bucket -= 1  # int() truncates toward zero; buckets floor
        if bucket < self._cursor:
            # Float-boundary safety: time >= now keeps (time, seq) order
            # inside the cursor bucket, and every earlier bucket is
            # already empty forever, so adopting the cursor bucket
            # cannot reorder anything (docs/DETERMINISM.md).
            bucket = self._cursor
        entry = (time, seq, event)
        if bucket - self._cursor < self._ring_len:
            heapq.heappush(self._ring[bucket % self._ring_len], entry)  # simlint: disable=SCH001 -- this IS the seq-tie-break API every other push must go through (near-future ring level)
            self._ring_count += 1
        else:
            heapq.heappush(self._far, entry)  # simlint: disable=SCH001 -- this IS the seq-tie-break API every other push must go through (far-future level)
        self._seq = seq + 1
        self._live += 1
        return event

    # ------------------------------------------------------------------
    # two-level store internals
    # ------------------------------------------------------------------
    def _migrate(self) -> None:
        """Pull far-heap events that now fall inside the ring horizon.

        With a power-of-two bucket width, ``t < horizon`` implies
        ``int(t * inv_width) <= cursor + ring_len - 1`` exactly (both
        sides scale by ``inv_width`` without rounding), so a migrated
        entry always lands inside the ring window.
        """
        far = self._far
        if not far:
            return
        horizon = (self._cursor + self._ring_len) * self._width
        if far[0][0] >= horizon:
            return
        ring = self._ring
        ring_len = self._ring_len
        cursor = self._cursor
        inv_width = self._inv_width
        while far and far[0][0] < horizon:
            entry = heapq.heappop(far)
            if entry[2]._cancelled:
                self._cancelled_pending -= 1
                self._cancelled_skipped += 1
                self._purge_ops += 1
                continue
            bucket = int(entry[0] * inv_width)
            if bucket < cursor:
                bucket = cursor
            heapq.heappush(ring[bucket % ring_len], entry)  # simlint: disable=SCH001 -- internal level migration: entries were stamped by schedule_at, (time, seq) payloads are preserved verbatim
            self._ring_count += 1

    def _current_slot(self) -> Optional[List[Tuple[float, int, Event]]]:
        """The bucket holding the next live event (head purged), or None.

        Advances the cursor over empty buckets; when the ring is empty
        the cursor jumps straight to the far heap's first bucket instead
        of walking the gap one bucket at a time.
        """
        ring = self._ring
        ring_len = self._ring_len
        while True:
            slot = ring[self._cursor % ring_len]
            while slot:
                if slot[0][2]._cancelled:
                    heapq.heappop(slot)
                    self._ring_count -= 1
                    self._cancelled_pending -= 1
                    self._cancelled_skipped += 1
                    self._purge_ops += 1
                    continue
                return slot
            if self._ring_count:
                self._cursor += 1
                self._migrate()
                continue
            far = self._far
            while far and far[0][2]._cancelled:
                heapq.heappop(far)
                self._cancelled_pending -= 1
                self._cancelled_skipped += 1
                self._purge_ops += 1
            if not far:
                return None
            bucket = int(far[0][0] * self._inv_width)
            if bucket > self._cursor:
                self._cursor = bucket
            self._migrate()

    def _note_cancelled(self) -> None:
        """Eager-cancellation hook called by :meth:`Event.cancel`.

        Keeps the live count exact and compacts the store once cancelled
        entries outnumber live ones (beyond a small floor), so mass
        cancellation never leaves an O(pending) tombstone field for the
        run loop to wade through.
        """
        self._live -= 1
        self._cancelled_pending += 1
        if (
            self._cancelled_pending >= _PURGE_FLOOR
            and self._cancelled_pending > self._live
        ):
            self._compact()

    def _compact(self) -> None:
        """Drop every cancelled entry from the ring and the far heap."""
        removed = 0
        ring = self._ring
        for index, slot in enumerate(ring):
            if not slot:
                continue
            kept = [entry for entry in slot if not entry[2]._cancelled]
            dropped = len(slot) - len(kept)
            if dropped:
                heapq.heapify(kept)
                ring[index] = kept
                removed += dropped
        self._ring_count -= removed
        far = self._far
        kept_far = [entry for entry in far if not entry[2]._cancelled]
        dropped_far = len(far) - len(kept_far)
        if dropped_far:
            heapq.heapify(kept_far)
            self._far = kept_far
        removed += dropped_far
        self._cancelled_skipped += removed
        self._cancelled_pending -= removed
        self._purge_ops += removed
        self._compactions += 1

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------
    def step(self) -> Optional[Event]:
        """Fire the next non-cancelled event; return it, or None if empty."""
        slot = self._current_slot()
        if slot is None:
            return None
        event = heapq.heappop(slot)[2]
        self._ring_count -= 1
        self._live -= 1
        event.engine = None  # fired: a late cancel must not re-account it
        self._now = event.time
        self._fired += 1
        event.fire()
        return event

    def run(self, until: Optional[float] = None, max_events: Optional[int] = None) -> int:
        """Run the event loop.

        Parameters
        ----------
        until:
            Stop once the next event would fire after this time; the
            clock is advanced to ``until`` (events *at* ``until`` fire)
            unless the loop stopped early on ``max_events`` with
            undrained events at or before ``until`` — advancing past
            those would let the clock move backwards on the next
            :meth:`step`/:meth:`run` and make :meth:`schedule_at`
            reject still-valid times.
        max_events:
            Safety valve for tests: stop after this many fired events.

        Returns the number of events fired by this call.  At least one
        of ``until`` / ``max_events`` must be given, otherwise the loop
        could only end by draining the store — usually a hang in a
        self-rescheduling simulation.
        """
        if until is None and max_events is None:
            raise SimulationError("run() needs an 'until' time or a max_events bound")
        if self._running:
            raise SimulationError("engine is already running (re-entrant run() call)")
        self._running = True
        fired = 0
        counters = self.counters
        counting = counters.enabled
        event_counts = counters.counts if counting else None
        heappop = heapq.heappop
        try:
            while self._live:
                if max_events is not None and fired >= max_events:
                    break
                slot = self._current_slot()
                if slot is None:
                    break
                head = slot[0][2]
                if until is not None and head.time > until:
                    break
                heappop(slot)
                self._ring_count -= 1
                self._live -= 1
                head.engine = None  # fired: a late cancel must not re-account it
                self._now = head.time
                self._fired += 1
                fired += 1
                if counting:
                    kind = head.name.partition(".")[0]
                    event_counts[kind] = event_counts.get(kind, 0) + 1  # type: ignore[union-attr]
                head.callback()  # inlined Event.fire(): once per event
        finally:
            self._running = False
        if counting:
            event_counts["engine.fired"] = (  # type: ignore[index]
                event_counts.get("engine.fired", 0) + fired  # type: ignore[union-attr]
            )
        if until is not None and self._now < until:
            next_time = self.peek_time()
            if next_time is None or next_time > until:
                self._now = until
        return fired

    def peek_time(self) -> Optional[float]:
        """Fire time of the next pending event, skipping cancelled ones."""
        slot = self._current_slot()
        if slot is None:
            return None
        return slot[0][0]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Engine(now={self._now:.3f}, pending={self.events_pending}, "
            f"fired={self._fired})"
        )
