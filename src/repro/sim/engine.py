"""Heap-based discrete-event simulation engine.

The engine is deliberately minimal: a clock, a binary heap of
:class:`~repro.sim.events.Event` objects and a run loop.  Everything
domain-specific (peers, transfers, rings) lives above it and interacts
with the engine only through :meth:`Engine.schedule` /
:meth:`Engine.schedule_at`.

Determinism guarantees:

* events at equal times fire in scheduling order (heap ties broken by a
  sequence number), and
* the engine itself uses no randomness,

so a simulation driven by a seeded :class:`~repro.sim.rng.RandomSource`
replays exactly.
"""

from __future__ import annotations

import heapq
from typing import Callable, List, Optional, Tuple

from repro.errors import SchedulingError, SimulationError
from repro.sim.events import Event


class Engine:
    """Discrete-event scheduler with a floating-point clock in seconds.

    The heap holds ``(time, seq, event)`` tuples rather than bare
    events: tuple comparison runs in C, and with millions of heap
    operations per run the Python-level ``Event.__lt__`` dispatch was
    a measurable slice of the whole simulation.  The ordering is
    unchanged — (time, seq) is exactly the total order ``__lt__``
    implements.
    """

    def __init__(self, start_time: float = 0.0) -> None:
        self._now = float(start_time)
        self._heap: List[Tuple[float, int, Event]] = []
        self._seq = 0
        self._fired = 0
        self._cancelled_skipped = 0
        self._running = False

    # ------------------------------------------------------------------
    # clock
    # ------------------------------------------------------------------
    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    @property
    def events_fired(self) -> int:
        """Number of events executed so far (excludes cancelled skips)."""
        return self._fired

    @property
    def events_pending(self) -> int:
        """Number of events still in the heap (including cancelled ones)."""
        return len(self._heap)

    @property
    def cancelled_skipped(self) -> int:
        """Number of cancelled events discarded while scanning the heap."""
        return self._cancelled_skipped

    # ------------------------------------------------------------------
    # scheduling
    # ------------------------------------------------------------------
    def schedule(
        self,
        delay: float,
        callback: Callable[[], None],
        name: Optional[str] = None,
    ) -> Event:
        """Schedule ``callback`` to fire ``delay`` seconds from now.

        Returns the :class:`Event`, which the caller may cancel.  A
        negative delay raises :class:`SchedulingError` — events in the
        past indicate a bookkeeping bug upstream, never a valid model.
        """
        if delay < 0:
            raise SchedulingError(
                f"cannot schedule {name or callback!r} {-delay:.6f}s in the past"
            )
        return self.schedule_at(self._now + delay, callback, name)

    def schedule_at(
        self,
        time: float,
        callback: Callable[[], None],
        name: Optional[str] = None,
    ) -> Event:
        """Schedule ``callback`` at absolute simulated ``time``."""
        if time < self._now:
            raise SchedulingError(
                f"cannot schedule {name or callback!r} at t={time:.6f} "
                f"before current time t={self._now:.6f}"
            )
        event = Event(time, self._seq, callback, name)
        heapq.heappush(self._heap, (time, self._seq, event))  # simlint: disable=SCH001 -- this IS the seq-tie-break API every other push must go through
        self._seq += 1
        return event

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------
    def step(self) -> Optional[Event]:
        """Fire the next non-cancelled event; return it, or None if empty."""
        while self._heap:
            event = heapq.heappop(self._heap)[2]
            if event.cancelled:
                self._cancelled_skipped += 1
                continue
            self._now = event.time
            self._fired += 1
            event.fire()
            return event
        return None

    def run(self, until: Optional[float] = None, max_events: Optional[int] = None) -> int:
        """Run the event loop.

        Parameters
        ----------
        until:
            Stop once the next event would fire after this time; the
            clock is advanced to ``until`` (events *at* ``until`` fire)
            unless the loop stopped early on ``max_events`` with
            undrained events at or before ``until`` — advancing past
            those would let the clock move backwards on the next
            :meth:`step`/:meth:`run` and make :meth:`schedule_at`
            reject still-valid times.
        max_events:
            Safety valve for tests: stop after this many fired events.

        Returns the number of events fired by this call.  At least one
        of ``until`` / ``max_events`` must be given, otherwise the loop
        could only end by draining the heap — usually a hang in a
        self-rescheduling simulation.
        """
        if until is None and max_events is None:
            raise SimulationError("run() needs an 'until' time or a max_events bound")
        if self._running:
            raise SimulationError("engine is already running (re-entrant run() call)")
        self._running = True
        fired = 0
        try:
            heap = self._heap
            while heap:
                if max_events is not None and fired >= max_events:
                    break
                head = heap[0][2]
                if head.cancelled:
                    heapq.heappop(heap)
                    self._cancelled_skipped += 1
                    continue
                if until is not None and head.time > until:
                    break
                heapq.heappop(heap)
                self._now = head.time
                self._fired += 1
                fired += 1
                head.callback()  # inlined Event.fire(): once per event
        finally:
            self._running = False
        if until is not None and self._now < until:
            next_time = self.peek_time()
            if next_time is None or next_time > until:
                self._now = until
        return fired

    def peek_time(self) -> Optional[float]:
        """Fire time of the next pending event, skipping cancelled ones."""
        while self._heap and self._heap[0][2].cancelled:
            heapq.heappop(self._heap)
            self._cancelled_skipped += 1
        if not self._heap:
            return None
        return self._heap[0][0]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Engine(now={self._now:.3f}, pending={len(self._heap)}, "
            f"fired={self._fired})"
        )
