"""Simulation configuration.

:class:`SimulationConfig` collects every knob of the system.  The
defaults reproduce the paper's Table II ("basic simulation parameters")
exactly; experiment sweeps override individual fields via
:meth:`SimulationConfig.replace`.

Fields are grouped as in the paper: population, link capacities, content
model, storage, request workload, and the exchange mechanism itself.
All validation happens eagerly in :meth:`validate` (called from
``__post_init__``) so a bad sweep fails before any simulation time is
spent.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from typing import Any, Dict, Optional, Tuple

from repro.errors import ConfigError
from repro.population import PeerClassSpec, ResolvedPeerClass
from repro.scenario import ScenarioEvent
from repro.strategy import StrategySpec
from repro.units import mb_to_kbit


@dataclass(frozen=True)
class SimulationConfig:
    """All parameters of one simulation run.  Defaults = paper Table II."""

    # ------------------------------------------------------------- population
    num_peers: int = 200
    freeloader_fraction: float = 0.5
    #: Declarative heterogeneous population (see :mod:`repro.population`).
    #: Empty means "derive a two-class sharer/freeloader population from
    #: the legacy global fields" — every pre-population config keeps
    #: working, bit-identically.  Non-empty specs may override the
    #: exchange mechanism, service discipline, link capacities, storage
    #: and interest breadth per class; ``None`` fields inherit the
    #: globals below.
    population: Tuple[PeerClassSpec, ...] = ()
    #: Declarative scenario timeline (see :mod:`repro.scenario`): timed
    #: events that mutate the world mid-run — peer arrivals and
    #: permanent departures, flash-crowd object injection, demand
    #: shifts, mechanism-adoption ramps, capacity changes, and named
    #: measurement phases.  Empty means the paper's closed system; an
    #: empty scenario consumes no RNG and replays pre-scenario runs
    #: bit-identically.
    scenario: Tuple[ScenarioEvent, ...] = ()
    #: Adaptive strategy dynamics (see :mod:`repro.strategy`): the
    #: default revision behaviour inherited by every peer class that
    #: does not declare its own :attr:`PeerClassSpec.strategy`.
    #: ``None`` (and the explicit ``static`` spec) keep the paper's
    #: fixed populations — no revision events, no RNG consumed,
    #: bit-identical to pre-strategy runs.
    strategy: Optional[StrategySpec] = None

    # ------------------------------------------------------------------ links
    download_capacity_kbit: float = 800.0
    upload_capacity_kbit: float = 80.0
    slot_kbit: float = 10.0

    # ---------------------------------------------------------------- content
    num_categories: int = 300
    objects_per_category_min: int = 1
    objects_per_category_max: int = 300
    categories_per_peer_min: int = 1
    categories_per_peer_max: int = 8
    category_factor: float = 0.2
    object_factor: float = 0.2
    object_size_mb: float = 20.0

    # ---------------------------------------------------------------- storage
    storage_min_objects: int = 5
    storage_max_objects: int = 40
    storage_check_interval: float = 500.0
    initial_fill_fraction: float = 1.0

    # --------------------------------------------------------------- workload
    max_pending: int = 6
    irq_capacity: int = 1000
    request_fanout: int = 5
    lookup_coverage: float = 1.0
    #: Abandon a pending download after this many consecutive scans in
    #: which no provider could be located (the object left the network,
    #: e.g. every copy was evicted).  Frees the pending slot for a
    #: locatable request, like a user cancelling a dead download.
    abandon_after_lookup_failures: int = 5
    #: Candidate draws per request before the workload generator gives
    #: up for this instant (was a hardcoded module constant).
    #: Arrival-heavy scenarios over sparse catalogs need more attempts
    #: to find a locatable miss than the closed-world default.
    max_miss_attempts: int = 200

    # -------------------------------------------------------------- mechanism
    exchange_mechanism: str = "2-5-way"
    #: Non-exchange upload scheduling: "fifo" (the paper's model),
    #: "credit" (eMule queue-rank baseline) or "participation"
    #: (KaZaA claimed-level baseline).
    scheduler_mode: str = "fifo"
    #: Under the participation baseline, free-riders claim the maximum
    #: level (the trivial KaZaA hack the paper cites).
    freeloaders_fake_participation: bool = True
    ring_break_policy: str = "terminate"  # or "downgrade"
    scan_interval: float = 30.0
    #: How often a peer re-publishes its request tree on its outgoing
    #: registered requests (the paper's §V incremental tree updates).
    tree_refresh_interval: float = 60.0
    serve_partial: bool = False  # §V extension: serve chunks of incomplete objects
    max_tree_nodes: int = 128  # engineering bound on attached request trees
    #: Back-off before a peer whose workload found no requestable object
    #: tries drawing candidates again.
    workload_retry_interval: float = 240.0

    # ------------------------------------------------------------------ churn
    #: Extension: alternate peers between online/offline sessions (the
    #: paper keeps everyone online; disconnects only appear as a
    #: ring-break reason).  Durations are exponential with these means.
    churn_enabled: bool = False
    churn_mean_online: float = 20_000.0
    churn_mean_offline: float = 2_000.0

    # ------------------------------------------------------------- simulation
    duration: float = 60_000.0
    warmup: float = 6_000.0
    block_size_kbit: float = 4096.0
    bootstrap_window: float = 60.0
    seed: int = 42
    #: Metrics storage backend: "columnar" (numpy struct-of-arrays, the
    #: default — constant per-record cost and ~4x smaller resident
    #: records at scale) or "dataclass" (one frozen record object per
    #: measurement, the historical layout).  The two backends produce
    #: byte-identical summaries; the knob exists for dependency-light
    #: embedding and for the equivalence tests.
    metrics_backend: str = "columnar"
    #: Metrics retention policy: "full" (every record row stays resident
    #: and queryable — the historical behaviour and the default) or
    #: "streaming" (columnar backend only: frozen 4096-row chunks fold
    #: into running aggregates and are released, so metrics memory is
    #: flat in run length).  Streaming serves exactly the summary-input
    #: queries, byte-identically to full retention; record-level views
    #: raise.  Incompatible with adaptive strategy dynamics, which
    #: replay raw record rows.
    metrics_retention: str = "full"
    #: Enable the per-subsystem perf-counter layer (see
    #: :mod:`repro.sim.counters`).  Off by default: counters feed
    #: benchmark artifacts only and never affect the trajectory, but the
    #: bump branches are not entirely free, so figure runs leave them
    #: disabled.
    perf_counters: bool = False

    # ------------------------------------------------------------------ extra
    extra: Dict[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        # Accept lists (e.g. from JSON round-trips) but store tuples so
        # the config stays hashable and its dict form deterministic.
        if not isinstance(self.population, tuple):
            object.__setattr__(self, "population", tuple(self.population))
        if not isinstance(self.scenario, tuple):
            object.__setattr__(self, "scenario", tuple(self.scenario))
        self.validate()

    # ------------------------------------------------------------------
    # derived quantities
    # ------------------------------------------------------------------
    @property
    def object_size_kbit(self) -> float:
        """Object size in kbit (the paper quotes sizes in MB)."""
        return mb_to_kbit(self.object_size_mb)

    @property
    def upload_slots(self) -> int:
        """Upload slots per peer at the global link capacity."""
        return int(self.upload_capacity_kbit // self.slot_kbit)

    @property
    def download_slots(self) -> int:
        """Download slots per peer at the global link capacity."""
        return int(self.download_capacity_kbit // self.slot_kbit)

    @property
    def blocks_per_object(self) -> int:
        """Blocks per (paper-default-size) object, rounding the last up."""
        size = self.object_size_kbit
        return max(1, int(-(-size // self.block_size_kbit)))

    @property
    def block_seconds(self) -> float:
        """Seconds to move one block through one slot."""
        return self.block_size_kbit / self.slot_kbit

    @property
    def num_freeloaders(self) -> int:
        """Free-rider count implied by ``freeloader_fraction`` (rounded)."""
        return int(round(self.num_peers * self.freeloader_fraction))

    @property
    def num_sharers(self) -> int:
        """Sharer count: whatever the free-riders leave of ``num_peers``."""
        return self.num_peers - self.num_freeloaders

    # ------------------------------------------------------------------
    # validation / mutation
    # ------------------------------------------------------------------
    def validate(self) -> None:
        """Raise :class:`ConfigError` on the first invalid field."""
        checks: Tuple[Tuple[bool, str], ...] = (
            (self.num_peers >= 2, f"num_peers must be >= 2, got {self.num_peers}"),
            (
                0.0 <= self.freeloader_fraction <= 1.0,
                f"freeloader_fraction must be in [0,1], got {self.freeloader_fraction}",
            ),
            (self.slot_kbit > 0, f"slot_kbit must be positive, got {self.slot_kbit}"),
            (
                self.upload_capacity_kbit >= self.slot_kbit,
                "upload capacity smaller than one slot "
                f"({self.upload_capacity_kbit} < {self.slot_kbit})",
            ),
            (
                self.download_capacity_kbit >= self.slot_kbit,
                "download capacity smaller than one slot "
                f"({self.download_capacity_kbit} < {self.slot_kbit})",
            ),
            (self.num_categories > 0, "num_categories must be positive"),
            (
                0 < self.objects_per_category_min <= self.objects_per_category_max,
                "objects_per_category range invalid: "
                f"[{self.objects_per_category_min}, {self.objects_per_category_max}]",
            ),
            (
                0 < self.categories_per_peer_min <= self.categories_per_peer_max,
                "categories_per_peer range invalid: "
                f"[{self.categories_per_peer_min}, {self.categories_per_peer_max}]",
            ),
            (self.category_factor >= 0, "category_factor must be >= 0"),
            (self.object_factor >= 0, "object_factor must be >= 0"),
            (self.object_size_mb > 0, "object_size_mb must be positive"),
            (
                0 < self.storage_min_objects <= self.storage_max_objects,
                "storage capacity range invalid: "
                f"[{self.storage_min_objects}, {self.storage_max_objects}]",
            ),
            (self.storage_check_interval > 0, "storage_check_interval must be positive"),
            (
                0.0 <= self.initial_fill_fraction <= 1.0,
                f"initial_fill_fraction must be in [0,1], got {self.initial_fill_fraction}",
            ),
            (self.max_pending >= 1, f"max_pending must be >= 1, got {self.max_pending}"),
            (self.irq_capacity >= 1, "irq_capacity must be >= 1"),
            (self.request_fanout >= 1, "request_fanout must be >= 1"),
            (
                self.abandon_after_lookup_failures >= 1,
                "abandon_after_lookup_failures must be >= 1",
            ),
            (
                self.max_miss_attempts >= 1,
                f"max_miss_attempts must be >= 1, got {self.max_miss_attempts}",
            ),
            (
                0.0 < self.lookup_coverage <= 1.0,
                f"lookup_coverage must be in (0,1], got {self.lookup_coverage}",
            ),
            (
                self.ring_break_policy in ("terminate", "downgrade"),
                f"unknown ring_break_policy {self.ring_break_policy!r}",
            ),
            (
                self.scheduler_mode in ("fifo", "credit", "participation"),
                f"unknown scheduler_mode {self.scheduler_mode!r}",
            ),
            (self.scan_interval > 0, "scan_interval must be positive"),
            (self.tree_refresh_interval > 0, "tree_refresh_interval must be positive"),
            (self.max_tree_nodes >= 1, "max_tree_nodes must be >= 1"),
            (
                self.workload_retry_interval >= 0,
                "workload_retry_interval must be >= 0",
            ),
            (
                self.churn_mean_online > 0 and self.churn_mean_offline > 0,
                "churn session means must be positive",
            ),
            (self.duration > 0, "duration must be positive"),
            (
                0.0 <= self.warmup < self.duration,
                f"warmup must be in [0, duration), got {self.warmup}",
            ),
            (self.block_size_kbit > 0, "block_size_kbit must be positive"),
            (self.bootstrap_window >= 0, "bootstrap_window must be >= 0"),
            (
                self.metrics_backend in ("dataclass", "columnar"),
                f"unknown metrics_backend {self.metrics_backend!r}",
            ),
            (
                self.metrics_retention in ("full", "streaming"),
                f"unknown metrics_retention {self.metrics_retention!r}",
            ),
        )
        for ok, message in checks:
            if not ok:
                raise ConfigError(message)
        if self.metrics_retention == "streaming":
            if self.metrics_backend != "columnar":
                raise ConfigError(
                    "metrics_retention='streaming' requires the columnar "
                    f"backend, got metrics_backend={self.metrics_backend!r}"
                )
            # The strategy layer replays raw record rows each revision
            # epoch (``*_rows_since``); streaming retention releases
            # them, so the combination cannot work.
            dynamic = self.strategy is not None and not self.strategy.is_static
            dynamic = dynamic or any(
                spec.strategy is not None and not spec.strategy.is_static
                for spec in self.population
            )
            if dynamic:
                raise ConfigError(
                    "metrics_retention='streaming' is incompatible with "
                    "adaptive strategy dynamics: revision epochs replay "
                    "raw record rows, which streaming retention releases"
                )
        # Mechanism strings are validated by the policy factory; import
        # locally to avoid a circular dependency at module load.
        from repro.core.policies import parse_mechanism

        parse_mechanism(self.exchange_mechanism)
        if self.strategy is not None:
            if not isinstance(self.strategy, StrategySpec):
                raise ConfigError(
                    "strategy must be a StrategySpec, got "
                    f"{type(self.strategy).__name__}"
                )
            self.strategy.validate()
        # Population specs (or the derived legacy two-class split) must
        # resolve to exact per-class counts covering every peer.
        from repro.population import resolve_population

        resolve_population(self)
        # Scenario events are validated against the resolved classes and
        # content model (imported locally for the same layering reason).
        from repro.scenario import validate_scenario

        validate_scenario(self)

    def resolved_population(self) -> Tuple[ResolvedPeerClass, ...]:
        """Concrete per-class rows (see :func:`repro.population.resolve_population`)."""
        from repro.population import resolve_population

        return resolve_population(self)

    def replace(self, **overrides: Any) -> "SimulationConfig":
        """A new config with the given fields overridden (re-validated)."""
        return dataclasses.replace(self, **overrides)

    def to_dict(self) -> Dict[str, Any]:
        """Every field as a JSON-safe dict, in declaration order.

        The experiment orchestrator hashes this to key its on-disk
        result cache, so the representation must be deterministic: same
        config → same dict → same fingerprint across processes.
        """
        return dataclasses.asdict(self)

    def describe(self) -> str:
        """Multi-line human-readable dump (mirrors the paper's Table II)."""
        lines = ["SimulationConfig:"]
        for f in dataclasses.fields(self):
            lines.append(f"  {f.name} = {getattr(self, f.name)!r}")
        return "\n".join(lines)
