"""repro — exchange-based incentive mechanisms for P2P file sharing.

A faithful, laptop-scale reproduction of Anagnostakis & Greenwald,
"Exchange-Based Incentive Mechanisms for Peer-to-Peer File Sharing"
(ICDCS 2004 / UPenn TR MS-CIS-03-27): a discrete-event simulator of a
slot-based file-sharing network in which peers give absolute priority to
pairwise and n-way ring exchanges, plus the request-tree search, token
validation, cheating analysis and every experiment of the paper's
evaluation section.

Quickstart::

    from repro import SimulationConfig, run_simulation

    result = run_simulation(SimulationConfig(exchange_mechanism="2-5-way"))
    print(result.summary.speedup_sharers_vs_freeloaders)
"""

from repro.config import SimulationConfig
from repro.context import SimContext
from repro.core.policies import (
    ExchangePolicy,
    LongestFirstPolicy,
    NoExchangePolicy,
    PairwiseOnlyPolicy,
    ShortestFirstPolicy,
    parse_mechanism,
)
from repro.errors import (
    CapacityError,
    ConfigError,
    MetricsError,
    ProtocolError,
    ReproError,
    RingError,
    SchedulingError,
    SimulationError,
    StorageError,
    TokenValidationFailed,
)
from repro.metrics.records import (
    DownloadRecord,
    SessionRecord,
    TerminationReason,
    TrafficClass,
)
from repro.metrics.summary import SimulationSummary
from repro.population import PeerClassSpec
from repro.scenario import (
    CapacityChange,
    DemandShift,
    FlashCrowd,
    MechanismRamp,
    PeerArrival,
    PeerDeparture,
    Phase,
    ScenarioDirector,
    StrategyShock,
)
from repro.simulation import FileSharingSimulation, SimulationResult, run_simulation
from repro.strategy import STRATEGY_RULES, StrategyDirector, StrategySpec

__version__ = "1.3.0"

__all__ = [
    "CapacityChange",
    "CapacityError",
    "ConfigError",
    "DemandShift",
    "DownloadRecord",
    "ExchangePolicy",
    "FileSharingSimulation",
    "FlashCrowd",
    "LongestFirstPolicy",
    "MechanismRamp",
    "MetricsError",
    "NoExchangePolicy",
    "PairwiseOnlyPolicy",
    "PeerArrival",
    "PeerClassSpec",
    "PeerDeparture",
    "Phase",
    "ProtocolError",
    "ReproError",
    "RingError",
    "ScenarioDirector",
    "SchedulingError",
    "SessionRecord",
    "ShortestFirstPolicy",
    "SimContext",
    "SimulationConfig",
    "SimulationError",
    "SimulationResult",
    "SimulationSummary",
    "StorageError",
    "STRATEGY_RULES",
    "StrategyDirector",
    "StrategyShock",
    "StrategySpec",
    "TerminationReason",
    "TokenValidationFailed",
    "TrafficClass",
    "__version__",
    "parse_mechanism",
    "run_simulation",
]
