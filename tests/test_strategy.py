"""Adaptive strategy dynamics: validation, switching, determinism,
equilibria and the scenario/strategy tie-break contract."""

from __future__ import annotations

import json
import os

import pytest

from repro.errors import ConfigError
from repro.experiments.presets import evolution_config, evolution_strategy, preset
from repro.metrics.records import StrategyEpochRecord, TerminationReason
from repro.population import PeerClassSpec
from repro.scenario import PeerArrival, Phase, StrategyShock
from repro.simulation import FileSharingSimulation, run_simulation
from repro.strategy import STATIC, STRATEGY_RULES, StrategySpec

from tests.helpers import build_peer, give, make_ctx, small_config

GOLDEN_DIR = os.path.join(os.path.dirname(__file__), "golden")


def dynamic_spec(**overrides):
    """A fast-revising spec for small test runs."""
    fields = dict(
        rule="best-response",
        revision_period=1000.0,
        window=3000.0,
        start=0.0,
        revision_probability=0.5,
        sharing_cost=4.0,
    )
    fields.update(overrides)
    return StrategySpec(**fields)


class TestSpecValidation:
    def test_default_is_static(self):
        assert STATIC.is_static
        assert StrategySpec().is_static
        assert not dynamic_spec().is_static

    def test_unknown_rule_rejected(self):
        with pytest.raises(ConfigError, match="unknown strategy rule"):
            StrategySpec(rule="tit-for-tat").validate()

    def test_all_declared_rules_accepted(self):
        for rule in STRATEGY_RULES:
            StrategySpec(rule=rule).validate()

    def test_bad_numbers_rejected(self):
        for overrides, match in (
            (dict(revision_period=0.0), "revision_period"),
            (dict(window=-1.0), "window"),
            (dict(start=-5.0), "start"),
            (dict(revision_probability=0.0), "revision_probability"),
            (dict(payoff_sensitivity=0.0), "payoff_sensitivity"),
            (dict(epsilon=1.5), "epsilon"),
            (dict(sharing_cost=-1.0), "sharing_cost"),
            (dict(exchange_weight=float("inf")), "exchange_weight"),
        ):
            with pytest.raises(ConfigError, match=match):
                StrategySpec(**overrides).validate()

    def test_config_validates_strategy(self):
        with pytest.raises(ConfigError, match="unknown strategy rule"):
            small_config(strategy=StrategySpec(rule="nope"))
        with pytest.raises(ConfigError, match="StrategySpec"):
            small_config(strategy="best-response")

    def test_class_spec_validates_strategy(self):
        with pytest.raises(ConfigError, match="StrategySpec"):
            small_config(
                population=(
                    PeerClassSpec(name="a", strategy="imitate"),  # type: ignore[arg-type]
                )
            )

    def test_class_strategy_inherits_global(self):
        spec = dynamic_spec()
        config = small_config(strategy=spec)
        for cls in config.resolved_population():
            assert cls.strategy == spec
        # Explicit per-class strategy wins over the global.
        config = small_config(
            strategy=spec,
            population=(
                PeerClassSpec(name="fixed", strategy=STATIC),
                PeerClassSpec(name="adaptive", fraction=0.5),
            ),
        )
        resolved = {cls.name: cls.strategy for cls in config.resolved_population()}
        assert resolved["fixed"].is_static
        assert resolved["adaptive"] == spec


class TestStaticBitIdentical:
    """Extends the PR 4 golden pins: a *static* strategy config replays
    the pre-strategy closed system exactly."""

    def _golden(self):
        path = os.path.join(GOLDEN_DIR, "fig7_smoke_seed42_meta.json")
        with open(path, encoding="utf-8") as handle:
            return json.load(handle)

    def test_explicit_static_spec_matches_golden_event_count(self):
        golden = self._golden()
        config = preset(
            "smoke", exchange_mechanism="2-5-way", seed=42, strategy=StrategySpec()
        )
        result = run_simulation(config)
        assert result.events_fired == golden["events_fired"]
        assert len(result.metrics.sessions) == golden["sessions"]
        assert len(result.metrics.downloads) == golden["downloads"]
        assert result.summary.sharing_fraction_by_epoch == []
        assert result.summary.equilibrium_sharing_fraction is None
        assert result.summary.strategy_switches == 0

    def test_static_config_builds_no_director(self):
        sim = FileSharingSimulation(small_config(strategy=StrategySpec()))
        sim.build()
        assert sim.strategy is None

    def test_static_and_absent_strategy_differ_only_in_fingerprint_input(self):
        # Same simulation outcome; the orchestrator cache key may differ
        # (the explicit spec is part of the config dump) but None stays
        # the canonical default form.
        assert small_config().to_dict()["strategy"] is None
        dumped = small_config(strategy=StrategySpec()).to_dict()
        assert dumped["strategy"]["rule"] == "static"


class TestSetSharing:
    def test_freeloader_convert_registers_store(self):
        ctx = make_ctx()
        peer = build_peer(ctx, 0, shares=False)
        give(ctx, peer, 0)
        assert ctx.lookup.provider_count(0) == 0
        assert peer.set_sharing(True)
        assert peer.behavior.shares
        assert ctx.lookup.providers(0) == {0}
        assert not peer.set_sharing(True)  # idempotent

    def test_sharer_convert_withdraws_service(self):
        ctx = make_ctx()
        provider = build_peer(ctx, 0)
        requester = build_peer(ctx, 1)
        give(ctx, provider, 0)
        download = requester.start_download(ctx.catalog.object(0))
        ctx.engine.run(until=5.0)  # serving begins
        assert provider.active_uploads()
        assert provider.set_sharing(False)
        assert not provider.behavior.shares
        assert not provider.active_uploads()
        assert ctx.lookup.provider_count(0) == 0
        assert len(provider.irq) == 0
        assert 0 not in download.registered_at or not download.registered_at
        reasons = {s.reason for s in ctx.metrics.sessions}
        assert TerminationReason.STOPPED_SHARING in reasons

    def test_convert_keeps_downloading(self):
        ctx = make_ctx()
        provider = build_peer(ctx, 0)
        requester = build_peer(ctx, 1)
        give(ctx, provider, 0)
        download = requester.start_download(ctx.catalog.object(0))
        requester.set_sharing(False)  # was a sharer, turns free-rider
        ctx.engine.run(until=5000.0)
        assert download.completed

    def test_offline_convert_defers_to_reconnect(self):
        ctx = make_ctx()
        peer = build_peer(ctx, 0)
        give(ctx, peer, 0)
        peer.disconnect()
        assert peer.set_sharing(False)
        peer.reconnect()
        # Reconnected as a free-rider: the store stays unpublished.
        assert peer.online and not peer.behavior.shares
        assert ctx.lookup.provider_count(0) == 0
        peer.set_sharing(True)
        assert ctx.lookup.providers(0) == {0}


class TestDynamicsRun:
    def test_switches_happen_and_are_deterministic(self):
        config = small_config(
            strategy=dynamic_spec(), duration=12_000.0, warmup=2_000.0, seed=7
        )
        first = run_simulation(config)
        second = run_simulation(config)
        assert first.summary.strategy_switches > 0
        assert first.events_fired == second.events_fired
        assert (
            first.summary.sharing_fraction_by_epoch
            == second.summary.sharing_fraction_by_epoch
        )
        assert first.summary.to_dict() == second.summary.to_dict()

    def test_all_rules_run(self):
        for rule in ("best-response", "imitate", "epsilon-greedy"):
            config = small_config(
                strategy=dynamic_spec(rule=rule),
                duration=8_000.0,
                warmup=2_000.0,
                seed=11,
            )
            summary = run_simulation(config).summary
            assert summary.sharing_fraction_by_epoch, rule
            assert summary.equilibrium_sharing_fraction is not None, rule

    def test_epoch_records_and_summary_fields_consistent(self):
        config = small_config(
            strategy=dynamic_spec(), duration=10_000.0, warmup=2_000.0, seed=7
        )
        result = run_simulation(config)
        epochs = result.metrics.strategy_epochs
        assert epochs
        assert [e.epoch for e in epochs] == list(range(1, len(epochs) + 1))
        assert all(e.enrolled == config.num_peers for e in epochs)
        summary = result.summary
        assert summary.final_sharing_fraction == epochs[-1].sharing_fraction
        assert len(summary.sharing_fraction_by_epoch) == len(epochs)
        assert summary.counters["strategy.epoch"] == len(epochs)

    def test_per_class_strategy_only_enrolls_that_class(self):
        config = small_config(
            population=(
                PeerClassSpec(name="fixed", behavior="sharer"),
                PeerClassSpec(
                    name="adaptive",
                    behavior="freeloader",
                    fraction=0.5,
                    strategy=dynamic_spec(),
                ),
            ),
            duration=6_000.0,
            warmup=1_000.0,
        )
        sim = FileSharingSimulation(config)
        result = sim.run()
        assert sim.strategy is not None
        adaptive = sum(
            1 for p in sim.ctx.peers.values() if p.class_name == "adaptive"
        )
        assert sim.strategy.enrolled_count == adaptive
        for epoch in result.metrics.strategy_epochs:
            assert epoch.enrolled == adaptive


class TestStrategyShock:
    def test_shock_validation(self):
        spec = dynamic_spec()
        with pytest.raises(ConfigError, match="changes nothing"):
            small_config(strategy=spec, scenario=(StrategyShock(100.0),))
        with pytest.raises(ConfigError, match="flip_fraction"):
            small_config(
                strategy=spec, scenario=(StrategyShock(100.0, flip_fraction=2.0),)
            )
        with pytest.raises(ConfigError, match="duration"):
            small_config(
                strategy=spec, scenario=(StrategyShock(100.0, payoff_bias=5.0),)
            )
        with pytest.raises(ConfigError, match="static population"):
            small_config(scenario=(StrategyShock(100.0, flip_fraction=0.5),))

    def test_flip_shock_flips_peers(self):
        config = small_config(
            strategy=dynamic_spec(revision_period=50_000.0),  # no epochs fire
            scenario=(StrategyShock(1_000.0, flip_fraction=1.0),),
            duration=2_000.0,
            warmup=500.0,
        )
        sim = FileSharingSimulation(config)
        result = sim.run()
        flips = result.summary.counters["strategy.shock_flip"]
        assert flips == config.num_peers
        sharers = sum(1 for p in sim.ctx.peers.values() if p.behavior.shares)
        # The initial split inverted: ex-freeloaders now share.
        assert sharers == config.num_freeloaders

    def test_bias_shock_forces_direction(self):
        base = dict(duration=8_000.0, warmup=1_000.0, seed=7)
        spec = dynamic_spec()  # huge bias saturates proportional switching
        subsidized = small_config(
            strategy=spec,
            scenario=(
                StrategyShock(1_500.0, payoff_bias=1e6, duration=1e5),
            ),
            **base,
        )
        scared = small_config(
            strategy=spec,
            scenario=(
                StrategyShock(1_500.0, payoff_bias=-1e6, duration=1e5),
            ),
            **base,
        )
        up = run_simulation(subsidized).summary
        down = run_simulation(scared).summary
        assert up.final_sharing_fraction > down.final_sharing_fraction

    def test_shock_without_live_director_is_noop(self):
        # The only strategy-enabled class arrives after the shock: the
        # shock fires into a world with no director yet.
        config = small_config(
            scenario=(
                StrategyShock(100.0, flip_fraction=1.0),
                # The arrival wave that makes the config strategy-enabled.
                PeerArrival(
                    5_000.0,
                    count=2,
                    spec=PeerClassSpec(name="late", strategy=dynamic_spec()),
                ),
            ),
            duration=2_000.0,  # ends before the wave lands
            warmup=500.0,
        )
        summary = run_simulation(config).summary
        assert summary.counters.get("scenario.strategy_shock_noop") == 1
        assert summary.strategy_switches == 0


class TestTieBreakOrdering:
    """Regression pin: scenario events scheduled at build time apply
    *before* a strategy revision at the same timestamp (the scenario
    director is constructed first, so its events carry smaller engine
    sequence numbers — ties break by seq)."""

    def test_phase_at_epoch_boundary_stamps_the_epoch(self):
        period = 1_000.0
        config = small_config(
            strategy=dynamic_spec(revision_period=period, start=0.0),
            scenario=(
                Phase(0.0, "before"),
                Phase(2 * period, "after"),  # exactly at the 2nd epoch
            ),
            duration=3_500.0,
            warmup=500.0,
        )
        result = run_simulation(config)
        epochs = {e.time: e.phase for e in result.metrics.strategy_epochs}
        assert epochs[period] == "before"
        # The Phase marker at t=2*period fired before the revision at
        # the same instant, so the epoch record carries the new label.
        assert epochs[2 * period] == "after"

    def test_flip_shock_at_epoch_boundary_applies_first(self):
        period = 1_000.0
        config = small_config(
            strategy=dynamic_spec(
                revision_period=period,
                start=0.0,
                # Make best response inert so the epoch only *observes*.
                revision_probability=1e-12,
            ),
            scenario=(StrategyShock(period, flip_fraction=1.0),),
            duration=1_500.0,
            warmup=100.0,
            seed=3,
        )
        sim = FileSharingSimulation(config)
        result = sim.run()
        epoch = result.metrics.strategy_epochs[0]
        assert epoch.time == period
        # The shock flipped everyone before the epoch measured the
        # population: the recorded sharing count is the inverted split.
        assert epoch.sharing == config.num_freeloaders


class TestEvolutionFigure:
    def test_registered_and_grids_validate_on_any_scale(self):
        from repro.experiments.figures import EVOLUTION_MECHANISMS, FIGURES

        assert "evolution" in FIGURES
        for scale in ("smoke", "small", "scale", "paper"):
            grid = FIGURES["evolution"].build_grid(scale, 42)
            assert set(grid) == set(EVOLUTION_MECHANISMS)
            for config in grid.values():
                assert not config.strategy.is_static

    def test_unknown_evolution_mechanism_rejected(self):
        with pytest.raises(ConfigError, match="evolution mechanism"):
            evolution_config("smoke", "tit-for-tat", 42)

    def test_evolution_strategy_scales_with_preset(self):
        spec, duration = evolution_strategy("smoke")
        assert duration == pytest.approx(30_000.0)
        assert spec.start == pytest.approx(9_000.0)
        assert spec.revision_period == pytest.approx(1_500.0)
        assert spec.window == pytest.approx(3 * spec.revision_period)

    def test_equilibrium_ordering_pinned_at_smoke_seed42(self):
        """The acceptance pin: exchange >= participation >= credit >=
        none in equilibrium sharing fraction at the default seed — the
        qualitative equilibria ordering of the game-theoretic related
        work (weak incentives collapse toward free-riding, honest
        participation and exchange priority sustain sharing)."""
        eqs = {}
        for mechanism in ("none", "credit", "participation", "exchange"):
            summary = run_simulation(evolution_config("smoke", mechanism, 42)).summary
            eqs[mechanism] = summary.equilibrium_sharing_fraction
            assert eqs[mechanism] is not None
        assert eqs["exchange"] >= eqs["participation"] >= eqs["credit"] >= eqs["none"]
        # And the incentive actually separates the ends of the spectrum.
        assert eqs["exchange"] >= 0.9
        assert eqs["none"] <= 0.2


class TestEpochRecordValidation:
    def test_sharing_count_bounds_checked(self):
        with pytest.raises(ValueError, match="sharing count"):
            StrategyEpochRecord(
                time=0.0,
                epoch=1,
                enrolled=2,
                sharing=3,
                revised=0,
                switched_to_sharing=0,
                switched_to_freeloading=0,
                mean_payoff_sharing=None,
                mean_payoff_freeloading=None,
            )

    def test_sharing_fraction(self):
        record = StrategyEpochRecord(
            time=0.0,
            epoch=1,
            enrolled=4,
            sharing=1,
            revised=0,
            switched_to_sharing=0,
            switched_to_freeloading=0,
            mean_payoff_sharing=None,
            mean_payoff_freeloading=None,
        )
        assert record.sharing_fraction == 0.25


def test_strategy_config_round_trips_through_dict():
    config = small_config(strategy=dynamic_spec())
    dumped = config.to_dict()
    assert dumped["strategy"]["rule"] == "best-response"
    # The orchestrator fingerprint distinguishes strategy configs.
    from repro.experiments.orchestrator import config_fingerprint

    assert config_fingerprint(config) != config_fingerprint(small_config())
