"""Unit tests for the lookup oracle."""

from __future__ import annotations

import random

import pytest

from repro.errors import LookupError_
from repro.network.lookup import LookupService


class TestIndexMaintenance:
    def test_register_and_providers(self):
        lookup = LookupService()
        lookup.register(1, 100)
        lookup.register(2, 100)
        assert lookup.providers(100) == {1, 2}
        assert lookup.provider_count(100) == 2

    def test_unregister(self):
        lookup = LookupService()
        lookup.register(1, 100)
        lookup.unregister(1, 100)
        assert lookup.providers(100) == set()
        assert lookup.objects_indexed() == 0

    def test_unregister_unknown_raises(self):
        lookup = LookupService()
        with pytest.raises(LookupError_):
            lookup.unregister(1, 100)

    def test_unregister_all(self):
        lookup = LookupService()
        lookup.register(1, 100)
        lookup.register(1, 101)
        lookup.unregister_all(1, [100, 101])
        assert lookup.objects_indexed() == 0

    def test_providers_excludes_requested_peer(self):
        lookup = LookupService()
        lookup.register(1, 100)
        lookup.register(2, 100)
        assert lookup.providers(100, exclude=1) == {2}

    def test_providers_unknown_object_empty(self):
        assert LookupService().providers(5) == set()

    def test_providers_returns_copy_on_every_path(self):
        # Regression: the no-exclusion path handed out the live set by
        # reference, so a caller mutation corrupted the index.
        lookup = LookupService()
        lookup.register(1, 100)
        lookup.register(2, 100)
        for result in (
            lookup.providers(100),            # no exclusion
            lookup.providers(100, exclude=1),  # exclusion applied
            lookup.providers(100, exclude=9),  # exclusion absent from set
        ):
            result.clear()
        assert lookup.providers(100) == {1, 2}
        assert lookup.provider_count(100) == 2


class TestFindProviders:
    def test_excludes_requester(self):
        lookup = LookupService()
        lookup.register(1, 100)
        lookup.register(2, 100)
        found = lookup.find_providers(100, requester_id=1, rand=random.Random(0))
        assert found == [2]

    def test_full_coverage_returns_all_shuffled(self):
        lookup = LookupService(coverage=1.0)
        for peer in range(10):
            lookup.register(peer, 100)
        found = lookup.find_providers(100, requester_id=99, rand=random.Random(0))
        assert sorted(found) == list(range(10))

    def test_partial_coverage_returns_fraction(self):
        lookup = LookupService(coverage=0.5)
        for peer in range(10):
            lookup.register(peer, 100)
        found = lookup.find_providers(100, requester_id=99, rand=random.Random(0))
        assert len(found) == 5
        assert len(set(found)) == 5

    def test_partial_coverage_returns_at_least_one(self):
        lookup = LookupService(coverage=0.01)
        lookup.register(1, 100)
        found = lookup.find_providers(100, requester_id=99, rand=random.Random(0))
        assert found == [1]

    def test_no_providers_empty(self):
        lookup = LookupService()
        assert lookup.find_providers(100, 1, random.Random(0)) == []

    def test_deterministic_under_seed(self):
        lookup = LookupService(coverage=0.4)
        for peer in range(20):
            lookup.register(peer, 100)
        a = lookup.find_providers(100, 99, random.Random(7))
        b = lookup.find_providers(100, 99, random.Random(7))
        assert a == b

    def test_invalid_coverage_rejected(self):
        with pytest.raises(LookupError_):
            LookupService(coverage=0.0)
        with pytest.raises(LookupError_):
            LookupService(coverage=1.0001)

    def test_lookup_counter(self):
        lookup = LookupService()
        lookup.register(1, 100)
        lookup.find_providers(100, 2, random.Random(0))
        lookup.find_providers(100, 2, random.Random(0))
        assert lookup.lookups_served == 2
