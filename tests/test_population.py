"""Tests for heterogeneous peer populations.

Covers the declarative :class:`~repro.population.PeerClassSpec` layer:
spec validation, count/fraction/remainder resolution, class assignment,
the bit-identical legacy two-class equivalence (the refactor's core
regression guarantee), per-class metrics, per-peer capacity enforcement
and end-to-end mixed-mechanism / mixed-discipline runs.
"""

from __future__ import annotations

import pytest

from repro.config import SimulationConfig
from repro.core.disciplines import (
    CreditDiscipline,
    FifoDiscipline,
    ParticipationDiscipline,
    make_discipline,
)
from repro.errors import ConfigError
from repro.population import (
    PeerClassSpec,
    assign_peer_classes,
    resolve_population,
)
from repro.sim.rng import RandomSource
from repro.simulation import FileSharingSimulation, run_simulation

from tests.helpers import small_config


def two_class(**freeloader_overrides):
    """An explicit sharer/freeloader split mirroring the derived one."""
    return (
        PeerClassSpec(name="sharer", behavior="sharer"),
        PeerClassSpec(name="freeloader", behavior="freeloader", **freeloader_overrides),
    )


class TestSpecValidation:
    @pytest.mark.parametrize(
        "spec",
        [
            dict(name=""),
            dict(name="x", count=3, fraction=0.5),
            dict(name="x", count=-1),
            dict(name="x", fraction=1.5),
            dict(name="x", fraction=-0.1),
            dict(name="x", behavior="lurker"),
            dict(name="x", service_discipline="lottery"),
            dict(name="x", exchange_mechanism="carrier-pigeon"),
        ],
    )
    def test_invalid_specs_rejected(self, spec):
        with pytest.raises(ConfigError):
            PeerClassSpec(**spec).validate()

    def test_valid_spec_passes(self):
        PeerClassSpec(
            name="tier1",
            fraction=0.25,
            behavior="sharer",
            exchange_mechanism="2-5-way",
            service_discipline="credit",
            upload_capacity_kbit=160.0,
        ).validate()


class TestResolution:
    def test_config_rejects_bad_population(self):
        with pytest.raises(ConfigError):
            SimulationConfig(population=(PeerClassSpec(name="x", behavior="lurker"),))

    def test_duplicate_names_rejected(self):
        with pytest.raises(ConfigError):
            SimulationConfig(
                population=(
                    PeerClassSpec(name="x", count=100),
                    PeerClassSpec(name="x"),
                )
            )

    def test_two_remainder_classes_rejected(self):
        with pytest.raises(ConfigError):
            SimulationConfig(
                population=(PeerClassSpec(name="a"), PeerClassSpec(name="b"))
            )

    def test_counts_must_cover_population(self):
        with pytest.raises(ConfigError):
            SimulationConfig(
                num_peers=10,
                population=(
                    PeerClassSpec(name="a", count=4),
                    PeerClassSpec(name="b", count=4),
                ),
            )

    def test_counts_may_not_exceed_population(self):
        with pytest.raises(ConfigError):
            SimulationConfig(
                num_peers=10,
                population=(
                    PeerClassSpec(name="a", count=12),
                    PeerClassSpec(name="b"),
                ),
            )

    def test_per_class_capacity_below_slot_rejected(self):
        with pytest.raises(ConfigError):
            SimulationConfig(
                population=(
                    PeerClassSpec(name="a", upload_capacity_kbit=5.0),
                    PeerClassSpec(name="b", count=100),
                )
            )

    @pytest.mark.parametrize(
        "num_peers,expected", [(25, {"a": 13, "b": 12}), (27, {"a": 14, "b": 13})]
    )
    def test_fraction_only_split_covers_odd_populations(self, num_peers, expected):
        # No remainder class: largest-remainder apportionment keeps two
        # half-fractions exact over an odd population instead of
        # rejecting 12+12 != 25.
        config = SimulationConfig(
            num_peers=num_peers,
            population=(
                PeerClassSpec(name="a", fraction=0.5),
                PeerClassSpec(name="b", fraction=0.5, behavior="freeloader"),
            ),
        )
        counts = {c.name: c.count for c in resolve_population(config)}
        assert counts == expected

    def test_inconsistent_fractions_still_rejected(self):
        with pytest.raises(ConfigError):
            SimulationConfig(
                num_peers=10,
                population=(
                    PeerClassSpec(name="a", fraction=0.5),
                    PeerClassSpec(name="b", fraction=0.2),
                ),
            )

    def test_remainder_absorbs_leftover(self):
        config = SimulationConfig(
            num_peers=10,
            population=(
                PeerClassSpec(name="rest"),
                PeerClassSpec(name="quarter", fraction=0.25),
                PeerClassSpec(name="three", count=3),
            ),
        )
        counts = {c.name: c.count for c in resolve_population(config)}
        assert counts == {"rest": 5, "quarter": 2, "three": 3}

    def test_none_fields_inherit_globals(self):
        config = SimulationConfig(
            num_peers=10,
            upload_capacity_kbit=60.0,
            scheduler_mode="credit",
            exchange_mechanism="pairwise",
            population=(
                PeerClassSpec(name="a"),
                PeerClassSpec(name="b", count=4, upload_capacity_kbit=120.0),
            ),
        )
        a, b = resolve_population(config)
        assert a.upload_capacity_kbit == 60.0
        assert b.upload_capacity_kbit == 120.0
        assert a.service_discipline == b.service_discipline == "credit"
        assert a.exchange_mechanism == b.exchange_mechanism == "pairwise"
        assert a.storage_min_objects == config.storage_min_objects

    def test_zero_count_class_allowed(self):
        config = SimulationConfig(
            num_peers=10,
            population=(
                PeerClassSpec(name="a"),
                PeerClassSpec(name="b", count=0),
            ),
        )
        counts = {c.name: c.count for c in resolve_population(config)}
        assert counts == {"a": 10, "b": 0}

    def test_legacy_derivation_matches_properties(self):
        # Odd populations: one rounding, applied exactly once.
        config = SimulationConfig(num_peers=7, freeloader_fraction=0.5)
        resolved = resolve_population(config)
        counts = {c.name: c.count for c in resolved}
        assert counts == {
            "sharer": config.num_sharers,
            "freeloader": config.num_freeloaders,
        }
        assert [c.behavior.shares for c in resolved] == [True, False]

    def test_population_normalized_to_tuple(self):
        config = SimulationConfig(population=[PeerClassSpec(name="all", count=200)])
        assert isinstance(config.population, tuple)

    def test_population_in_to_dict(self):
        config = SimulationConfig(
            population=(PeerClassSpec(name="all", fraction=1.0),)
        )
        dumped = config.to_dict()
        assert dumped["population"][0]["name"] == "all"
        assert dumped["population"][0]["fraction"] == 1.0


class TestAssignment:
    def test_assignment_covers_every_peer(self):
        config = SimulationConfig(
            num_peers=30,
            population=(
                PeerClassSpec(name="a"),
                PeerClassSpec(name="b", count=7),
                PeerClassSpec(name="c", fraction=0.3),
            ),
        )
        classes = resolve_population(config)
        assignment = assign_peer_classes(classes, 30, RandomSource(5))
        assert sorted(assignment) == list(range(30))
        by_name = {}
        for cls in assignment.values():
            by_name[cls.name] = by_name.get(cls.name, 0) + 1
        assert by_name == {"a": 14, "b": 7, "c": 9}

    def test_assignment_is_deterministic(self):
        config = SimulationConfig(num_peers=20)
        classes = resolve_population(config)
        first = assign_peer_classes(classes, 20, RandomSource(9))
        second = assign_peer_classes(classes, 20, RandomSource(9))
        assert {p: c.name for p, c in first.items()} == {
            p: c.name for p, c in second.items()
        }

    def test_legacy_assignment_matches_old_sample(self):
        # The derived two-class assignment must consume the "behavior"
        # stream exactly as the pre-population code did.
        config = SimulationConfig(num_peers=20, freeloader_fraction=0.4)
        classes = resolve_population(config)
        assignment = assign_peer_classes(classes, 20, RandomSource(config.seed))
        expected = set(
            RandomSource(config.seed).sample(
                range(20), config.num_freeloaders, stream="behavior"
            )
        )
        actual = {p for p, c in assignment.items() if c.name == "freeloader"}
        assert actual == expected


class TestLegacyEquivalence:
    def test_legacy_config_bit_identical_to_derived_population(self):
        # The refactor's core guarantee: a config built from the legacy
        # globals produces a bit-identical summary to the same config
        # with the two-class population spelled out explicitly.
        legacy = small_config(
            freeloader_fraction=0.5,
            exchange_mechanism="2-5-way",
            scheduler_mode="fifo",
            duration=6000.0,
            seed=11,
        )
        explicit = legacy.replace(
            population=two_class(count=legacy.num_freeloaders)
        )
        first = run_simulation(legacy)
        second = run_simulation(explicit)
        assert first.summary == second.summary
        assert first.events_fired == second.events_fired

    def test_legacy_equivalence_under_credit_discipline(self):
        legacy = small_config(
            exchange_mechanism="none",
            scheduler_mode="credit",
            duration=4000.0,
            seed=3,
        )
        explicit = legacy.replace(
            population=two_class(count=legacy.num_freeloaders)
        )
        assert run_simulation(legacy).summary == run_simulation(explicit).summary


class TestPerClassMetrics:
    @pytest.fixture(scope="class")
    def legacy_result(self):
        return run_simulation(
            small_config(exchange_mechanism="2-5-way", duration=6000.0, seed=5)
        )

    def test_by_class_views_match_legacy_fields(self, legacy_result):
        summary = legacy_result.summary
        assert summary.mean_download_time_min_by_class["sharer"] == (
            summary.mean_download_time_sharers_min
        )
        assert summary.mean_download_time_min_by_class["freeloader"] == (
            summary.mean_download_time_freeloaders_min
        )
        assert summary.completed_downloads_by_class["sharer"] == (
            summary.completed_downloads_sharers
        )
        assert summary.completed_downloads_by_class["freeloader"] == (
            summary.completed_downloads_freeloaders
        )
        assert summary.volume_per_peer_mb_by_class["sharer"] == pytest.approx(
            summary.volume_per_sharer_mb
        )
        assert summary.volume_per_peer_mb_by_class["freeloader"] == pytest.approx(
            summary.volume_per_freeloader_mb
        )

    def test_class_sizes_reported(self, legacy_result):
        config = legacy_result.config
        assert legacy_result.summary.class_sizes == {
            "sharer": config.num_sharers,
            "freeloader": config.num_freeloaders,
        }

    def test_records_carry_class_labels(self, legacy_result):
        assert legacy_result.metrics.downloads
        for record in legacy_result.metrics.downloads:
            assert record.class_name in ("sharer", "freeloader")
        for session in legacy_result.metrics.sessions:
            assert session.requester_class in ("sharer", "freeloader")


class TestPerPeerCapacity:
    def test_class_capacity_reaches_slot_pools(self):
        config = small_config(
            upload_capacity_kbit=80.0,
            download_capacity_kbit=800.0,
            population=(
                PeerClassSpec(name="fast", upload_capacity_kbit=160.0),
                PeerClassSpec(
                    name="slow",
                    count=10,
                    upload_capacity_kbit=20.0,
                    download_capacity_kbit=100.0,
                ),
            ),
        )
        ctx = FileSharingSimulation(config).build()
        fast = [p for p in ctx.peers.values() if p.class_name == "fast"]
        slow = [p for p in ctx.peers.values() if p.class_name == "slow"]
        assert len(slow) == 10 and fast
        for peer in fast:
            assert peer.upload_pool.total == 16
            assert peer.download_pool.total == 80  # inherited global
        for peer in slow:
            assert peer.upload_pool.total == 2
            assert peer.download_pool.total == 10

    def test_class_storage_and_interest_ranges_apply(self):
        config = small_config(
            population=(
                PeerClassSpec(name="default"),
                PeerClassSpec(
                    name="hoarder",
                    count=8,
                    storage_min_objects=20,
                    storage_max_objects=20,
                    categories_per_peer_min=1,
                    categories_per_peer_max=1,
                ),
            ),
        )
        ctx = FileSharingSimulation(config).build()
        hoarders = [p for p in ctx.peers.values() if p.class_name == "hoarder"]
        assert len(hoarders) == 8
        for peer in hoarders:
            assert peer.store.capacity == 20
            assert len(peer.profile.category_ids) == 1


class TestMixedMechanisms:
    def test_mixed_mechanism_smoke_run(self):
        # Half the sharers run exchanges, half do not; freeloaders never.
        config = small_config(
            duration=6000.0,
            seed=7,
            population=(
                PeerClassSpec(
                    name="holdout", behavior="sharer", exchange_mechanism="none"
                ),
                PeerClassSpec(
                    name="adopter",
                    behavior="sharer",
                    exchange_mechanism="2-5-way",
                    fraction=0.25,
                ),
                PeerClassSpec(
                    name="freeloader",
                    behavior="freeloader",
                    exchange_mechanism="none",
                    fraction=0.5,
                ),
            ),
        )
        result = run_simulation(config)
        summary = result.summary
        assert sum(summary.completed_downloads_by_class.values()) > 0
        assert set(summary.class_sizes) == {"holdout", "adopter", "freeloader"}
        # Non-adopters can never appear inside an exchange session.
        for session in result.metrics.sessions:
            if session.requester_class in ("holdout", "freeloader"):
                assert not session.traffic_class.is_exchange

    def test_mixed_disciplines_smoke_run(self):
        config = small_config(
            duration=4000.0,
            exchange_mechanism="none",
            population=(
                PeerClassSpec(name="fifo-sharer", service_discipline="fifo"),
                PeerClassSpec(
                    name="credit-sharer", service_discipline="credit", fraction=0.25
                ),
                PeerClassSpec(
                    name="kazaa-freeloader",
                    behavior="freeloader",
                    service_discipline="participation",
                    fraction=0.5,
                ),
            ),
        )
        ctx = FileSharingSimulation(config).build()
        disciplines = {p.class_name: type(p.discipline) for p in ctx.peers.values()}
        assert disciplines == {
            "fifo-sharer": FifoDiscipline,
            "credit-sharer": CreditDiscipline,
            "kazaa-freeloader": ParticipationDiscipline,
        }


class TestDisciplineFactory:
    def test_unknown_discipline_rejected(self):
        with pytest.raises(ConfigError):
            make_discipline("lottery", 1, shares=True, fake_participation=True)

    def test_participation_freeloader_cheats(self):
        discipline = make_discipline(
            "participation", 1, shares=False, fake_participation=True
        )
        assert discipline.participation.cheats

    def test_participation_sharer_honest(self):
        discipline = make_discipline(
            "participation", 1, shares=True, fake_participation=True
        )
        assert not discipline.participation.cheats

    @pytest.mark.parametrize("name", ["fifo", "credit"])
    def test_cheat_independent_of_own_serving_discipline(self, name):
        # The claim is the requester's lie, read by participation-
        # disciplined *servers* — a freeloader fakes it even when its
        # own (never exercised) serving discipline is FIFO or credit.
        discipline = make_discipline(name, 1, shares=False, fake_participation=True)
        assert discipline.participation.cheats

    @pytest.mark.parametrize("name", ["fifo", "credit", "participation"])
    def test_flag_off_means_honest(self, name):
        discipline = make_discipline(name, 1, shares=False, fake_participation=False)
        assert not discipline.participation.cheats

    def test_mixed_population_freeloaders_still_cheat(self):
        # Regression for the mixed case: participation-disciplined
        # sharers must see freeloaders' faked levels even though the
        # freeloader class itself is FIFO-disciplined.
        config = small_config(
            scheduler_mode="fifo",
            population=(
                PeerClassSpec(name="kazaa", service_discipline="participation"),
                PeerClassSpec(
                    name="leech",
                    behavior="freeloader",
                    service_discipline="fifo",
                    fraction=0.5,
                ),
            ),
        )
        ctx = FileSharingSimulation(config).build()
        leeches = [p for p in ctx.peers.values() if p.class_name == "leech"]
        assert leeches
        assert all(p.participation.cheats for p in leeches)
