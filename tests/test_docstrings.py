"""Docstring audit for the public API surface of ``src/repro``.

CI enforces the same contract through ruff's pydocstyle D1xx rules
(see ``pyproject.toml``); this test mirrors those rules with a plain
AST walk so the audit also runs wherever ruff is not installed — the
docs cannot rot between lint environments.

Mirrored rules: D100 (module), D101 (public class), D102 (public
method), D103 (public function), D104 (package ``__init__``), D106
(public nested class).  D105 (magic methods) and D107 (``__init__``
methods) are deliberately out of scope, matching the lint config.
"""

from __future__ import annotations

import ast
import os
from typing import List, Tuple

SRC_ROOT = os.path.join(os.path.dirname(__file__), os.pardir, "src", "repro")


def _python_files(root: str) -> List[str]:
    paths = []
    for directory, dirnames, filenames in os.walk(root):
        dirnames[:] = [d for d in dirnames if d != "__pycache__"]
        for name in sorted(filenames):
            if name.endswith(".py"):
                paths.append(os.path.join(directory, name))
    return sorted(paths)


def _missing_in(path: str) -> List[Tuple[int, str]]:
    with open(path, encoding="utf-8") as handle:
        tree = ast.parse(handle.read())
    missing: List[Tuple[int, str]] = []
    if not ast.get_docstring(tree):
        missing.append((1, "module"))

    def walk(node: ast.AST, prefix: str = "") -> None:
        for item in getattr(node, "body", []):
            if isinstance(item, ast.ClassDef):
                public = not item.name.startswith("_")
                if public and not ast.get_docstring(item):
                    missing.append((item.lineno, f"class {prefix}{item.name}"))
                # Private classes can still hold public methods; keep
                # walking either way, like pydocstyle does.
                walk(item, prefix=f"{prefix}{item.name}.")
            elif isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
                if item.name.startswith("_"):
                    continue  # D105/D107 and private helpers: out of scope
                if not ast.get_docstring(item):
                    missing.append((item.lineno, f"def {prefix}{item.name}"))

    walk(tree)
    return missing


def test_public_api_is_fully_docstringed():
    files = _python_files(os.path.abspath(SRC_ROOT))
    assert files, "src/repro not found — audit misconfigured"
    offenders = []
    for path in files:
        for lineno, what in _missing_in(path):
            offenders.append(f"{os.path.relpath(path)}:{lineno}: {what}")
    assert not offenders, (
        "public definitions without docstrings (ruff D1xx will fail too):\n  "
        + "\n  ".join(offenders)
    )
