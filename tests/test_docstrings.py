"""Docstring audit for the public API surface of ``src/repro``.

CI enforces the same contract through ruff's pydocstyle D1xx rules
(see ``pyproject.toml``); this test mirrors those rules through the
shared AST toolkit in :mod:`repro.analysis` — one visitor
implementation, two consumers (ruff-less environments still audit the
docs, and the lint framework's walker is exercised on the whole tree).

Mirrored rules: D100 (module), D101 (public class), D102 (public
method), D103 (public function), D104 (package ``__init__``), D106
(public nested class).  D105 (magic methods) and D107 (``__init__``
methods) are deliberately out of scope, matching the lint config.
"""

from __future__ import annotations

import os

from repro.analysis import iter_python_files, missing_docstrings, parse_module

SRC_ROOT = os.path.join(os.path.dirname(__file__), os.pardir, "src", "repro")


def test_public_api_is_fully_docstringed():
    files = iter_python_files(os.path.abspath(SRC_ROOT))
    assert files, "src/repro not found — audit misconfigured"
    offenders = []
    for path in files:
        module = parse_module(path)
        for lineno, what in missing_docstrings(module.tree):
            offenders.append(f"{module.display_path}:{lineno}: {what}")
    assert not offenders, (
        "public definitions without docstrings (ruff D1xx will fail too):\n  "
        + "\n  ".join(offenders)
    )
