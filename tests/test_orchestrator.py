"""Tests for the parallel experiment orchestrator.

Covers config fingerprinting, the JSON result cache, grid execution
(serial and pooled), cross-figure cell dedup, multi-seed replication
with mean ± stderr aggregation, and the CLI flags.
"""

from __future__ import annotations

import json
import os

import pytest

from repro.config import SimulationConfig
from repro.errors import ConfigError, MetricsError
from repro.experiments import orchestrator
from repro.experiments.figures import FIGURES, FigureSpec
from repro.experiments.orchestrator import (
    MemoryCache,
    ResultCache,
    config_fingerprint,
    run_figure,
    run_figures,
    run_grid,
)
from repro.experiments.report import SeriesTable, aggregate_tables
from repro.metrics.summary import SimulationSummary
from repro.simulation import run_summary


def tiny_config(**overrides) -> SimulationConfig:
    """A simulation small enough to run in tens of milliseconds."""
    params = dict(
        num_peers=8,
        num_categories=6,
        objects_per_category_min=1,
        objects_per_category_max=6,
        object_size_mb=1.0,
        block_size_kbit=1024.0,
        storage_min_objects=2,
        storage_max_objects=4,
        duration=2000.0,
        warmup=500.0,
        seed=11,
    )
    params.update(overrides)
    return SimulationConfig(**params)


def fake_summary(value: float = 1.0) -> SimulationSummary:
    return SimulationSummary(
        mean_download_time_sharers_min=value,
        mean_download_time_freeloaders_min=2 * value,
        mean_download_time_all_min=1.5 * value,
        completed_downloads_sharers=1,
        completed_downloads_freeloaders=1,
        exchange_session_fraction=0.5,
    )


class TestFingerprint:
    def test_stable_across_equal_configs(self):
        assert config_fingerprint(tiny_config()) == config_fingerprint(tiny_config())

    def test_seed_changes_fingerprint(self):
        assert config_fingerprint(tiny_config(seed=1)) != config_fingerprint(
            tiny_config(seed=2)
        )

    def test_any_field_changes_fingerprint(self):
        assert config_fingerprint(tiny_config()) != config_fingerprint(
            tiny_config(exchange_mechanism="pairwise")
        )

    def test_scenario_changes_fingerprint(self):
        """Stale-cache regression: a cached closed-system cell must
        never answer for the same config with a scenario attached (and
        different scenarios must never collide)."""
        from repro.scenario import FlashCrowd, PeerArrival, Phase

        plain = tiny_config()
        crowd = tiny_config(
            scenario=(Phase(0.0, "s"), FlashCrowd(600.0, seed_providers=1))
        )
        waves = tiny_config(
            scenario=(Phase(0.0, "s"), PeerArrival(600.0, count=2, class_name="sharer"))
        )
        fingerprints = {
            config_fingerprint(plain),
            config_fingerprint(crowd),
            config_fingerprint(waves),
        }
        assert len(fingerprints) == 3

    def test_scenario_cache_schema_bumped(self, tmp_path):
        """Entries written before the strategy layer (schema <= 3) are
        misses; the current stamp covers strategy-bearing summaries,
        the retention/perf-counter knobs, and the adversary metrics."""
        assert orchestrator.CACHE_SCHEMA_VERSION == 7
        cache = ResultCache(str(tmp_path))
        plain = tiny_config()
        cache.store(plain, fake_summary())
        from repro.scenario import Phase

        with_scenario = tiny_config(scenario=(Phase(0.0, "s"),))
        # Same everything but the scenario: must not hit the plain entry.
        assert cache.load(with_scenario) is None
        assert cache.load(plain) == fake_summary()


class TestResultCache:
    def test_roundtrip(self, tmp_path):
        cache = ResultCache(str(tmp_path / "cache"))
        config = tiny_config()
        assert cache.load(config) is None
        cache.store(config, fake_summary())
        assert cache.load(config) == fake_summary()
        assert len(cache) == 1

    @pytest.mark.parametrize("garbage", ["{not json", "[]", "null", '"str"'])
    def test_corrupt_entry_is_a_miss(self, tmp_path, garbage):
        cache = ResultCache(str(tmp_path))
        config = tiny_config()
        cache.store(config, fake_summary())
        path = os.path.join(str(tmp_path), f"{config_fingerprint(config)}.json")
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(garbage)
        assert cache.load(config) is None

    def test_entries_are_valid_json_with_config_dump(self, tmp_path):
        cache = ResultCache(str(tmp_path))
        config = tiny_config()
        cache.store(config, fake_summary())
        path = os.path.join(str(tmp_path), f"{config_fingerprint(config)}.json")
        with open(path, "r", encoding="utf-8") as handle:
            payload = json.load(handle)
        assert payload["config"]["num_peers"] == config.num_peers
        assert payload["fingerprint"] == config_fingerprint(config)

    def test_stale_orphan_tmp_files_swept_on_init(self, tmp_path):
        import time as time_mod

        orphan = tmp_path / "deadbeef.tmp"
        orphan.write_text("partial write from a killed run")
        stale = time_mod.time() - 2 * ResultCache.ORPHAN_MIN_AGE_SECONDS
        os.utime(orphan, (stale, stale))
        cache = ResultCache(str(tmp_path))
        assert not orphan.exists()
        assert len(cache) == 0

    def test_fresh_orphan_tmp_files_survive_init(self, tmp_path):
        # A young .tmp may be a concurrent run's in-flight write.
        orphan = tmp_path / "deadbeef.tmp"
        orphan.write_text("in-flight write from a live run")
        ResultCache(str(tmp_path))
        assert orphan.exists()

    def test_entries_from_other_code_versions_are_misses(self, tmp_path, monkeypatch):
        cache = ResultCache(str(tmp_path))
        config = tiny_config()
        cache.store(config, fake_summary())
        import repro

        monkeypatch.setattr(repro, "__version__", "0.0.0-different")
        assert ResultCache(str(tmp_path)).load(config) is None

    def test_entries_from_other_cache_schemas_are_misses(self, tmp_path):
        # Pre-population cache entries carry no (or an older) schema
        # stamp and must never be replayed.
        cache = ResultCache(str(tmp_path))
        config = tiny_config()
        cache.store(config, fake_summary())
        path = os.path.join(str(tmp_path), f"{config_fingerprint(config)}.json")
        with open(path, "r", encoding="utf-8") as handle:
            payload = json.load(handle)
        assert payload["cache_version"] == orchestrator.CACHE_SCHEMA_VERSION
        payload["cache_version"] = orchestrator.CACHE_SCHEMA_VERSION - 1
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(payload, handle)
        assert ResultCache(str(tmp_path)).load(config) is None
        del payload["cache_version"]  # pre-stamp entries lack the key entirely
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(payload, handle)
        assert ResultCache(str(tmp_path)).load(config) is None

    def test_precomputed_fingerprint_respected(self, tmp_path):
        cache = ResultCache(str(tmp_path))
        config = tiny_config()
        fingerprint = config_fingerprint(config)
        cache.store(config, fake_summary(), fingerprint=fingerprint)
        assert cache.load(config, fingerprint=fingerprint) == fake_summary()
        assert cache.load(config) == fake_summary()  # same key either way

    def test_hit_miss_counters(self, tmp_path):
        cache = ResultCache(str(tmp_path))
        config = tiny_config()
        cache.load(config)
        cache.store(config, fake_summary())
        cache.load(config)
        assert (cache.hits, cache.misses) == (1, 1)

    def test_memory_cache_dedupes_without_touching_disk(self, tmp_path, monkeypatch):
        monkeypatch.chdir(tmp_path)
        cache = MemoryCache()
        config = tiny_config()
        assert cache.load(config) is None
        cache.store(config, fake_summary())
        assert cache.load(config) == fake_summary()
        assert (cache.hits, cache.misses, len(cache)) == (1, 1, 1)
        assert list(tmp_path.iterdir()) == []  # nothing written anywhere


class TestRunGrid:
    def test_serial_matches_direct_run(self):
        config = tiny_config()
        results = run_grid({"cell": config})
        assert results["cell"] == run_summary(config)

    def test_identical_configs_run_once(self, monkeypatch):
        calls = []

        def counting(config):
            calls.append(config)
            return fake_summary()

        monkeypatch.setattr(
            "repro.experiments.orchestrator.run_summary", counting
        )
        config = tiny_config()
        results = run_grid({"a": config, "b": tiny_config()})
        assert len(calls) == 1
        assert results["a"] == results["b"] == fake_summary()

    def test_cache_skips_execution_on_rerun(self, tmp_path, monkeypatch):
        cache = ResultCache(str(tmp_path))
        grid = {"cell": tiny_config()}
        first = run_grid(grid, cache=cache)

        def explode(config):
            raise AssertionError("cache should have answered")

        monkeypatch.setattr("repro.experiments.orchestrator.run_summary", explode)
        second = run_grid(grid, cache=ResultCache(str(tmp_path)))
        assert second == first

    def test_parallel_matches_serial(self):
        grid = {
            f"seed={seed}": tiny_config(seed=seed) for seed in (1, 2, 3)
        }
        serial = run_grid(grid, jobs=1)
        parallel = run_grid(grid, jobs=2)
        assert parallel == serial

    def test_progress_reports_every_cell(self, monkeypatch):
        monkeypatch.setattr(
            "repro.experiments.orchestrator.run_summary",
            lambda config: fake_summary(),
        )
        seen = []
        run_grid(
            {"a": tiny_config(seed=1), "b": tiny_config(seed=2)},
            progress=lambda done, total: seen.append((done, total)),
        )
        assert seen == [(1, 2), (2, 2)]

    def test_invalid_jobs_rejected(self):
        with pytest.raises(ConfigError):
            run_grid({"cell": tiny_config()}, jobs=0)


def _tiny_spec(figure_id: str = "figtest") -> FigureSpec:
    """A two-cell figure over tiny configs for end-to-end tests."""

    def build_grid(scale, seed):
        return {
            "pairwise": tiny_config(exchange_mechanism="pairwise", seed=seed),
            "none": tiny_config(exchange_mechanism="none", seed=seed),
        }

    def assemble(scale, seed, summaries):
        table = SeriesTable("tiny figure", "x", ["pairwise", "none"])
        table.add_row(
            0.0,
            {
                "pairwise": summaries["pairwise"].mean_download_time_all_min,
                "none": summaries["none"].mean_download_time_all_min,
            },
        )
        return table

    return FigureSpec(figure_id, "tiny test figure", build_grid, assemble)


class TestRunFigures:
    @pytest.fixture
    def figtest(self, monkeypatch):
        monkeypatch.setitem(FIGURES, "figtest", _tiny_spec())
        return "figtest"

    def test_unknown_figure_rejected(self):
        with pytest.raises(ConfigError):
            run_figures(["fig99"])

    def test_invalid_reps_rejected(self, figtest):
        with pytest.raises(ConfigError):
            run_figure(figtest, reps=0)

    def test_parallel_table_identical_to_serial(self, figtest):
        serial = run_figure(figtest, seed=7, jobs=1)
        parallel = run_figure(figtest, seed=7, jobs=2)
        assert parallel.render() == serial.render()

    def test_reps_aggregate_mean_and_stderr(self, figtest):
        table = run_figure(figtest, seed=7, reps=3)
        assert table.has_errors
        singles = [run_figure(figtest, seed=7 + rep) for rep in range(3)]
        values = [t.rows[0][1]["pairwise"] for t in singles]
        mean = sum(values) / len(values)
        assert table.rows[0][1]["pairwise"] == pytest.approx(mean)
        assert "±" in table.render()

    def test_reps_share_cache_with_single_runs(self, figtest, tmp_path, monkeypatch):
        cache = ResultCache(str(tmp_path))
        run_figure(figtest, seed=7, reps=2, cache=cache)

        def explode(config):
            raise AssertionError("cache should have answered")

        monkeypatch.setattr("repro.experiments.orchestrator.run_summary", explode)
        run_figure(figtest, seed=8, cache=ResultCache(str(tmp_path)))

    def test_batch_dedups_cells_shared_between_figures(self):
        # Figs. 9 and 10 sweep the same grid: one batch must plan each
        # unique config once.
        fig9 = FIGURES["fig9"].build_grid("smoke", 42)
        fig10 = FIGURES["fig10"].build_grid("smoke", 42)
        fingerprints9 = {config_fingerprint(c) for c in fig9.values()}
        fingerprints10 = {config_fingerprint(c) for c in fig10.values()}
        assert fingerprints9 == fingerprints10

    def test_fig5_cells_are_subset_of_fig4(self):
        fig4 = {config_fingerprint(c) for c in FIGURES["fig4"].build_grid("smoke", 42).values()}
        fig5 = {config_fingerprint(c) for c in FIGURES["fig5"].build_grid("smoke", 42).values()}
        assert fig5 < fig4


class TestAggregateTables:
    def _table(self, values, errors=None, title="t"):
        table = SeriesTable(title, "x", ["a"])
        table.add_row(1.0, {"a": values}, errors=errors)
        return table

    def test_mean_and_stderr(self):
        tables = [self._table(v) for v in (1.0, 2.0, 3.0)]
        out = aggregate_tables(tables)
        assert out.rows[0][1]["a"] == pytest.approx(2.0)
        # sample std = 1.0, stderr = 1/sqrt(3)
        assert out.row_errors[0]["a"] == pytest.approx(1.0 / 3 ** 0.5)

    def test_single_table_passthrough(self):
        table = self._table(1.0)
        assert aggregate_tables([table]) is table

    def test_missing_cells_use_present_replications_only(self):
        tables = [self._table(v) for v in (2.0, None, 4.0)]
        out = aggregate_tables(tables)
        assert out.rows[0][1]["a"] == pytest.approx(3.0)

    def test_all_missing_stays_none(self):
        out = aggregate_tables([self._table(None), self._table(None)])
        assert out.rows[0][1]["a"] is None

    def test_shape_mismatch_rejected(self):
        with pytest.raises(MetricsError):
            aggregate_tables([self._table(1.0), self._table(1.0, title="other")])
        short = SeriesTable("t", "x", ["a"])
        with pytest.raises(MetricsError):
            aggregate_tables([self._table(1.0), short])

    def test_empty_input_rejected(self):
        with pytest.raises(MetricsError):
            aggregate_tables([])

    def test_x_values_averaged_positionally(self):
        left = SeriesTable("t", "x", ["a"])
        left.add_row(1.0, {"a": 1.0})
        right = SeriesTable("t", "x", ["a"])
        right.add_row(3.0, {"a": 2.0})
        out = aggregate_tables([left, right])
        assert out.rows[0][0] == pytest.approx(2.0)


class TestSeriesTableErrors:
    def test_series_errors_align_with_rows(self):
        table = SeriesTable("t", "x", ["a", "b"])
        table.add_row(1.0, {"a": 1.0, "b": 2.0}, errors={"a": 0.1})
        table.add_row(2.0, {"a": 3.0})
        assert table.series_errors("a") == [(1.0, 0.1), (2.0, None)]
        assert table.series_errors("b") == [(1.0, None), (2.0, None)]

    def test_unknown_error_series_rejected(self):
        table = SeriesTable("t", "x", ["a"])
        with pytest.raises(MetricsError):
            table.add_row(1.0, {"a": 1.0}, errors={"zzz": 0.1})

    def test_render_shows_error_bars(self):
        table = SeriesTable("t", "x", ["a"])
        table.add_row(1.0, {"a": 1.234}, errors={"a": 0.567})
        assert "1.23±0.57" in table.render()


class TestRunnerCli:
    def test_unknown_figure_exits_2(self, capsys):
        from repro.experiments.runner import main

        assert main(["fig99", "--no-cache"]) == 2

    def test_invalid_jobs_exits_2(self):
        from repro.experiments.runner import main

        assert main(["fig4", "--jobs", "0", "--no-cache"]) == 2

    def test_invalid_reps_exits_2(self):
        from repro.experiments.runner import main

        assert main(["fig4", "--reps", "0", "--no-cache"]) == 2

    def test_runs_tiny_figure_end_to_end(self, capsys, tmp_path, monkeypatch):
        monkeypatch.setitem(FIGURES, "figtest", _tiny_spec())
        from repro.experiments.runner import main

        out_dir = tmp_path / "results"
        code = main(
            [
                "figtest",
                "--jobs",
                "2",
                "--reps",
                "2",
                "--cache-dir",
                str(tmp_path / "cache"),
                "--out",
                str(out_dir),
            ]
        )
        captured = capsys.readouterr()
        assert code == 0
        assert "tiny figure" in captured.out
        assert "jobs=2, reps=2" in captured.out
        assert (out_dir / "figtest_smoke.txt").exists()

    def test_later_figures_reuse_earlier_figures_cells_via_cache(
        self, capsys, tmp_path, monkeypatch
    ):
        # figtest2 shares figtest's grid: with the cache on, the second
        # figure's cells must be answered entirely from disk.
        monkeypatch.setitem(FIGURES, "figtest", _tiny_spec())
        monkeypatch.setitem(FIGURES, "figtest2", _tiny_spec("figtest2"))
        from repro.experiments.runner import main

        cache_dir = str(tmp_path / "cache")
        assert main(["figtest", "--cache-dir", cache_dir]) == 0
        assert main(["figtest2", "--cache-dir", cache_dir]) == 0
        captured = capsys.readouterr()
        assert "cache 2 hit / 0 miss" in captured.out.split("figtest2")[-1]
