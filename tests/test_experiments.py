"""Tests for the experiment harness: presets, tables, figure registry."""

from __future__ import annotations

import pytest

from repro.errors import ConfigError, MetricsError
from repro.experiments.figures import FIGURES, run_figure
from repro.experiments.presets import SCALES, preset
from repro.experiments.report import SeriesTable


class TestPresets:
    def test_paper_preset_is_table_ii(self):
        config = preset("paper")
        assert config.num_peers == 200
        assert config.object_size_mb == 20.0
        assert config.num_categories == 300
        assert config.upload_capacity_kbit == 80.0

    def test_smoke_preset_is_fast(self):
        config = preset("smoke")
        assert config.num_peers <= 50
        assert config.duration <= 30_000.0

    def test_overrides_apply(self):
        config = preset("smoke", upload_capacity_kbit=40.0, seed=7)
        assert config.upload_capacity_kbit == 40.0
        assert config.seed == 7

    def test_unknown_scale_rejected(self):
        with pytest.raises(ConfigError):
            preset("galactic")

    def test_all_scales_valid(self):
        for scale in SCALES:
            preset(scale)  # validation must pass


class TestSeriesTable:
    def _table(self):
        table = SeriesTable("demo", "x", ["a", "b"])
        table.add_row(1.0, {"a": 10.0, "b": 20.0})
        table.add_row(2.0, {"a": 30.0})
        return table

    def test_series_extraction(self):
        table = self._table()
        assert table.series("a") == [(1.0, 10.0), (2.0, 30.0)]
        assert table.series("b") == [(1.0, 20.0), (2.0, None)]

    def test_column_values_skips_missing(self):
        assert self._table().column_values("b") == [20.0]

    def test_unknown_series_rejected(self):
        table = self._table()
        with pytest.raises(MetricsError):
            table.series("zzz")
        with pytest.raises(MetricsError):
            table.add_row(3.0, {"zzz": 1.0})

    def test_render_contains_all_cells(self):
        text = self._table().render(precision=1)
        assert "demo" in text
        assert "10.0" in text and "30.0" in text
        assert "-" in text  # the missing value placeholder
        lines = text.splitlines()
        assert len(lines) == 5  # title, header, rule, two rows

    def test_render_alignment(self):
        lines = self._table().render().splitlines()
        header, rule = lines[1], lines[2]
        assert len(header) == len(rule)


class TestFigureRegistry:
    def test_all_figures_registered(self):
        assert sorted(FIGURES) == [
            "adoption", "evolution", "fig10", "fig11", "fig12", "fig4",
            "fig5", "fig6", "fig7", "fig8", "fig9", "flashcrowd",
            "robustness", "swarm-growth", "tiers",
        ]

    def test_unknown_figure_rejected(self):
        with pytest.raises(ConfigError):
            run_figure("fig99")

    def test_fig7_smoke_produces_monotone_cdfs(self):
        # The cheapest figure: a single smoke run.
        table = run_figure("fig7", scale="smoke", seed=3)
        assert table.rows
        for column in table.columns:
            values = table.column_values(column)
            assert values == sorted(values)

    def test_fig8_waiting_cdf_smoke(self):
        table = run_figure("fig8", scale="smoke", seed=3)
        for column in ("non-exchange", "pairwise"):
            values = table.column_values(column)
            assert values, f"no sessions of class {column} at smoke scale"


class TestHeterogeneousExperiments:
    def test_adoption_sweep_smoke_end_to_end(self):
        # Acceptance: the adoption sweep runs end-to-end at smoke scale
        # and emits per-class mean download times for >= 3 fractions.
        table = run_figure("adoption", scale="smoke", seed=3)
        assert table.columns == ["adopter", "holdout", "freeloader"]
        assert len(table.rows) >= 3
        fractions = [x for x, _values in table.rows]
        assert fractions == sorted(fractions)
        for x, values in table.rows:
            # Every class that exists at this adoption level reports a
            # mean; empty classes (no adopters at 0, no holdouts at 1)
            # stay None.
            if 0.0 < x < 1.0:
                assert values["adopter"] is not None
                assert values["holdout"] is not None
            assert values["freeloader"] is not None

    def test_capacity_tiers_smoke_end_to_end(self):
        table = run_figure("tiers", scale="smoke", seed=3)
        assert table.columns == ["2-5-way", "none"]
        # Three sharer tiers plus the freeloader reference row.
        assert [x for x, _values in table.rows] == [160.0, 80.0, 40.0, 0.0]
        for _x, values in table.rows:
            for column in table.columns:
                assert values[column] is not None
