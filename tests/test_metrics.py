"""Unit tests for records, collectors, CDFs and summaries."""

from __future__ import annotations

import pytest
from hypothesis import given, strategies as st

from repro.errors import MetricsError
from repro.metrics.cdf import EmpiricalCDF
from repro.metrics.collectors import MetricsCollector
from repro.metrics.records import (
    DownloadRecord,
    SessionRecord,
    TerminationReason,
    TrafficClass,
)
from repro.metrics.summary import SimulationSummary, summarize


def session(
    start=10.0,
    end=20.0,
    request=5.0,
    kbit=100.0,
    traffic=TrafficClass.NON_EXCHANGE,
    ring_size=0,
    sharer=True,
    reason=TerminationReason.COMPLETED,
):
    return SessionRecord(
        provider_id=1,
        requester_id=2,
        object_id=3,
        traffic_class=traffic,
        ring_size=ring_size,
        ring_id=None if ring_size == 0 else 9,
        request_time=request,
        start_time=start,
        end_time=end,
        kbit_transferred=kbit,
        reason=reason,
        requester_is_sharer=sharer,
    )


def download(peer=1, request=0.0, complete=60.0, sharer=True):
    return DownloadRecord(
        peer_id=peer,
        object_id=3,
        request_time=request,
        complete_time=complete,
        size_kbit=100.0,
        peer_is_sharer=sharer,
    )


class TestTrafficClass:
    @pytest.mark.parametrize(
        "size,expected",
        [
            (0, TrafficClass.NON_EXCHANGE),
            (1, TrafficClass.NON_EXCHANGE),
            (2, TrafficClass.PAIRWISE),
            (3, TrafficClass.THREE_WAY),
            (4, TrafficClass.FOUR_WAY),
            (5, TrafficClass.FIVE_WAY),
            (6, TrafficClass.HIGHER_WAY),
            (9, TrafficClass.HIGHER_WAY),
        ],
    )
    def test_for_ring_size(self, size, expected):
        assert TrafficClass.for_ring_size(size) is expected

    def test_is_exchange(self):
        assert not TrafficClass.NON_EXCHANGE.is_exchange
        assert TrafficClass.PAIRWISE.is_exchange
        assert TrafficClass.FIVE_WAY.is_exchange


class TestRecords:
    def test_waiting_time(self):
        assert session(start=10.0, request=4.0).waiting_time == 6.0

    def test_duration(self):
        assert session(start=10.0, end=25.0).duration == 15.0

    def test_session_rejects_negative_duration(self):
        with pytest.raises(ValueError):
            session(start=20.0, end=10.0)

    def test_session_rejects_negative_volume(self):
        with pytest.raises(ValueError):
            session(kbit=-1.0)

    def test_download_time(self):
        assert download(request=10.0, complete=70.0).download_time == 60.0

    def test_download_rejects_time_travel(self):
        with pytest.raises(ValueError):
            download(request=100.0, complete=10.0)


class TestCollector:
    def test_counts_by_class_and_reason(self):
        collector = MetricsCollector()
        collector.record_session(session())
        collector.record_session(session(traffic=TrafficClass.PAIRWISE, ring_size=2))
        assert collector.counters["session.non-exchange"] == 1
        assert collector.counters["session.pairwise"] == 1
        assert collector.reason_counts()[TerminationReason.COMPLETED] == 2

    def test_warmup_filters_by_end_time(self):
        collector = MetricsCollector()
        collector.record_session(session(start=1.0, end=5.0))
        collector.record_session(session(start=1.0, end=50.0))
        assert len(collector.sessions_after(10.0)) == 1

    def test_download_times_filtered_by_class(self):
        collector = MetricsCollector()
        collector.record_download(download(sharer=True, complete=60.0))
        collector.record_download(download(sharer=False, complete=120.0))
        assert collector.download_times(sharer=True) == [60.0]
        assert collector.download_times(sharer=False) == [120.0]
        assert len(collector.download_times()) == 2

    def test_sessions_by_class(self):
        collector = MetricsCollector()
        collector.record_session(session())
        collector.record_session(session(traffic=TrafficClass.PAIRWISE, ring_size=2))
        grouped = collector.sessions_by_class()
        assert len(grouped[TrafficClass.NON_EXCHANGE]) == 1
        assert len(grouped[TrafficClass.PAIRWISE]) == 1


class TestEmpiricalCDF:
    def test_basic_evaluation(self):
        cdf = EmpiricalCDF([1.0, 2.0, 3.0, 4.0])
        assert cdf(0.5) == 0.0
        assert cdf(1.0) == 0.25
        assert cdf(2.5) == 0.5
        assert cdf(4.0) == 1.0
        assert cdf(99.0) == 1.0

    def test_empty_rejected(self):
        with pytest.raises(MetricsError):
            EmpiricalCDF([])

    def test_quantiles(self):
        cdf = EmpiricalCDF([10.0, 20.0, 30.0, 40.0])
        assert cdf.quantile(0.25) == 10.0
        assert cdf.quantile(0.5) == 20.0
        assert cdf.quantile(1.0) == 40.0

    def test_quantile_bounds(self):
        cdf = EmpiricalCDF([1.0])
        with pytest.raises(MetricsError):
            cdf.quantile(0.0)
        with pytest.raises(MetricsError):
            cdf.quantile(1.1)

    def test_mean_and_range(self):
        cdf = EmpiricalCDF([2.0, 4.0])
        assert cdf.mean() == 3.0
        assert (cdf.min, cdf.max) == (2.0, 4.0)

    def test_points_are_monotone(self):
        cdf = EmpiricalCDF(range(1000))
        pts = cdf.points(max_points=50)
        xs = [x for x, _ in pts]
        ys = [y for _, y in pts]
        assert xs == sorted(xs)
        assert ys == sorted(ys)
        assert ys[-1] == 1.0
        assert len(pts) <= 52

    @given(st.lists(st.floats(min_value=-1e6, max_value=1e6, allow_nan=False), min_size=1))
    def test_cdf_monotone_property(self, samples):
        cdf = EmpiricalCDF(samples)
        lo, hi = min(samples), max(samples)
        assert cdf(lo - 1) == 0.0
        assert cdf(hi) == 1.0
        mid = (lo + hi) / 2
        assert 0.0 <= cdf(mid) <= 1.0


class TestSummarize:
    def test_headline_numbers(self):
        collector = MetricsCollector()
        collector.record_download(download(sharer=True, complete=60.0))
        collector.record_download(download(sharer=True, complete=120.0))
        collector.record_download(download(sharer=False, complete=360.0))
        collector.record_session(session(sharer=True))
        collector.record_session(
            session(traffic=TrafficClass.PAIRWISE, ring_size=2, sharer=False)
        )
        summary = summarize(collector, warmup=0.0, num_sharers=2, num_freeloaders=2)
        assert summary.mean_download_time_sharers_min == pytest.approx(1.5)
        assert summary.mean_download_time_freeloaders_min == pytest.approx(6.0)
        assert summary.speedup_sharers_vs_freeloaders == pytest.approx(4.0)
        assert summary.exchange_session_fraction == 0.5
        assert summary.completed_downloads_sharers == 2

    def test_empty_run_yields_nones(self):
        summary = summarize(MetricsCollector(), warmup=0.0, num_sharers=1, num_freeloaders=1)
        assert summary.mean_download_time_sharers_min is None
        assert summary.exchange_session_fraction is None
        assert summary.speedup_sharers_vs_freeloaders is None

    @staticmethod
    def _summary_with_means(sharers, freeloaders):
        return SimulationSummary(
            mean_download_time_sharers_min=sharers,
            mean_download_time_freeloaders_min=freeloaders,
            mean_download_time_all_min=None,
            completed_downloads_sharers=0,
            completed_downloads_freeloaders=0,
            exchange_session_fraction=None,
        )

    def test_speedup_zero_sharer_mean_is_undefined_not_missing(self):
        # Regression: `if not sharers` conflated a legitimate 0.0 mean
        # with missing data and risked dividing by zero.
        summary = self._summary_with_means(0.0, 5.0)
        assert summary.speedup_sharers_vs_freeloaders is None

    def test_speedup_zero_freeloader_mean_is_valid_data(self):
        summary = self._summary_with_means(5.0, 0.0)
        assert summary.speedup_sharers_vs_freeloaders == 0.0

    def test_speedup_none_either_side_is_none(self):
        assert self._summary_with_means(None, 5.0).speedup_sharers_vs_freeloaders is None
        assert self._summary_with_means(5.0, None).speedup_sharers_vs_freeloaders is None

    def test_summary_dict_roundtrip(self):
        collector = MetricsCollector()
        collector.record_download(download(sharer=True, complete=60.0))
        collector.record_session(session(sharer=True))
        summary = summarize(collector, warmup=0.0, num_sharers=2, num_freeloaders=2)
        data = summary.to_dict()
        import json

        restored = SimulationSummary.from_dict(json.loads(json.dumps(data)))
        assert restored == summary

    def test_summary_from_dict_rejects_unknown_fields(self):
        with pytest.raises(ValueError):
            SimulationSummary.from_dict({"definitely_not_a_field": 1})

    def test_warmup_censors_early_records(self):
        collector = MetricsCollector()
        collector.record_download(download(complete=5.0))
        collector.record_download(download(complete=500.0))
        summary = summarize(collector, warmup=100.0, num_sharers=1, num_freeloaders=1)
        assert summary.completed_downloads_sharers == 1

    def test_volume_per_class_normalized(self):
        collector = MetricsCollector()
        collector.record_session(session(kbit=8192.0, sharer=True))
        summary = summarize(collector, warmup=0.0, num_sharers=2, num_freeloaders=5)
        assert summary.volume_per_sharer_mb == pytest.approx(0.5)
        assert summary.volume_per_freeloader_mb == 0.0
