"""Shared factories and helpers for the test suite."""

from __future__ import annotations

import math

from repro.config import SimulationConfig
from repro.content.catalog import Catalog, Category, ContentObject
from repro.context import SimContext
from repro.network.behaviors import FREELOADER, SHARER
from repro.network.lookup import LookupService


def tiny_catalog(
    num_categories: int = 3, objects_per_category: int = 4, size_kbit: float = 4096.0
) -> Catalog:
    """A small deterministic catalog: ids are dense, sizes equal."""
    categories = []
    next_id = 0
    for cid in range(num_categories):
        objects = tuple(
            ContentObject(
                object_id=next_id + rank - 1,
                category_id=cid,
                rank=rank,
                size_kbit=size_kbit,
            )
            for rank in range(1, objects_per_category + 1)
        )
        next_id += objects_per_category
        categories.append(Category(category_id=cid, rank=cid + 1, objects=objects))
    return Catalog(categories)


def small_config(**overrides) -> SimulationConfig:
    """A fast-but-loaded configuration for integration tests."""
    defaults = dict(
        num_peers=20,
        num_categories=10,
        objects_per_category_min=2,
        objects_per_category_max=10,
        categories_per_peer_min=1,
        categories_per_peer_max=4,
        object_size_mb=1.0,
        block_size_kbit=1024.0,
        storage_min_objects=3,
        storage_max_objects=8,
        storage_check_interval=300.0,
        max_pending=4,
        request_fanout=3,
        scan_interval=30.0,
        duration=8000.0,
        warmup=1000.0,
        bootstrap_window=20.0,
        seed=11,
    )
    defaults.update(overrides)
    return SimulationConfig(**defaults)


class StubPolicy:
    """Minimal policy stand-in for peer-level unit tests."""

    def __init__(self, max_ring: int = 0) -> None:
        self.max_ring = max_ring

    @property
    def enables_exchanges(self) -> bool:
        return self.max_ring >= 2

    @property
    def tree_levels(self) -> int:
        return max(0, self.max_ring - 1)

    def accepts(self, ring_size: int) -> bool:
        return 2 <= ring_size <= self.max_ring

    def order(self, candidates):
        return [c for c in candidates if self.accepts(c.size)]


def make_ctx(config: SimulationConfig | None = None, catalog: Catalog | None = None):
    """A bare context with catalog + lookup wired (no peers)."""
    config = config or small_config()
    ctx = SimContext(config)
    ctx.catalog = catalog or tiny_catalog(size_kbit=config.object_size_kbit)
    ctx.lookup = LookupService(coverage=config.lookup_coverage)
    return ctx


def blocks_for(config: SimulationConfig, size_kbit: float) -> int:
    return max(1, math.ceil(size_kbit / config.block_size_kbit))


# ---------------------------------------------------------------------------
# Manual network assembly (unit tests drive peers without a full simulation)
# ---------------------------------------------------------------------------

from repro.content.interests import InterestProfile  # noqa: E402
from repro.content.storage import ObjectStore  # noqa: E402
from repro.core.policies import parse_mechanism  # noqa: E402
from repro.network.peer import Peer  # noqa: E402


def build_peer(ctx, peer_id, shares=True, mechanism="2-5-way", capacity=20):
    """Create a peer wired into ``ctx`` with a trivial interest profile."""
    profile = InterestProfile([0], [1.0])
    store = ObjectStore(capacity)
    behavior = SHARER if shares else FREELOADER
    peer = Peer(ctx, peer_id, behavior, parse_mechanism(mechanism), profile, store)
    ctx.peers[peer_id] = peer
    return peer


def give(ctx, peer, object_id):
    """Store an object at a peer and register it with lookup if shared."""
    if peer.store.add_if_absent(object_id):
        if peer.behavior.shares:
            ctx.lookup.register(peer.peer_id, object_id)


def drain(ctx, until=None, max_events=100_000):
    """Run pending events (zero-delay passes included)."""
    if until is None:
        until = ctx.engine.now
    ctx.engine.run(until=until, max_events=max_events)
