"""Tests for the Bloom filter and the §V Bloom request-tree summaries."""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.bloom import BloomFilter, optimal_num_hashes
from repro.core.bloom_tree import (
    BloomTreeSummary,
    false_positive_probe,
    full_tree_wire_size,
    resolve_ring,
)
from repro.core.irq import IncomingRequestQueue, RequestEntry
from repro.core.request_tree import RequestTreeNode
from repro.errors import ConfigError


def node(peer_id, object_id, *children):
    return RequestTreeNode(peer_id, object_id, tuple(children))


class TestBloomFilter:
    def test_no_false_negatives(self):
        bloom = BloomFilter(bits=128, num_hashes=3)
        for item in range(30):
            bloom.add(item)
        for item in range(30):
            assert item in bloom

    def test_empty_filter_contains_nothing(self):
        bloom = BloomFilter(bits=128, num_hashes=3)
        assert 7 not in bloom
        assert bloom.expected_false_positive_rate() == 0.0

    def test_size_bytes(self):
        assert BloomFilter(bits=256, num_hashes=3).size_bytes == 32
        assert BloomFilter(bits=9, num_hashes=1).size_bytes == 2

    def test_fill_ratio_grows(self):
        bloom = BloomFilter(bits=64, num_hashes=2)
        before = bloom.fill_ratio()
        bloom.add(1)
        assert bloom.fill_ratio() > before

    def test_fp_rate_reasonable(self):
        # 256 bits, 16 items, optimal k: fp rate should be modest and the
        # empirical rate in the same ballpark as the analytic estimate.
        k = optimal_num_hashes(256, 16)
        bloom = BloomFilter(bits=256, num_hashes=k)
        members = set(range(16))
        bloom.update(members)
        false_hits = sum(1 for probe in range(1000, 3000) if probe in bloom)
        empirical = false_hits / 2000
        assert empirical < 0.1
        assert bloom.expected_false_positive_rate() < 0.1

    def test_invalid_construction(self):
        with pytest.raises(ConfigError):
            BloomFilter(bits=0, num_hashes=1)
        with pytest.raises(ConfigError):
            BloomFilter(bits=8, num_hashes=0)
        with pytest.raises(ConfigError):
            optimal_num_hashes(0, 5)

    @settings(max_examples=30)
    @given(items=st.sets(st.integers(min_value=0, max_value=10**9), max_size=40))
    def test_membership_property(self, items):
        bloom = BloomFilter(bits=512, num_hashes=4)
        bloom.update(items)
        assert all(item in bloom for item in items)


class TestBloomTreeSummary:
    def _tree(self):
        # root 1 -> {2 -> {4}, 3}
        return node(1, None, node(2, 20, node(4, 44)), node(3, 30))

    def test_levels_capture_depths(self):
        summary = BloomTreeSummary.from_tree(self._tree(), max_levels=3)
        assert summary.depth_candidates(2) == [0]
        assert summary.depth_candidates(3) == [0]
        assert summary.depth_candidates(4) == [1]
        assert summary.root_peer_id == 1

    def test_root_special_cased(self):
        summary = BloomTreeSummary.from_tree(self._tree(), max_levels=3)
        assert summary.depth_candidates(1) == [-1]
        assert summary.may_contain(1)

    def test_absent_peer_usually_absent(self):
        summary = BloomTreeSummary.from_tree(self._tree(), max_levels=3)
        misses = sum(1 for peer in range(1000, 1100) if not summary.may_contain(peer))
        assert misses > 90  # a few false positives are allowed by design

    def test_trimmed_drops_deepest_level(self):
        summary = BloomTreeSummary.from_tree(self._tree(), max_levels=3)
        trimmed = summary.trimmed()
        assert len(trimmed.levels) == 2
        assert trimmed.root_peer_id == 1

    def test_wire_size_beats_full_tree(self):
        # A realistic snapshot: 60 nodes of 20-byte ids vs 4 level filters.
        wide = node(
            1,
            None,
            *[node(10 + i, 100 + i, *[node(50 + i * 3 + j, 500 + j) for j in range(2)])
              for i in range(20)],
        )
        summary = BloomTreeSummary.from_tree(wide, max_levels=4, bits_per_level=256)
        assert summary.size_bytes < full_tree_wire_size(wide)

    def test_false_positive_probe(self):
        summary = BloomTreeSummary.from_tree(self._tree(), max_levels=3)
        false_positives, probes = false_positive_probe(
            summary, present={2, 3, 4}, universe=range(100, 400)
        )
        assert probes == 300
        assert false_positives / probes < 0.1


class TestResolveRing:
    def _irq(self):
        irq = IncomingRequestQueue(capacity=10)
        tree = node(2, None, node(4, 44))
        irq.add(RequestEntry(2, 20, 0.0, tree=tree))
        return irq

    def test_resolves_live_path(self):
        resolution = resolve_ring(1, self._irq(), target_peer_id=4, max_depth=3)
        assert resolution.success
        assert resolution.path == (2, 4)

    def test_depth_limit_respected(self):
        resolution = resolve_ring(1, self._irq(), target_peer_id=4, max_depth=1)
        assert not resolution.success
        assert resolution.failure_reason == "no-live-path"

    def test_zero_depth_fails_fast(self):
        resolution = resolve_ring(1, self._irq(), target_peer_id=4, max_depth=0)
        assert not resolution.success
        assert resolution.failure_reason == "max-depth-exhausted"

    def test_missing_target_fails(self):
        resolution = resolve_ring(1, self._irq(), target_peer_id=99, max_depth=5)
        assert not resolution.success
