"""Guards for the hot-path optimizations: faster, but bit-identical.

The perf work (exchange-search gating, lazy scheduler ordering, cached
lookup views, tree caches, heap tuples) must not change anything a
fixed-seed run can observe: the RNG stream shapes, the event order, the
metrics.  These tests pin that contract:

* a golden-file test holds the rendered fig7 smoke table byte-for-byte
  (one full simulation end to end, CDFs and all);
* targeted tests check each optimization actually *optimizes* (the
  gate skips idle searches, caches invalidate on change) without
  changing results;
* the two lookup RNG paths (shuffle under full coverage, sample under
  partial) are pinned so a future "normalization" cannot silently
  re-seed every historical result.
"""

from __future__ import annotations

import os
import random

from repro.core import exchange_manager
from repro.core.disciplines import make_discipline
from repro.core.irq import IncomingRequestQueue, RequestEntry
from repro.experiments.figures import fig7_session_volume_cdf
from repro.network.lookup import LookupService

from tests.helpers import build_peer, give, make_ctx

GOLDEN_DIR = os.path.join(os.path.dirname(__file__), "golden")


class TestGoldenFigure:
    def test_fig7_smoke_table_byte_identical(self):
        """The fig7 smoke table must not move — regenerating it is a
        deliberate act (optimizations never qualify; model changes do)."""
        with open(os.path.join(GOLDEN_DIR, "fig7_smoke_seed42.txt")) as handle:
            golden = handle.read()
        table = fig7_session_volume_cdf(scale="smoke", seed=42)
        assert table.render() + "\n" == golden


class TestExchangeSearchGate:
    def _wired_pair(self):
        ctx = make_ctx()
        a = build_peer(ctx, 0)
        b = build_peer(ctx, 1)
        give(ctx, a, 0)
        give(ctx, b, 1)
        return ctx, a, b

    def test_idle_search_key_set_after_empty_search(self):
        ctx, a, _b = self._wired_pair()
        a.start_download(ctx.catalog.object(1))
        # Nothing requests from A, so the unrestricted search finds no
        # candidates and arms the gate.
        assert exchange_manager.try_form_exchanges(a) == 0
        assert a.idle_search_key is not None
        assert a.idle_search_key == exchange_manager.search_state_key(a)

    def test_gated_pass_skips_open_wants(self, monkeypatch):
        ctx, a, _b = self._wired_pair()
        a.start_download(ctx.catalog.object(1))
        exchange_manager.try_form_exchanges(a)
        calls = []
        original = exchange_manager.open_wants
        monkeypatch.setattr(
            exchange_manager, "open_wants",
            lambda *args, **kw: calls.append(1) or original(*args, **kw),
        )
        assert exchange_manager.try_form_exchanges(a) == 0
        assert calls == [], "gated pass must skip the provider-set rebuild"

    def test_wanted_object_mutation_reopens_the_gate(self):
        ctx, a, b = self._wired_pair()
        a.start_download(ctx.catalog.object(1))
        exchange_manager.try_form_exchanges(a)
        key = a.idle_search_key
        third = build_peer(ctx, 2)
        give(ctx, third, 1)  # a new provider for the object A wants
        assert exchange_manager.search_state_key(a) != key

    def test_unrelated_index_churn_keeps_the_gate_closed(self):
        ctx, a, b = self._wired_pair()
        a.start_download(ctx.catalog.object(1))
        exchange_manager.try_form_exchanges(a)
        key = a.idle_search_key
        give(ctx, b, 2)  # an object A has no pending request for
        assert exchange_manager.search_state_key(a) == key

    def test_incoming_request_reopens_the_gate_and_forms_the_ring(self):
        ctx, a, b = self._wired_pair()
        a.start_download(ctx.catalog.object(1))
        assert exchange_manager.try_form_exchanges(a) == 0
        # B's request lands in A's IRQ (version bump): the pairwise
        # 0<->1 ring is now feasible and the gate must not hide it.
        b.start_download(ctx.catalog.object(0))
        ctx.engine.run(until=1.0)
        assert a.exchange_upload_count == 1

    def test_binding_change_reopens_the_gate(self):
        ctx, a, _b = self._wired_pair()
        a.start_download(ctx.catalog.object(1))
        exchange_manager.try_form_exchanges(a)
        key = a.idle_search_key
        a.irq.note_binding_change()
        assert exchange_manager.search_state_key(a) != key


class TestDisciplineLazyOrdering:
    def _entries(self, n):
        # Arrival times at or before the (fresh) engine clock of zero.
        rand = random.Random(7)
        entries = []
        for i in range(n):
            entries.append(
                RequestEntry(
                    requester_id=i % 5 + 10,
                    object_id=i,
                    arrival_time=-rand.random() * 50.0,
                )
            )
        return entries

    def test_credit_heap_order_matches_stable_sort(self):
        ctx = make_ctx()
        peer = build_peer(ctx, 0)
        for i in range(5):
            requester = build_peer(ctx, 10 + i)
            requester.credit  # ensure the ledger exists
        discipline = make_discipline("credit", 0, shares=True, fake_participation=False)
        peer.discipline = discipline
        entries = self._entries(12)
        # Seed asymmetric credit so ranks genuinely differ.
        for i, entry in enumerate(entries):
            discipline.credit.record_received(entry.requester_id, 1024.0 * (i % 3))
        now = peer.ctx.now
        expected = sorted(
            list(entries),
            key=lambda e: -discipline.credit.rank(
                e.requester_id, now - e.arrival_time + 1.0
            ),
        )
        assert list(discipline.service_iter(peer, entries)) == expected
        assert discipline.order(peer, list(entries)) == expected

    def test_fifo_service_iter_streams_input_order(self):
        ctx = make_ctx()
        peer = build_peer(ctx, 0)
        entries = self._entries(6)
        assert list(peer.discipline.service_iter(peer, entries)) == entries


class TestIrqSnapshotCache:
    def _entry(self, requester, obj):
        return RequestEntry(requester_id=requester, object_id=obj, arrival_time=0.0)

    def test_snapshot_cached_until_version_changes(self):
        irq = IncomingRequestQueue(capacity=10)
        irq.add(self._entry(2, 20))
        first = irq.snapshot()
        assert irq.snapshot() is first
        irq.add(self._entry(3, 30))
        second = irq.snapshot()
        assert second is not first
        assert [e.requester_id for e in second] == [2, 3]

    def test_snapshot_safe_across_mutation(self):
        irq = IncomingRequestQueue(capacity=10)
        irq.add(self._entry(2, 20))
        irq.add(self._entry(3, 30))
        snap = irq.snapshot()
        irq.remove(2, 20)
        # The held snapshot still lists both; the removed one is inactive.
        assert [e.requester_id for e in snap] == [2, 3]
        assert not snap[0].active
        assert [e.requester_id for e in irq.snapshot()] == [3]


class TestLookupDeterminism:
    """Pins the RNG stream *shape* of both coverage paths (satellite:
    full coverage shuffles, partial coverage samples — documented and
    frozen, so the coverage sweep stays internally comparable)."""

    def _service(self, coverage):
        service = LookupService(coverage=coverage)
        for peer_id in range(5):
            service.register(peer_id, 7)
        return service

    def test_full_coverage_path_pinned(self):
        service = self._service(1.0)
        got = service.find_providers(7, requester_id=9, rand=random.Random(42))
        reference = [0, 1, 2, 3, 4]
        random.Random(42).shuffle(reference)
        assert got == reference
        # Bit-for-bit repeatable under the same seed.
        assert service.find_providers(7, 9, random.Random(42)) == got

    def test_partial_coverage_path_pinned(self):
        service = self._service(0.5)
        got = service.find_providers(7, requester_id=9, rand=random.Random(42))
        reference = random.Random(42).sample([0, 1, 2, 3, 4], 3)
        assert got == reference
        assert service.find_providers(7, 9, random.Random(42)) == got

    def test_requester_excluded_and_cache_fresh_per_call(self):
        service = self._service(1.0)
        first = service.find_providers(7, requester_id=3, rand=random.Random(1))
        assert 3 not in first
        # The shuffle must never leak into the cached sorted view.
        assert service._sorted_providers(7) == [0, 1, 2, 3, 4]

    def test_cache_invalidated_on_register_unregister(self):
        service = self._service(1.0)
        assert service._sorted_providers(7) == [0, 1, 2, 3, 4]
        version = service.version
        service.unregister(2, 7)
        assert service.version == version + 1
        assert service._sorted_providers(7) == [0, 1, 3, 4]
        service.register(9, 7)
        assert service._sorted_providers(7) == [0, 1, 3, 4, 9]
