"""Unit tests for the ring search over composite request trees."""

from __future__ import annotations

from repro.core.irq import IncomingRequestQueue, RequestEntry
from repro.core.request_tree import RequestTreeNode
from repro.core.ring_search import find_candidates, path_is_usable


def tree(peer_id, *children):
    return RequestTreeNode(peer_id, None, tuple(children))


def node(peer_id, object_id, *children):
    return RequestTreeNode(peer_id, object_id, tuple(children))


class TestPathUsable:
    def test_simple_path_ok(self):
        assert path_is_usable(((2, 20),), searcher_id=1, max_ring=5)

    def test_path_through_searcher_rejected(self):
        assert not path_is_usable(((2, 20), (1, 10)), searcher_id=1, max_ring=5)

    def test_path_too_long_rejected(self):
        path = tuple((i, i * 10) for i in range(2, 7))  # 5 steps -> ring of 6
        assert not path_is_usable(path, searcher_id=1, max_ring=5)
        assert path_is_usable(path, searcher_id=1, max_ring=6)


class TestFindCandidates:
    def _irq(self, *entries):
        irq = IncomingRequestQueue(capacity=100)
        for e in entries:
            assert irq.add(e)
        return irq

    def test_pairwise_candidate_found(self):
        # Peer 2 requests object 20 from us; peer 2 provides object 7 we want.
        irq = self._irq(RequestEntry(2, 20, 0.0))
        candidates = find_candidates(1, irq, wants={7: {2}}, max_ring=5)
        assert len(candidates) == 1
        cand = candidates[0]
        assert cand.size == 2
        assert cand.want_object_id == 7
        assert cand.closing_peer_id == 2
        assert cand.path == ((2, 20),)

    def test_no_candidates_when_providers_disjoint(self):
        irq = self._irq(RequestEntry(2, 20, 0.0))
        assert find_candidates(1, irq, wants={7: {9}}, max_ring=5) == []

    def test_three_way_candidate_through_tree(self):
        # Peer 2 requested 20 from us; its snapshot says peer 4 requested
        # 44 from peer 2.  Peer 4 provides object 7 we want: ring 1-4-2.
        snapshot = tree(2, node(4, 44))
        irq = self._irq(RequestEntry(2, 20, 0.0, tree=snapshot))
        candidates = find_candidates(1, irq, wants={7: {4}}, max_ring=5)
        assert len(candidates) == 1
        assert candidates[0].size == 3
        assert candidates[0].path == ((2, 20), (4, 44))

    def test_max_ring_limits_depth(self):
        snapshot = tree(2, node(4, 44, node(5, 55)))
        irq = self._irq(RequestEntry(2, 20, 0.0, tree=snapshot))
        assert find_candidates(1, irq, wants={7: {5}}, max_ring=3) == []
        found = find_candidates(1, irq, wants={7: {5}}, max_ring=4)
        assert [c.size for c in found] == [4]

    def test_multiple_wants_multiple_candidates(self):
        irq = self._irq(RequestEntry(2, 20, 0.0), RequestEntry(3, 30, 1.0))
        candidates = find_candidates(1, irq, wants={7: {2}, 8: {3}}, max_ring=5)
        assert {(c.want_object_id, c.closing_peer_id) for c in candidates} == {
            (7, 2),
            (8, 3),
        }

    def test_searcher_in_path_excluded(self):
        # Peer 2's snapshot claims WE (peer 1) requested something from it;
        # a ring through ourselves is not a ring.
        snapshot = tree(2, node(1, 11, node(4, 44)))
        irq = self._irq(RequestEntry(2, 20, 0.0, tree=snapshot))
        assert find_candidates(1, irq, wants={7: {4}}, max_ring=5) == []

    def test_entries_restriction(self):
        first = RequestEntry(2, 20, 0.0)
        second = RequestEntry(3, 30, 1.0)
        irq = self._irq(first, second)
        candidates = find_candidates(
            1, irq, wants={7: {2}, 8: {3}}, max_ring=5, entries=[second]
        )
        assert [(c.want_object_id, c.closing_peer_id) for c in candidates] == [(8, 3)]

    def test_inactive_entries_skipped(self):
        first = RequestEntry(2, 20, 0.0)
        irq = self._irq(first)
        irq.remove(2, 20)
        assert find_candidates(1, irq, wants={7: {2}}, max_ring=5) == []
        assert (
            find_candidates(1, irq, wants={7: {2}}, max_ring=5, entries=[first]) == []
        )

    def test_no_exchange_when_ring_too_small(self):
        irq = self._irq(RequestEntry(2, 20, 0.0))
        assert find_candidates(1, irq, wants={7: {2}}, max_ring=1) == []

    def test_empty_wants(self):
        irq = self._irq(RequestEntry(2, 20, 0.0))
        assert find_candidates(1, irq, wants={}, max_ring=5) == []

    def test_deterministic_order(self):
        irq = self._irq(RequestEntry(2, 20, 0.0), RequestEntry(3, 30, 1.0))
        wants = {8: {3, 2}, 7: {2}}
        first = find_candidates(1, irq, wants, 5)
        second = find_candidates(1, irq, wants, 5)
        assert [(c.want_object_id, c.path) for c in first] == [
            (c.want_object_id, c.path) for c in second
        ]
        # Objects visited in sorted order.
        assert first[0].want_object_id == 7
