"""Unit tests for request trees: building, pruning, occurrences."""

from __future__ import annotations

from hypothesis import given, settings, strategies as st

from repro.core.irq import IncomingRequestQueue, RequestEntry
from repro.core.request_tree import (
    RequestTreeNode,
    build_snapshot,
    iter_occurrences,
    occurrence_index,
    prune,
)


def leaf(peer_id, object_id):
    return RequestTreeNode(peer_id, object_id)


def node(peer_id, object_id, *children):
    return RequestTreeNode(peer_id, object_id, tuple(children))


class TestTreeBasics:
    def test_node_count(self):
        tree = node(1, None, leaf(2, 20), node(3, 30, leaf(4, 40)))
        assert tree.node_count() == 4

    def test_depth(self):
        assert leaf(1, None).depth() == 1
        tree = node(1, None, node(2, 20, leaf(3, 30)))
        assert tree.depth() == 3

    def test_roundtrip_serialization(self):
        tree = node(1, None, leaf(2, 20), node(3, 30, leaf(4, 40)))
        assert RequestTreeNode.from_dict(tree.to_dict()).to_dict() == tree.to_dict()

    def test_iter_nodes_preorder(self):
        tree = node(1, None, leaf(2, 20), leaf(3, 30))
        assert [n.peer_id for n in tree.iter_nodes()] == [1, 2, 3]


class TestPrune:
    def test_prune_depth(self):
        tree = node(1, None, node(2, 20, node(3, 30, leaf(4, 40))))
        pruned = prune(tree, levels=2)
        assert pruned.depth() == 2
        assert pruned.children[0].children == ()

    def test_prune_zero_levels_gives_none(self):
        assert prune(leaf(1, None), levels=0) is None

    def test_prune_budget_limits_nodes(self):
        wide = node(1, None, *[leaf(i, i * 10) for i in range(2, 12)])
        budget = [4]
        pruned = prune(wide, levels=3, budget=budget)
        assert pruned.node_count() <= 4

    def test_prune_shares_subtrees_that_fit(self):
        # Nodes are immutable, so a subtree already within the level
        # and budget bounds is returned as-is instead of deep-copied.
        tree = node(1, None, leaf(2, 20))
        assert prune(tree, levels=5) is tree
        assert prune(tree, levels=5, budget=[100]) is tree

    def test_prune_truncation_builds_fresh_nodes(self):
        tree = node(1, None, node(2, 20, leaf(3, 30)))
        pruned = prune(tree, levels=2)
        assert pruned is not tree
        assert pruned.to_dict() == {
            "peer": 1,
            "object": None,
            "children": [{"peer": 2, "object": 20, "children": []}],
        }
        # The original is untouched by the truncation.
        assert tree.children[0].children[0].peer_id == 3

    @settings(max_examples=30)
    @given(levels=st.integers(min_value=1, max_value=6))
    def test_pruned_depth_never_exceeds_levels(self, levels):
        deep = leaf(9, 90)
        for peer in range(8, 0, -1):
            deep = node(peer, peer * 10 if peer != 1 else None, deep)
        pruned = prune(deep, levels=levels)
        assert pruned.depth() <= levels


class TestBuildSnapshot:
    def _irq_with(self, *entries):
        irq = IncomingRequestQueue(capacity=100)
        for entry in entries:
            assert irq.add(entry)
        return irq

    def test_empty_irq_bare_root(self):
        irq = IncomingRequestQueue(capacity=10)
        snapshot = build_snapshot(7, irq, levels=4, node_budget=100)
        assert snapshot.peer_id == 7
        assert snapshot.object_id is None
        assert snapshot.children == ()

    def test_zero_levels_returns_none(self):
        irq = IncomingRequestQueue(capacity=10)
        assert build_snapshot(7, irq, levels=0, node_budget=100) is None

    def test_one_level_snapshot_has_no_children(self):
        irq = self._irq_with(RequestEntry(2, 20, 0.0))
        snapshot = build_snapshot(7, irq, levels=1, node_budget=100)
        assert snapshot.children == ()

    def test_entries_become_children(self):
        irq = self._irq_with(RequestEntry(2, 20, 0.0), RequestEntry(3, 30, 1.0))
        snapshot = build_snapshot(7, irq, levels=4, node_budget=100)
        assert [(c.peer_id, c.object_id) for c in snapshot.children] == [(2, 20), (3, 30)]

    def test_attached_trees_nested(self):
        # Entry from peer 2 carries peer 2's own snapshot containing peer 4.
        subtree = node(2, None, leaf(4, 44))
        irq = self._irq_with(RequestEntry(2, 20, 0.0, tree=subtree))
        snapshot = build_snapshot(7, irq, levels=4, node_budget=100)
        child = snapshot.children[0]
        assert child.peer_id == 2
        assert [(g.peer_id, g.object_id) for g in child.children] == [(4, 44)]

    def test_levels_limit_composite_depth(self):
        deep = node(2, None, node(4, 44, node(5, 55, leaf(6, 66))))
        irq = self._irq_with(RequestEntry(2, 20, 0.0, tree=deep))
        snapshot = build_snapshot(7, irq, levels=3, node_budget=100)
        assert snapshot.depth() == 3  # 7 -> 2 -> 4; peers 5, 6 pruned

    def test_node_budget_respected(self):
        entries = [RequestEntry(i, i * 10, float(i)) for i in range(2, 30)]
        irq = self._irq_with(*entries)
        snapshot = build_snapshot(7, irq, levels=4, node_budget=10)
        assert snapshot.node_count() <= 10

    def test_inactive_entries_excluded(self):
        irq = self._irq_with(RequestEntry(2, 20, 0.0), RequestEntry(3, 30, 1.0))
        irq.remove(2, 20)
        snapshot = build_snapshot(7, irq, levels=4, node_budget=100)
        assert [c.peer_id for c in snapshot.children] == [3]


class TestOccurrences:
    def test_entry_itself_is_first_occurrence(self):
        occurrences = list(iter_occurrences(2, 20, None))
        assert occurrences == [(2, ((2, 20),))]

    def test_deep_occurrences_carry_paths(self):
        tree = node(2, None, node(4, 44, leaf(5, 55)))
        index = occurrence_index(2, 20, tree)
        assert index[4] == [((2, 20), (4, 44))]
        assert index[5] == [((2, 20), (4, 44), (5, 55))]

    def test_duplicate_peer_paths_filtered(self):
        # Peer 2 appears again below itself: the path 2 -> 4 -> 2 would
        # repeat peer 2 and must not be yielded.
        tree = node(2, None, node(4, 44, leaf(2, 22)))
        index = occurrence_index(2, 20, tree)
        assert 4 in index
        assert index[2] == [((2, 20),)]  # only the direct occurrence

    def test_same_peer_on_two_branches_kept(self):
        tree = node(2, None, node(4, 44, leaf(6, 66)), node(5, 55, leaf(6, 67)))
        index = occurrence_index(2, 20, tree)
        assert len(index[6]) == 2

    def test_malformed_root_label_ignored(self):
        # A non-root node without an object label cannot be an edge.
        tree = node(2, None, RequestTreeNode(4, None))
        index = occurrence_index(2, 20, tree)
        assert 4 not in index
