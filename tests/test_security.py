"""Tests for the §III-B security models."""

from __future__ import annotations

import pytest

from repro.errors import ProtocolError
from repro.security.blacklist import (
    CooperativeBlacklist,
    LocalBlacklist,
    cheap_pseudonym_gain,
)
from repro.security.checksums import Block, BlockValidator, ChecksumService
from repro.security.mediator import EncryptedBlock, MediatedExchange, Mediator
from repro.security.middleman import (
    capacity_exchange_rates,
    mixed_exchange_is_pareto_improvement,
    run_middleman_attack,
    table1_scenario,
)
from repro.security.windows import (
    WindowedExchange,
    max_exchange_rate,
    simulate_defection,
    window_for_rate,
)


class TestChecksums:
    def test_valid_block_accepted(self):
        validator = BlockValidator(ChecksumService())
        assert validator.validate(Block(object_id=1, index=0, valid=True))
        assert validator.valid_accepted == 1

    def test_junk_block_detected(self):
        validator = BlockValidator(ChecksumService())
        assert not validator.validate(Block(object_id=1, index=0, valid=False))
        assert validator.junk_detected == 1
        assert validator.detection_rate == 1.0

    def test_negative_index_rejected(self):
        validator = BlockValidator(ChecksumService())
        with pytest.raises(ProtocolError):
            validator.validate(Block(object_id=1, index=-1))

    def test_detection_rate_mixed(self):
        validator = BlockValidator(ChecksumService())
        validator.validate(Block(1, 0, valid=True))
        validator.validate(Block(1, 1, valid=False))
        assert validator.detection_rate == 0.5


class TestWindows:
    def test_paper_rate_bound(self):
        # S_block / T_rtt with window 1.
        assert max_exchange_rate(256.0, 0.5, window=1) == pytest.approx(512.0)

    def test_window_scales_rate(self):
        assert max_exchange_rate(256.0, 0.5, window=4) == pytest.approx(2048.0)

    def test_window_for_rate(self):
        # 10 kbit/s slot, 256 kbit blocks, 0.2s rtt: window 1 suffices.
        assert window_for_rate(256.0, 0.2, 10.0) == 1
        # Tiny blocks and long rtt need a bigger window.
        assert window_for_rate(1.0, 1.0, 10.0) == 16

    def test_invalid_parameters(self):
        with pytest.raises(ProtocolError):
            max_exchange_rate(0.0, 1.0)
        with pytest.raises(ProtocolError):
            max_exchange_rate(1.0, 0.0)
        with pytest.raises(ProtocolError):
            max_exchange_rate(1.0, 1.0, window=0)

    def test_window_doubles_on_honest_rounds(self):
        exchange = WindowedExchange(BlockValidator(ChecksumService()), max_window=8)
        exchange.run_round([Block(1, 0, valid=True)])
        assert exchange.window == 2
        exchange.run_round([Block(1, 1, valid=True), Block(1, 2, valid=True)])
        assert exchange.window == 4

    def test_immediate_defector_gains_one_block(self):
        exchange = simulate_defection(defect_round=0)
        assert exchange.blocks_lost_to_cheater == 1
        assert exchange.aborted

    def test_haul_bounded_by_window(self):
        for defect_round in range(5):
            exchange = simulate_defection(defect_round, max_window=8)
            assert exchange.blocks_lost_to_cheater <= 8
            assert exchange.blocks_lost_to_cheater <= 2 ** defect_round

    def test_overfull_round_rejected(self):
        exchange = WindowedExchange(BlockValidator(ChecksumService()))
        with pytest.raises(ProtocolError):
            exchange.run_round([Block(1, 0), Block(1, 1)])  # window is 1

    def test_aborted_exchange_refuses_rounds(self):
        exchange = simulate_defection(defect_round=0)
        with pytest.raises(ProtocolError):
            exchange.run_round([])


class TestBlacklists:
    def test_local_blacklist(self):
        blacklist = LocalBlacklist(owner_id=1)
        blacklist.report(9)
        assert not blacklist.allows(9)
        assert blacklist.allows(8)
        assert blacklist.refusals == 1

    def test_local_no_self_ban(self):
        with pytest.raises(ProtocolError):
            LocalBlacklist(owner_id=1).report(1)

    def test_cooperative_threshold(self):
        shared = CooperativeBlacklist(report_threshold=2)
        shared.report(1, 9)
        assert shared.allows(9)  # one report is not enough
        shared.report(2, 9)
        assert not shared.allows(9)
        assert shared.reporters_of(9) == {1, 2}

    def test_cooperative_duplicate_reporter_counts_once(self):
        shared = CooperativeBlacklist(report_threshold=2)
        shared.report(1, 9)
        shared.report(1, 9)
        assert shared.allows(9)

    def test_cooperative_ignores_self_reports(self):
        shared = CooperativeBlacklist()
        with pytest.raises(ProtocolError):
            shared.report(9, 9)

    def test_reporters_of_returns_a_copy(self):
        # Regression: the accessor must never hand out the live report
        # set — a caller could forge witness reports (or erase them) by
        # mutating it, the same leak class as the pre-PR-1
        # LookupService.providers bug.
        shared = CooperativeBlacklist(report_threshold=2)
        shared.report(1, 9)
        shared.reporters_of(9).add(2)  # mutating the returned set...
        assert shared.allows(9)  # ...must not mint a second report
        assert shared.reporters_of(9) == {1}

    def test_cheap_pseudonyms(self):
        assert cheap_pseudonym_gain(100, False, 20) == 2000
        assert cheap_pseudonym_gain(100, True, 20) == 20
        with pytest.raises(ProtocolError):
            cheap_pseudonym_gain(-1, True, 1)


class TestMediator:
    def test_honest_exchange_releases_keys_to_both(self):
        mediator = Mediator()
        exchange = MediatedExchange(mediator, peer_a=1, peer_b=2)
        exchange.transfer(sender_id=1, origin_id=1, object_id=10, blocks=4)
        exchange.transfer(sender_id=2, origin_id=2, object_id=20, blocks=4)
        released = exchange.settle()
        assert released[2] == {1}  # B can decrypt A's data
        assert released[1] == {2}  # A can decrypt B's data

    def test_cheater_key_withheld(self):
        mediator = Mediator(sample_size=2)
        exchange = MediatedExchange(mediator, peer_a=1, peer_b=2)
        exchange.transfer(sender_id=1, origin_id=1, object_id=10, blocks=4)
        exchange.transfer(sender_id=2, origin_id=2, object_id=20, blocks=4,
                          valid=False)
        released = exchange.settle()
        # The cheater's stream (sender 2) is junk: its key is withheld,
        # so peer 1 cannot be defrauded into decrypting garbage... and
        # peer 2 still receives nothing it could not already read.
        assert 2 not in released.get(1, set())

    def test_one_sided_session_releases_nothing(self):
        mediator = Mediator()
        exchange = MediatedExchange(mediator, peer_a=1, peer_b=2)
        exchange.transfer(sender_id=1, origin_id=1, object_id=10, blocks=4)
        assert exchange.settle() == {}

    def test_keys_for_returns_a_copy(self):
        # Regression: handing out the live release table would let a
        # peer mint decryption rights by mutating the returned set.
        mediator = Mediator()
        exchange = MediatedExchange(mediator, peer_a=1, peer_b=2)
        exchange.transfer(sender_id=1, origin_id=1, object_id=10, blocks=4)
        exchange.transfer(sender_id=2, origin_id=2, object_id=20, blocks=4)
        exchange.settle()
        assert mediator.keys_for(2) == {1}
        mediator.keys_for(2).add(99)  # forging a key grant...
        assert mediator.keys_for(2) == {1}  # ...must not stick
        assert not mediator.can_decrypt(
            2, EncryptedBlock(sender_id=99, origin_id=99, object_id=0, index=0)
        )
        # Unknown peers get an (unshared) empty set, not a live default.
        mediator.keys_for(7).add(1)
        assert mediator.keys_for(7) == set()

    def test_can_decrypt(self):
        mediator = Mediator()
        exchange = MediatedExchange(mediator, peer_a=1, peer_b=2)
        blocks = exchange.transfer(sender_id=1, origin_id=1, object_id=10, blocks=2)
        exchange.transfer(sender_id=2, origin_id=2, object_id=20, blocks=2)
        exchange.settle()
        assert mediator.can_decrypt(2, blocks[0])
        assert not mediator.can_decrypt(99, blocks[0])

    def test_unknown_session_rejected(self):
        mediator = Mediator()
        with pytest.raises(ProtocolError):
            mediator.complete_exchange(42)
        with pytest.raises(ProtocolError):
            mediator.record_block(42, EncryptedBlock(1, 1, 1, 0))


class TestMiddleman:
    def test_attack_succeeds_without_mediator(self):
        outcome = run_middleman_attack(blocks=8, use_mediator=False)
        assert outcome.attack_succeeded
        assert outcome.middleman_readable == 8

    def test_mediator_starves_the_middleman(self):
        outcome = run_middleman_attack(blocks=8, use_mediator=True)
        assert not outcome.attack_succeeded
        assert outcome.middleman_readable == 0
        # The true trading endpoints still complete their exchange.
        assert outcome.endpoints_readable == 16

    def test_table1_matches_paper(self):
        rows = {p.name: p for p in table1_scenario()}
        assert rows["A"].upload == 10.0 and rows["A"].has == "-"
        assert rows["B"].upload == 5.0 and rows["B"].has == "x"
        assert rows["C"].wants == "x" and rows["D"].wants == "x"

    def test_fig3_rates(self):
        rates = capacity_exchange_rates()
        # The paper's outcome: B doubles its receive rate, A joins at 5.
        assert rates["pure"]["B"]["y"] == 5.0
        assert rates["mixed"]["B"]["y"] == 10.0
        assert rates["pure"]["A"]["x"] == 0.0
        assert rates["mixed"]["A"]["x"] == 5.0

    def test_fig3_upload_budgets_respected(self):
        # Mixed exchange: B spends 5 (its full uplink), A spends 10,
        # C and D spend 5 each — nobody exceeds Table I's budget.
        spent = {"A": 10.0, "B": 5.0, "C": 5.0, "D": 5.0}
        budgets = {p.name: p.upload for p in table1_scenario()}
        for name, used in spent.items():
            assert used <= budgets[name]

    def test_mixed_exchange_is_pareto(self):
        assert mixed_exchange_is_pareto_improvement()

    def test_invalid_blocks_rejected(self):
        with pytest.raises(ProtocolError):
            run_middleman_attack(blocks=0)
