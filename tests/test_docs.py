"""Documentation integrity: pages exist, are linked, and links resolve.

The docs CI job runs the same link checker plus every example script;
this test keeps the cheap structural half inside tier-1 so broken doc
links fail locally too, not only in CI.
"""

from __future__ import annotations

import glob
import os
import sys

REPO_ROOT = os.path.abspath(os.path.join(os.path.dirname(__file__), os.pardir))

sys.path.insert(0, os.path.join(REPO_ROOT, "scripts"))
from check_doc_links import broken_links  # noqa: E402


def _doc_files():
    paths = [os.path.join(REPO_ROOT, "README.md")]
    paths.extend(sorted(glob.glob(os.path.join(REPO_ROOT, "docs", "*.md"))))
    return paths


def test_doc_pages_exist():
    for name in ("ARCHITECTURE.md", "PAPER_MAPPING.md", "DETERMINISM.md"):
        assert os.path.exists(os.path.join(REPO_ROOT, "docs", name)), name


def test_readme_links_the_doc_pages():
    with open(os.path.join(REPO_ROOT, "README.md"), encoding="utf-8") as handle:
        readme = handle.read()
    assert "docs/ARCHITECTURE.md" in readme
    assert "docs/PAPER_MAPPING.md" in readme
    assert "docs/DETERMINISM.md" in readme


def test_all_relative_links_resolve():
    files = _doc_files()
    assert len(files) >= 3  # README + the two docs pages
    problems = broken_links(files)
    assert not problems, "broken doc links:\n" + "\n".join(
        f"{path}:{line}: {target}" for path, line, target in problems
    )


def test_every_example_is_runnable_python():
    """Cheap syntax gate; CI executes the examples for real."""
    import ast

    examples = sorted(glob.glob(os.path.join(REPO_ROOT, "examples", "*.py")))
    assert examples
    assert any(path.endswith("strategy_evolution.py") for path in examples)
    for path in examples:
        with open(path, encoding="utf-8") as handle:
            ast.parse(handle.read(), filename=path)
