"""Fixture-based tests for every simlint rule in ``repro.analysis.rules``.

Each test plants a small source fixture exhibiting (or deliberately
avoiding) one hazard and asserts the rule's verdict, so every rule has
an executable specification of what it does and does not flag.
"""

from __future__ import annotations

import textwrap

from repro.analysis import RULE_REGISTRY, run_lint


def lint(tmp_path, source, rules, name="mod.py"):
    path = tmp_path / name
    path.write_text(textwrap.dedent(source), encoding="utf-8")
    instances = [RULE_REGISTRY[r]() for r in rules]
    return run_lint([str(path)], rules=instances).findings


class TestRNG001ModuleLevelRandom:
    def test_module_level_call_is_flagged(self, tmp_path):
        findings = lint(
            tmp_path,
            """\
            import random
            x = random.random()
            """,
            ["RNG001"],
        )
        assert [f.rule for f in findings] == ["RNG001"]
        assert "random.random" in findings[0].message

    def test_random_Random_instantiation_is_allowed(self, tmp_path):
        findings = lint(
            tmp_path,
            """\
            import random
            r = random.Random(7)
            """,
            ["RNG001"],
        )
        assert findings == []

    def test_from_import_of_global_state_is_flagged(self, tmp_path):
        findings = lint(tmp_path, "from random import choice, seed\n", ["RNG001"])
        assert [f.rule for f in findings] == ["RNG001"]

    def test_from_import_of_Random_is_allowed(self, tmp_path):
        findings = lint(tmp_path, "from random import Random\n", ["RNG001"])
        assert findings == []

    def test_instance_draws_are_not_module_level(self, tmp_path):
        findings = lint(
            tmp_path,
            """\
            import random
            rand = random.Random(7)
            x = rand.choice([1, 2, 3])
            """,
            ["RNG001"],
        )
        assert findings == []


class TestRNG002ExplicitStream:
    def test_rng_named_receiver_without_stream_is_flagged(self, tmp_path):
        findings = lint(tmp_path, "x = rng.choice(items)\n", ["RNG002"])
        assert [f.rule for f in findings] == ["RNG002"]

    def test_stream_keyword_satisfies_the_rule(self, tmp_path):
        findings = lint(tmp_path, 'x = rng.choice(items, stream="workload")\n', ["RNG002"])
        assert findings == []

    def test_assignment_from_RandomSource_is_inferred(self, tmp_path):
        findings = lint(
            tmp_path,
            """\
            from repro.sim.rng import RandomSource
            source = RandomSource(7)
            x = source.sample(items, 3)
            """,
            ["RNG002"],
        )
        assert [f.rule for f in findings] == ["RNG002"]

    def test_spawned_source_is_inferred(self, tmp_path):
        findings = lint(
            tmp_path,
            """\
            child = parent.spawn("worker")
            x = child.random()
            """,
            ["RNG002"],
        )
        assert [f.rule for f in findings] == ["RNG002"]

    def test_annotated_parameter_is_inferred(self, tmp_path):
        findings = lint(
            tmp_path,
            """\
            def build(source: "RandomSource"):
                return source.uniform_int(1, 8)
            """,
            ["RNG002"],
        )
        assert [f.rule for f in findings] == ["RNG002"]

    def test_ctx_rng_attribute_is_inferred(self, tmp_path):
        findings = lint(tmp_path, "x = ctx.rng.random()\n", ["RNG002"])
        assert [f.rule for f in findings] == ["RNG002"]

    def test_random_source_only_methods_flag_any_receiver(self, tmp_path):
        findings = lint(tmp_path, "x = anything.shuffled(items)\n", ["RNG002"])
        assert [f.rule for f in findings] == ["RNG002"]

    def test_plain_Random_instances_are_not_flagged(self, tmp_path):
        findings = lint(
            tmp_path,
            """\
            import random
            rand = random.Random(7)
            x = rand.choice(items)
            y = self._rand.sample(items, 2)
            """,
            ["RNG002"],
        )
        assert findings == []


class TestDET001BuiltinHash:
    def test_builtin_hash_is_flagged(self, tmp_path):
        findings = lint(tmp_path, 'seed = hash("topology")\n', ["DET001"])
        assert [f.rule for f in findings] == ["DET001"]

    def test_hashlib_is_the_sanctioned_alternative(self, tmp_path):
        findings = lint(
            tmp_path,
            """\
            import hashlib
            digest = hashlib.sha256(b"topology").digest()
            """,
            ["DET001"],
        )
        assert findings == []

    def test_hash_methods_are_not_the_builtin(self, tmp_path):
        findings = lint(tmp_path, "digest = obj.hash()\n", ["DET001"])
        assert findings == []


class TestDET002UnorderedIteration:
    def test_draw_over_set_call_is_flagged(self, tmp_path):
        findings = lint(tmp_path, "x = rand.sample(set(items), 2)\n", ["DET002"])
        assert [f.rule for f in findings] == ["DET002"]

    def test_sorted_wrapping_fixes_it(self, tmp_path):
        findings = lint(tmp_path, "x = rand.sample(sorted(set(items)), 2)\n", ["DET002"])
        assert findings == []

    def test_list_wrapper_does_not_launder_a_dict_view(self, tmp_path):
        findings = lint(tmp_path, "x = rand.choice(list(table.keys()))\n", ["DET002"])
        assert [f.rule for f in findings] == ["DET002"]

    def test_set_literal_and_comprehension_are_flagged(self, tmp_path):
        findings = lint(
            tmp_path,
            """\
            a = rand.choice(list({1, 2, 3}))
            b = rand.choice(list({x for x in items}))
            """,
            ["DET002"],
        )
        assert [f.rule for f in findings] == ["DET002", "DET002"]

    def test_for_loop_over_set_that_schedules_is_flagged(self, tmp_path):
        findings = lint(
            tmp_path,
            """\
            for peer in set(peers):
                engine.schedule(1.0, peer.scan)
            """,
            ["DET002"],
        )
        assert [f.rule for f in findings] == ["DET002"]

    def test_for_loop_over_set_without_order_sensitive_body_is_fine(self, tmp_path):
        findings = lint(
            tmp_path,
            """\
            total = 0
            for value in set(values):
                total += value
            """,
            ["DET002"],
        )
        assert findings == []

    def test_tainted_local_set_variable_is_tracked(self, tmp_path):
        findings = lint(
            tmp_path,
            """\
            def pick(rand, items):
                candidates = set(items)
                return rand.choice(list(candidates))
            """,
            ["DET002"],
        )
        assert [f.rule for f in findings] == ["DET002"]

    def test_reassigned_local_is_not_tainted(self, tmp_path):
        findings = lint(
            tmp_path,
            """\
            def pick(rand, items):
                candidates = set(items)
                candidates = sorted(candidates)
                return rand.choice(candidates)
            """,
            ["DET002"],
        )
        assert findings == []


class TestDET003WallClock:
    def test_time_time_is_flagged(self, tmp_path):
        findings = lint(tmp_path, "import time\nt = time.time()\n", ["DET003"])
        assert [f.rule for f in findings] == ["DET003"]

    def test_perf_counter_and_datetime_now_are_flagged(self, tmp_path):
        findings = lint(
            tmp_path,
            """\
            import time
            import datetime
            a = time.perf_counter()
            b = datetime.datetime.now()
            """,
            ["DET003"],
        )
        assert [f.rule for f in findings] == ["DET003", "DET003"]

    def test_from_import_is_flagged_at_the_import(self, tmp_path):
        findings = lint(tmp_path, "from time import perf_counter\n", ["DET003"])
        assert [f.rule for f in findings] == ["DET003"]

    def test_engine_time_attribute_is_fine(self, tmp_path):
        findings = lint(tmp_path, "now = engine.now\nt = event.time\n", ["DET003"])
        assert findings == []


class TestSCH001RawHeappush:
    def test_qualified_heappush_is_flagged(self, tmp_path):
        findings = lint(
            tmp_path,
            """\
            import heapq
            heapq.heappush(heap, (0.0, item))
            """,
            ["SCH001"],
        )
        assert [f.rule for f in findings] == ["SCH001"]

    def test_from_import_is_flagged(self, tmp_path):
        findings = lint(tmp_path, "from heapq import heappush\n", ["SCH001"])
        assert [f.rule for f in findings] == ["SCH001"]

    def test_heapify_and_heappop_stay_legal(self, tmp_path):
        findings = lint(
            tmp_path,
            """\
            import heapq
            heapq.heapify(rows)
            first = heapq.heappop(rows)
            """,
            ["SCH001"],
        )
        assert findings == []


FPR_PREAMBLE = """\
from dataclasses import dataclass, field
from typing import Optional, Tuple, Set
"""


def fpr(source):
    """Prefix a dedented FPR001 fixture with the shared import preamble."""
    return FPR_PREAMBLE + textwrap.dedent(source)


class TestFPR001FingerprintCoverage:
    def test_asdict_based_to_dict_covers_everything(self, tmp_path):
        findings = lint(
            tmp_path,
            fpr("""\
            import dataclasses

            @dataclass(frozen=True)
            class SimulationConfig:
                num_peers: int = 200
                def to_dict(self):
                    return dataclasses.asdict(self)
            """),
            ["FPR001"],
        )
        assert findings == []

    def test_hand_enumerated_to_dict_missing_a_field_is_flagged(self, tmp_path):
        findings = lint(
            tmp_path,
            fpr("""\
            @dataclass(frozen=True)
            class SimulationConfig:
                num_peers: int = 200
                new_knob: float = 0.5
                def to_dict(self):
                    return {"num_peers": self.num_peers}
            """),
            ["FPR001"],
        )
        assert [f.rule for f in findings] == ["FPR001"]
        assert "new_knob" in findings[0].message

    def test_nested_spec_with_partial_to_dict_is_flagged(self, tmp_path):
        findings = lint(
            tmp_path,
            fpr("""\
            import dataclasses

            @dataclass(frozen=True)
            class StrategySpec:
                rule: str = "static"
                hidden: float = 1.0
                def to_dict(self):
                    return {"rule": self.rule}

            @dataclass(frozen=True)
            class SimulationConfig:
                strategy: Optional[StrategySpec] = None
                def to_dict(self):
                    return dataclasses.asdict(self)
            """),
            ["FPR001"],
        )
        assert [f.rule for f in findings] == ["FPR001"]
        assert "StrategySpec.hidden" in findings[0].message

    def test_union_alias_is_expanded(self, tmp_path):
        findings = lint(
            tmp_path,
            fpr("""\
            from typing import Union

            @dataclass(frozen=True)
            class Phase:
                time: float
                secret: int = 0
                def to_dict(self):
                    return {"time": self.time}

            @dataclass(frozen=True)
            class Arrival:
                time: float

            ScenarioEvent = Union[Phase, Arrival]

            @dataclass(frozen=True)
            class SimulationConfig:
                scenario: Tuple[ScenarioEvent, ...] = ()
            """),
            ["FPR001"],
        )
        assert [f.rule for f in findings] == ["FPR001"]
        assert "Phase.secret" in findings[0].message

    def test_unordered_container_in_fingerprinted_field_is_flagged(self, tmp_path):
        findings = lint(
            tmp_path,
            fpr("""\
            @dataclass(frozen=True)
            class SimulationConfig:
                banned_peers: Set[int] = field(default_factory=set)
            """),
            ["FPR001"],
        )
        assert [f.rule for f in findings] == ["FPR001"]
        assert "unordered" in findings[0].message

    def test_reachable_plain_class_is_flagged(self, tmp_path):
        findings = lint(
            tmp_path,
            fpr("""\
            class Opaque:
                pass

            @dataclass(frozen=True)
            class SimulationConfig:
                thing: Optional[Opaque] = None
            """),
            ["FPR001"],
        )
        assert [f.rule for f in findings] == ["FPR001"]
        assert "not a dataclass" in findings[0].message

    def test_unresolvable_reference_is_flagged(self, tmp_path):
        findings = lint(
            tmp_path,
            fpr("""\
            @dataclass(frozen=True)
            class SimulationConfig:
                mystery: "SomewhereElse" = None
            """),
            ["FPR001"],
        )
        assert [f.rule for f in findings] == ["FPR001"]
        assert "SomewhereElse" in findings[0].message

    def test_intentional_exclusion_is_suppressed_on_the_field_line(self, tmp_path):
        findings = lint(
            tmp_path,
            fpr("""\
            @dataclass(frozen=True)
            class SimulationConfig:
                num_peers: int = 200
                cache_dir: str = ""  # simlint: disable=FPR001 -- path never affects results
                def to_dict(self):
                    return {"num_peers": self.num_peers}
            """),
            ["FPR001"],
        )
        assert findings == []

    def test_unreachable_dataclasses_are_ignored(self, tmp_path):
        findings = lint(
            tmp_path,
            fpr("""\
            @dataclass(frozen=True)
            class NotASpec:
                hidden: int = 0
                def to_dict(self):
                    return {}

            @dataclass(frozen=True)
            class SimulationConfig:
                num_peers: int = 200
            """),
            ["FPR001"],
        )
        assert findings == []

    def test_cross_module_reachability(self, tmp_path):
        (tmp_path / "specs.py").write_text(
            fpr(
                """\
                @dataclass(frozen=True)
                class PeerClassSpec:
                    name: str
                    quirk: int = 0
                    def to_dict(self):
                        return {"name": self.name}
                """
            ),
            encoding="utf-8",
        )
        (tmp_path / "config.py").write_text(
            fpr(
                """\
                from specs import PeerClassSpec

                @dataclass(frozen=True)
                class SimulationConfig:
                    population: Tuple[PeerClassSpec, ...] = ()
                """
            ),
            encoding="utf-8",
        )
        findings = run_lint([str(tmp_path)], rules=[RULE_REGISTRY["FPR001"]()]).findings
        assert [f.rule for f in findings] == ["FPR001"]
        assert "PeerClassSpec.quirk" in findings[0].message
