"""Unit tests for the discrete-event engine."""

from __future__ import annotations

import pytest
from hypothesis import given, strategies as st

from repro.errors import SchedulingError, SimulationError
from repro.sim.engine import Engine


class TestScheduling:
    def test_starts_at_time_zero(self):
        assert Engine().now == 0.0

    def test_custom_start_time(self):
        assert Engine(start_time=5.0).now == 5.0

    def test_schedule_returns_event_with_fire_time(self):
        engine = Engine()
        event = engine.schedule(3.5, lambda: None, name="x")
        assert event.time == 3.5
        assert event.name == "x"

    def test_negative_delay_rejected(self):
        engine = Engine()
        with pytest.raises(SchedulingError):
            engine.schedule(-0.1, lambda: None)

    def test_schedule_at_past_rejected(self):
        engine = Engine()
        engine.schedule(5.0, lambda: None)
        engine.run(until=5.0)
        with pytest.raises(SchedulingError):
            engine.schedule_at(4.0, lambda: None)

    def test_schedule_at_current_time_allowed(self):
        engine = Engine()
        fired = []
        engine.schedule_at(0.0, lambda: fired.append(1))
        engine.run(until=0.0)
        assert fired == [1]


class TestExecution:
    def test_events_fire_in_time_order(self):
        engine = Engine()
        order = []
        engine.schedule(2.0, lambda: order.append("b"))
        engine.schedule(1.0, lambda: order.append("a"))
        engine.schedule(3.0, lambda: order.append("c"))
        engine.run(until=10.0)
        assert order == ["a", "b", "c"]

    def test_ties_fire_in_scheduling_order(self):
        engine = Engine()
        order = []
        for label in ("first", "second", "third"):
            engine.schedule(1.0, lambda l=label: order.append(l))
        engine.run(until=1.0)
        assert order == ["first", "second", "third"]

    def test_clock_advances_to_event_time(self):
        engine = Engine()
        seen = []
        engine.schedule(4.25, lambda: seen.append(engine.now))
        engine.run(until=10.0)
        assert seen == [4.25]

    def test_run_until_stops_before_later_events(self):
        engine = Engine()
        fired = []
        engine.schedule(1.0, lambda: fired.append(1))
        engine.schedule(5.0, lambda: fired.append(5))
        engine.run(until=2.0)
        assert fired == [1]
        assert engine.now == 2.0  # clock advanced to the horizon

    def test_event_at_horizon_fires(self):
        engine = Engine()
        fired = []
        engine.schedule(2.0, lambda: fired.append(1))
        engine.run(until=2.0)
        assert fired == [1]

    def test_run_requires_bound(self):
        with pytest.raises(SimulationError):
            Engine().run()

    def test_max_events_bound(self):
        engine = Engine()
        fired = []

        def reschedule():
            fired.append(engine.now)
            engine.schedule(1.0, reschedule)

        engine.schedule(1.0, reschedule)
        count = engine.run(max_events=5)
        assert count == 5
        assert len(fired) == 5

    def test_events_scheduled_during_run_fire(self):
        engine = Engine()
        order = []

        def outer():
            order.append("outer")
            engine.schedule(0.0, lambda: order.append("inner"))

        engine.schedule(1.0, outer)
        engine.run(until=1.0)
        assert order == ["outer", "inner"]

    def test_step_returns_fired_event(self):
        engine = Engine()
        engine.schedule(1.0, lambda: None, name="only")
        event = engine.step()
        assert event is not None and event.name == "only"
        assert engine.step() is None

    def test_reentrant_run_rejected(self):
        engine = Engine()

        def nested():
            engine.run(until=10.0)

        engine.schedule(1.0, nested)
        with pytest.raises(SimulationError):
            engine.run(until=5.0)


class TestUntilMaxEventsInterplay:
    """Regression: run(until=..., max_events=...) must not fast-forward
    the clock past events still in the heap (the clock would then move
    backwards on the next step/run and schedule_at would reject valid
    times)."""

    def _engine_with_ladder(self):
        engine = Engine()
        fired = []
        for t in (1.0, 2.0, 3.0, 4.0, 5.0):
            engine.schedule(t, lambda t=t: fired.append(t))
        return engine, fired

    def test_early_stop_leaves_clock_at_last_fired_event(self):
        engine, fired = self._engine_with_ladder()
        engine.run(until=10.0, max_events=2)
        assert fired == [1.0, 2.0]
        assert engine.now == 2.0  # not 10.0

    def test_now_never_ahead_of_pending_event(self):
        engine, _fired = self._engine_with_ladder()
        engine.run(until=10.0, max_events=2)
        assert engine.peek_time() is not None
        assert engine.now <= engine.peek_time()

    def test_resumed_run_fires_remaining_events_in_order(self):
        engine, fired = self._engine_with_ladder()
        engine.run(until=10.0, max_events=2)
        engine.run(until=10.0)
        assert fired == [1.0, 2.0, 3.0, 4.0, 5.0]
        assert engine.now == 10.0  # heap drained: clock reaches the horizon

    def test_step_after_early_stop_does_not_move_clock_backwards(self):
        engine, _fired = self._engine_with_ladder()
        engine.run(until=10.0, max_events=2)
        event = engine.step()
        assert event is not None and event.time == 3.0
        assert engine.now == 3.0

    def test_schedule_at_valid_time_after_early_stop(self):
        engine, fired = self._engine_with_ladder()
        engine.run(until=10.0, max_events=2)
        # 2.5 is after the clock (2.0) but before the undrained events;
        # before the fix the clock sat at 10.0 and this raised.
        engine.schedule_at(2.5, lambda: fired.append(2.5))
        engine.run(until=10.0)
        assert fired == [1.0, 2.0, 2.5, 3.0, 4.0, 5.0]

    def test_clock_advances_when_remaining_events_are_past_until(self):
        engine = Engine()
        fired = []
        engine.schedule(1.0, lambda: fired.append(1.0))
        engine.schedule(20.0, lambda: fired.append(20.0))
        engine.run(until=10.0, max_events=5)
        assert fired == [1.0]
        assert engine.now == 10.0  # nothing pending at or before until

    def test_clock_advances_when_only_cancelled_events_remain(self):
        engine = Engine()
        engine.schedule(1.0, lambda: None)
        engine.schedule(2.0, lambda: None).cancel()
        engine.run(until=10.0, max_events=1)
        assert engine.now == 10.0  # the cancelled event does not hold it back


class TestCancellation:
    def test_cancelled_event_does_not_fire(self):
        engine = Engine()
        fired = []
        event = engine.schedule(1.0, lambda: fired.append(1))
        event.cancel()
        engine.run(until=5.0)
        assert fired == []

    def test_cancel_is_idempotent(self):
        engine = Engine()
        event = engine.schedule(1.0, lambda: None)
        event.cancel()
        event.cancel()
        assert event.cancelled

    def test_cancelled_events_not_counted_as_fired(self):
        engine = Engine()
        engine.schedule(1.0, lambda: None).cancel()
        engine.schedule(2.0, lambda: None)
        engine.run(until=5.0)
        assert engine.events_fired == 1

    def test_peek_time_skips_cancelled(self):
        engine = Engine()
        engine.schedule(1.0, lambda: None).cancel()
        engine.schedule(2.0, lambda: None)
        assert engine.peek_time() == 2.0

    def test_peek_time_empty(self):
        assert Engine().peek_time() is None

    def test_peek_time_accounts_discarded_cancelled_events(self):
        engine = Engine()
        engine.schedule(1.0, lambda: None).cancel()
        engine.schedule(2.0, lambda: None).cancel()
        engine.schedule(3.0, lambda: None)
        assert engine.events_pending == 3
        assert engine.peek_time() == 3.0
        assert engine.cancelled_skipped == 2
        assert engine.events_pending == 1  # cancelled heads were popped

    def test_run_accounts_cancelled_skips(self):
        engine = Engine()
        engine.schedule(1.0, lambda: None).cancel()
        engine.schedule(2.0, lambda: None)
        engine.run(until=5.0)
        assert engine.cancelled_skipped == 1
        assert engine.events_fired == 1


class TestPropertyBased:
    @given(
        delays=st.lists(
            st.floats(min_value=0.0, max_value=1000.0, allow_nan=False),
            min_size=1,
            max_size=50,
        )
    )
    def test_firing_times_are_sorted(self, delays):
        engine = Engine()
        times = []
        for delay in delays:
            engine.schedule(delay, lambda: times.append(engine.now))
        engine.run(until=1001.0)
        assert times == sorted(times)
        assert len(times) == len(delays)

    @given(
        delays=st.lists(
            st.floats(min_value=0.0, max_value=100.0, allow_nan=False),
            min_size=2,
            max_size=30,
        ),
        cancel_index=st.integers(min_value=0, max_value=29),
    )
    def test_cancelling_one_leaves_others(self, delays, cancel_index):
        engine = Engine()
        fired = []
        events = [
            engine.schedule(delay, lambda i=i: fired.append(i))
            for i, delay in enumerate(delays)
        ]
        victim = events[cancel_index % len(events)]
        victim.cancel()
        engine.run(until=101.0)
        assert len(fired) == len(delays) - 1
        assert (cancel_index % len(delays)) not in fired


class TestCancellationPurgeCost:
    """Cancellation stays O(N log M) — asserted on counters, not clocks.

    ``purge_ops`` counts every discard of a cancelled entry (pop-time
    skips plus compaction sweeps).  Each cancellation must be paid for
    exactly once, regardless of how many live events surround it — a
    scheduler that rescanned or rebuilt per cancel would discard (or
    re-touch) entries in proportion to the population and break the
    exact equality.
    """

    def _run_with_cancels(self, population: int, cancels: int) -> Engine:
        engine = Engine()
        events = [
            engine.schedule(1.0 + (i % 977) * 0.01, lambda: None)
            for i in range(population)
        ]
        for event in events[:cancels]:
            event.cancel()
        engine.run(until=1_000.0)
        return engine

    def test_purge_work_is_population_independent(self):
        small = self._run_with_cancels(1_000, 400)
        large = self._run_with_cancels(16_000, 400)
        assert small.purge_ops == 400
        assert large.purge_ops == 400  # same N, 16x the M: same cost
        assert small.events_fired == 1_000 - 400
        assert large.events_fired == 16_000 - 400
        assert small.cancelled_skipped == large.cancelled_skipped == 400

    def test_mass_cancellation_compacts_amortized(self):
        """Cancelling most of the heap compacts, at the purge floor's rate."""
        engine = self._run_with_cancels(1_000, 900)
        assert engine.purge_ops == 900  # each cancel discarded exactly once
        # Compaction needs >= _PURGE_FLOOR (64) pending cancels per
        # sweep, so sweeps are bounded by N / 64 (+1 slack), never O(N).
        assert 1 <= engine.compactions <= 900 // 64 + 1

    def test_cancel_after_cancel_costs_nothing_extra(self):
        engine = Engine()
        events = [engine.schedule(float(i + 1), lambda: None) for i in range(100)]
        for event in events[:30]:
            event.cancel()
            event.cancel()  # idempotent: must not double-count purge work
        engine.run(until=200.0)
        assert engine.purge_ops == 30
        assert engine.events_fired == 70
