"""Unit tests for unit conversions."""

from __future__ import annotations

import pytest
from hypothesis import given, strategies as st

from repro import units


class TestConversions:
    def test_mb_roundtrip(self):
        assert units.kbit_to_mb(units.mb_to_kbit(20.0)) == pytest.approx(20.0)

    def test_paper_object_size(self):
        # 20 MB objects at the 8*1024 kbit/MB convention.
        assert units.mb_to_kbit(20.0) == 163840.0

    def test_kbit_to_kb(self):
        assert units.kbit_to_kb(8.0) == 1.0

    def test_minutes_roundtrip(self):
        assert units.minutes_to_seconds(units.seconds_to_minutes(90.0)) == pytest.approx(90.0)

    def test_transfer_seconds(self):
        # One 20 MB object through one 10 kbit/s slot: 16384 seconds.
        assert units.transfer_seconds(163840.0, 10.0) == pytest.approx(16384.0)

    def test_transfer_seconds_rejects_zero_rate(self):
        with pytest.raises(ValueError):
            units.transfer_seconds(100.0, 0.0)

    def test_transfer_seconds_rejects_negative_size(self):
        with pytest.raises(ValueError):
            units.transfer_seconds(-1.0, 10.0)

    @given(st.floats(min_value=0.001, max_value=1e6, allow_nan=False))
    def test_mb_conversion_monotone(self, mb):
        assert units.mb_to_kbit(mb) > 0
        assert units.kbit_to_mb(units.mb_to_kbit(mb)) == pytest.approx(mb)
