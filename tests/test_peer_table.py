"""PeerStateTable: columnar mirror correctness and order-identity.

Two properties matter: the table must mirror the object graph exactly
(every mutation point pushes its update), and every vectorized reader
must enumerate ids in exactly the order of the registry loop it
replaced — ascending peer id — including the bitset intersection path,
which must equal ``sorted(a & b)`` bit for bit.
"""

import random

import pytest

from repro.config import SimulationConfig
from repro.core.peer_table import BITSET_MIN, PeerStateTable
from repro.simulation import FileSharingSimulation


def make_table(num_peers=10, **rows):
    table = PeerStateTable(capacity=4)  # force growth
    for peer_id in range(num_peers):
        table.register(
            peer_id,
            online=True,
            shares=peer_id % 2 == 0,
            enables_exchanges=True,
            max_ring=5,
            class_name="sharer" if peer_id % 2 == 0 else "freeloader",
        )
    return table


class TestRowsAndScans:
    def test_register_grows_capacity_and_size(self):
        table = PeerStateTable(capacity=2)
        table.register(
            37, online=True, shares=True, enables_exchanges=True, max_ring=2
        )
        assert table.size == 38
        assert bool(table.online[37]) and bool(table.shares[37])
        assert int(table.max_ring[37]) == 2
        # Gap rows below are present but unregistered.
        assert not bool(table.registered[5])

    def test_alive_ids_ascending_and_class_filtered(self):
        table = make_table(10)
        table.set_departed(4)
        assert table.alive_ids() == [0, 1, 2, 3, 5, 6, 7, 8, 9]
        assert table.alive_ids("sharer") == [0, 2, 6, 8]
        assert table.alive_ids("freeloader") == [1, 3, 5, 7, 9]
        assert table.alive_ids("never-registered") == []

    def test_sharer_ids_online_gating(self):
        table = make_table(10)
        table.set_online(2, False)
        table.set_departed(6)
        assert table.sharer_ids(online_only=True) == [0, 4, 8]
        assert table.sharer_ids(online_only=False) == [0, 2, 4, 8]

    def test_mutations_bump_version(self):
        table = make_table(4)
        before = table.version
        table.set_online(0, False)
        table.set_shares(1, True)
        table.set_policy(2, False, 0)
        table.set_departed(3)
        assert table.version == before + 4
        assert not bool(table.online[0])
        assert not bool(table.enables_exchanges[2]) and int(table.max_ring[2]) == 0

    def test_counts(self):
        table = make_table(10)
        table.set_departed(0)
        table.set_online(2, False)
        counts = table.counts()
        assert counts["registered"] == 10
        assert counts["alive"] == 9
        assert counts["online"] == 8
        assert counts["online_sharers"] == 3  # 4, 6, 8 (0 departed, 2 offline)

    def test_storage_nbytes_positive(self):
        assert make_table(10).storage_nbytes() > 0


class TestSortedIntersection:
    def _check(self, table, providers, index_keys, object_version=1):
        import numpy as np

        expected = sorted(providers & set(index_keys))
        keys_sorted = np.asarray(sorted(index_keys), dtype=np.intc)
        got = table.sorted_intersection(
            7, object_version, providers, keys_sorted, frozenset(index_keys)
        )
        assert got == expected

    def test_small_sets_match_sorted(self):
        table = make_table(100)
        self._check(table, {3, 9, 55}, {9, 55, 60})

    def test_large_sets_take_mask_path_and_match(self):
        rand = random.Random(7)
        size = BITSET_MIN * 4
        table = make_table(size * 2)
        providers = set(rand.sample(range(size * 2), size))
        index_keys = set(rand.sample(range(size * 2), size))
        assert len(providers) >= BITSET_MIN and len(index_keys) >= BITSET_MIN
        self._check(table, providers, index_keys)
        # The mask path populated the per-object cache.
        assert 7 in table._provider_masks

    def test_version_change_invalidates_masks(self):
        size = BITSET_MIN * 2
        table = make_table(size * 2)
        providers = set(range(size))
        index_keys = set(range(size // 2, size + size // 2))
        self._check(table, providers, index_keys, object_version=1)
        # Same object key, new version, different provider set: must
        # rebuild the mask, not reuse it.
        providers2 = set(range(size, size * 2))
        index_keys2 = set(range(size))
        self._check(table, providers2, index_keys2, object_version=2)

    def test_capacity_growth_invalidates_masks(self):
        size = BITSET_MIN * 2
        table = make_table(size)
        providers = set(range(size))
        index_keys = set(range(size))
        self._check(table, providers, index_keys)
        # Growing capacity (new high id) must not break cached masks.
        table.register(
            size * 64, online=True, shares=True, enables_exchanges=True, max_ring=2
        )
        self._check(table, providers, index_keys)

    def test_provider_mask_cache_bounded(self):
        from repro.core.peer_table import PROVIDER_MASK_CACHE_MAX

        size = BITSET_MIN * 2
        table = make_table(size)
        providers = set(range(size))
        index_keys = set(range(size))
        import numpy as np

        keys_sorted = np.asarray(sorted(index_keys), dtype=np.intc)
        for object_id in range(PROVIDER_MASK_CACHE_MAX + 50):
            got = table.sorted_intersection(
                object_id, 1, providers, keys_sorted, frozenset(index_keys)
            )
            assert got == sorted(providers & index_keys)
        assert len(table._provider_masks) <= PROVIDER_MASK_CACHE_MAX
        # Eviction is oldest-first: the most recent inserts survive.
        assert (PROVIDER_MASK_CACHE_MAX + 49) in table._provider_masks


class TestMirrorsObjectGraph:
    @pytest.fixture()
    def sim(self):
        config = SimulationConfig(
            num_peers=12,
            freeloader_fraction=0.5,
            duration=100.0,
            warmup=0.0,
            seed=5,
        )
        sim = FileSharingSimulation(config)
        sim.build()
        return sim

    def _assert_mirror(self, sim):
        table = sim.ctx.peer_table
        for peer_id, peer in sim.ctx.peers.items():
            assert bool(table.online[peer_id]) == peer.online
            assert bool(table.shares[peer_id]) == peer.behavior.shares
            assert bool(table.departed[peer_id]) == peer.departed
            assert (
                bool(table.enables_exchanges[peer_id])
                == peer.policy.enables_exchanges
            )
            assert int(table.max_ring[peer_id]) == peer.policy.max_ring

    def test_build_registers_every_peer(self, sim):
        assert sim.ctx.peer_table.counts()["registered"] == 12
        self._assert_mirror(sim)

    def test_connectivity_and_sharing_flips_mirrored(self, sim):
        peer = sim.ctx.peers[0]
        peer.disconnect()
        self._assert_mirror(sim)
        peer.reconnect()
        self._assert_mirror(sim)
        peer.set_sharing(not peer.behavior.shares)
        self._assert_mirror(sim)

    def test_retirement_mirrored(self, sim):
        sim.retire_peer(sim.ctx.peers[3])
        self._assert_mirror(sim)
        assert 3 not in sim.ctx.peer_table.alive_ids()
