"""Unit tests for the rank power-law popularity model."""

from __future__ import annotations

import math
import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.content.popularity import PopularityCache, RankPopularity
from repro.errors import ConfigError


class TestDistributionShape:
    def test_probabilities_sum_to_one(self):
        dist = RankPopularity(num_ranks=50, factor=0.2)
        assert sum(dist.probabilities()) == pytest.approx(1.0)

    def test_zero_factor_is_uniform(self):
        dist = RankPopularity(num_ranks=4, factor=0.0)
        assert dist.probabilities() == pytest.approx([0.25, 0.25, 0.25, 0.25])

    def test_factor_one_is_zipf(self):
        dist = RankPopularity(num_ranks=3, factor=1.0)
        h3 = 1.0 + 0.5 + 1.0 / 3.0
        assert dist.probability(1) == pytest.approx(1.0 / h3)
        assert dist.probability(2) == pytest.approx(0.5 / h3)
        assert dist.probability(3) == pytest.approx((1.0 / 3.0) / h3)

    def test_probabilities_decrease_with_rank(self):
        dist = RankPopularity(num_ranks=20, factor=0.7)
        probs = dist.probabilities()
        assert all(a >= b for a, b in zip(probs, probs[1:]))

    def test_higher_factor_more_concentrated(self):
        flat = RankPopularity(num_ranks=100, factor=0.1)
        steep = RankPopularity(num_ranks=100, factor=0.9)
        assert steep.probability(1) > flat.probability(1)

    def test_paper_formula(self):
        # p(r) = (1/r^f) / sum_i (1/i^f), the paper's exact expression.
        dist = RankPopularity(num_ranks=10, factor=0.2)
        norm = sum(1.0 / (i ** 0.2) for i in range(1, 11))
        assert dist.probability(3) == pytest.approx((1.0 / 3 ** 0.2) / norm)

    def test_rank_out_of_range_rejected(self):
        dist = RankPopularity(num_ranks=5, factor=0.2)
        with pytest.raises(ConfigError):
            dist.probability(0)
        with pytest.raises(ConfigError):
            dist.probability(6)

    def test_invalid_construction(self):
        with pytest.raises(ConfigError):
            RankPopularity(num_ranks=0, factor=0.2)
        with pytest.raises(ConfigError):
            RankPopularity(num_ranks=5, factor=-0.1)


class TestSampling:
    def test_sample_in_range(self):
        dist = RankPopularity(num_ranks=7, factor=0.5)
        rand = random.Random(1)
        for _ in range(200):
            assert 1 <= dist.sample_rank(rand) <= 7

    def test_sample_index_offset(self):
        dist = RankPopularity(num_ranks=1, factor=0.5)
        rand = random.Random(1)
        assert dist.sample_rank(rand) == 1
        assert dist.sample_index(rand) == 0

    def test_empirical_frequencies_match(self):
        dist = RankPopularity(num_ranks=3, factor=1.0)
        rand = random.Random(42)
        counts = [0, 0, 0]
        n = 30_000
        for _ in range(n):
            counts[dist.sample_rank(rand) - 1] += 1
        for rank in (1, 2, 3):
            assert counts[rank - 1] / n == pytest.approx(dist.probability(rank), abs=0.01)

    @settings(max_examples=30)
    @given(
        n=st.integers(min_value=1, max_value=200),
        f=st.floats(min_value=0.0, max_value=2.0, allow_nan=False),
        seed=st.integers(min_value=0, max_value=1000),
    )
    def test_sampling_always_valid(self, n, f, seed):
        dist = RankPopularity(num_ranks=n, factor=f)
        rand = random.Random(seed)
        rank = dist.sample_rank(rand)
        assert 1 <= rank <= n
        assert math.isclose(sum(dist.probabilities()), 1.0, rel_tol=1e-9)


class TestPopularityCache:
    def test_returns_same_instance(self):
        cache = PopularityCache()
        assert cache.get(10, 0.2) is cache.get(10, 0.2)

    def test_distinguishes_keys(self):
        cache = PopularityCache()
        assert cache.get(10, 0.2) is not cache.get(10, 0.3)
        assert cache.get(10, 0.2) is not cache.get(11, 0.2)
        assert len(cache) == 3
