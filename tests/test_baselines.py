"""Tests for the eMule-credit and KaZaA-participation baselines."""

from __future__ import annotations

import pytest

from repro.baselines.credit import CreditLedger, credit_modifier, credit_queue_rank
from repro.baselines.participation import (
    MAX_LEVEL,
    ParticipationReporter,
    participation_priority,
)
from repro.errors import ProtocolError
from repro.units import KBIT_PER_MB


class TestCreditModifier:
    def test_below_one_mb_gives_one(self):
        assert credit_modifier(0.5 * KBIT_PER_MB, 100.0) == 1.0

    def test_clamped_to_ten(self):
        assert credit_modifier(100 * KBIT_PER_MB, 1.0) == 10.0

    def test_never_below_one(self):
        assert credit_modifier(2 * KBIT_PER_MB, 1000 * KBIT_PER_MB) == 1.0

    def test_ratio_rule(self):
        # 4 MB uploaded, 2 MB downloaded: ratio = 2*4/2 = 4;
        # alternative = sqrt(4 + 2) ~ 2.45 -> the lower wins.
        modifier = credit_modifier(4 * KBIT_PER_MB, 2 * KBIT_PER_MB)
        assert modifier == pytest.approx(2.449489, rel=1e-5)

    def test_zero_download_uses_alternative(self):
        modifier = credit_modifier(7 * KBIT_PER_MB, 0.0)
        assert modifier == pytest.approx(3.0)  # sqrt(7 + 2)

    def test_negative_rejected(self):
        with pytest.raises(ProtocolError):
            credit_modifier(-1.0, 0.0)

    def test_queue_rank(self):
        assert credit_queue_rank(100.0, 2.0) == 200.0
        with pytest.raises(ProtocolError):
            credit_queue_rank(-1.0, 2.0)


class TestCreditLedger:
    def test_volumes_accumulate(self):
        ledger = CreditLedger(owner_id=1)
        ledger.record_received(2, 100.0)
        ledger.record_received(2, 50.0)
        ledger.record_served(2, 30.0)
        assert ledger.volumes(2) == (150.0, 30.0)
        assert ledger.known_peers() == 1

    def test_unknown_peer_neutral(self):
        ledger = CreditLedger(owner_id=1)
        assert ledger.modifier(9) == 1.0
        assert ledger.volumes(9) == (0.0, 0.0)

    def test_contributor_ranked_above_stranger(self):
        ledger = CreditLedger(owner_id=1)
        ledger.record_received(2, 10 * KBIT_PER_MB)  # peer 2 gave us 10 MB
        waiting = 100.0
        assert ledger.rank(2, waiting) > ledger.rank(9, waiting)

    def test_patience_still_wins_eventually(self):
        # The paper's criticism: waiting long enough beats credit.
        ledger = CreditLedger(owner_id=1)
        ledger.record_received(2, 10 * KBIT_PER_MB)
        assert ledger.rank(9, 10_000.0) > ledger.rank(2, 100.0)


class TestParticipation:
    def test_honest_level_tracks_ratio(self):
        reporter = ParticipationReporter(1)
        reporter.record_uploaded(300.0)
        reporter.record_downloaded(600.0)
        assert reporter.honest_level == pytest.approx(0.5)
        assert reporter.claimed_level == reporter.honest_level

    def test_cheater_claims_max(self):
        reporter = ParticipationReporter(1, cheats=True)
        reporter.record_downloaded(1000.0)
        assert reporter.honest_level == 0.0
        assert reporter.claimed_level == MAX_LEVEL

    def test_negative_volumes_rejected(self):
        reporter = ParticipationReporter(1)
        with pytest.raises(ProtocolError):
            reporter.record_uploaded(-1.0)

    def test_priority_ordering(self):
        # Claimed level dominates; waiting breaks ties.
        high = participation_priority(1.0, 0.0)
        low_patient = participation_priority(0.0, 50_000.0)
        assert high > low_patient
        assert participation_priority(0.5, 10.0) > participation_priority(0.5, 5.0)

    def test_priority_validates_inputs(self):
        with pytest.raises(ProtocolError):
            participation_priority(1.5, 0.0)
        with pytest.raises(ProtocolError):
            participation_priority(0.5, -1.0)


class TestSchedulerIntegration:
    def test_credit_mode_serves_contributor_first(self):
        from tests.helpers import build_peer, give, make_ctx, small_config

        config = small_config(
            scheduler_mode="credit",
            exchange_mechanism="none",
            upload_capacity_kbit=10.0,  # one slot: ordering is observable
        )
        ctx = make_ctx(config)
        provider = build_peer(ctx, 1, mechanism="none")
        stranger = build_peer(ctx, 2, mechanism="none")
        contributor = build_peer(ctx, 3, mechanism="none")
        give(ctx, provider, 0)
        # The contributor has uploaded 2 MB to the provider in the past.
        provider.credit.record_received(3, 2 * KBIT_PER_MB)
        # The stranger registers FIRST; under FIFO it would be served first.
        stranger.start_download(ctx.catalog.object(0))
        contributor.start_download(ctx.catalog.object(0))
        ctx.engine.run(until=1.0)
        assert contributor.pending[0].active_sources == 1
        assert stranger.pending[0].active_sources == 0

    def test_participation_mode_is_subvertible(self):
        from tests.helpers import build_peer, give, make_ctx, small_config

        config = small_config(
            scheduler_mode="participation",
            exchange_mechanism="none",
            upload_capacity_kbit=10.0,
        )
        ctx = make_ctx(config)
        provider = build_peer(ctx, 1, mechanism="none")
        honest = build_peer(ctx, 2, mechanism="none")
        liar = build_peer(ctx, 3, shares=False, mechanism="none")
        give(ctx, provider, 0)
        liar.participation.cheats = True  # the one-line KaZaA hack
        honest.start_download(ctx.catalog.object(0))
        liar.start_download(ctx.catalog.object(0))
        ctx.engine.run(until=1.0)
        # The free-riding liar outranks the honest peer.
        assert liar.pending[0].active_sources == 1
        assert honest.pending[0].active_sources == 0
