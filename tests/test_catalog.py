"""Unit tests for the content catalog."""

from __future__ import annotations

import pytest

from repro.content.catalog import Catalog, Category, ContentObject
from repro.errors import ConfigError
from repro.sim.rng import RandomSource

from tests.helpers import tiny_catalog


class TestContentObject:
    def test_rejects_non_positive_size(self):
        with pytest.raises(ConfigError):
            ContentObject(object_id=0, category_id=0, rank=1, size_kbit=0.0)

    def test_is_frozen(self):
        obj = ContentObject(object_id=0, category_id=0, rank=1, size_kbit=10.0)
        with pytest.raises(AttributeError):
            obj.size_kbit = 20.0


class TestCatalogConstruction:
    def test_object_lookup(self):
        catalog = tiny_catalog(num_categories=2, objects_per_category=3)
        obj = catalog.object(4)
        assert obj.object_id == 4
        assert obj.category_id == 1

    def test_counts(self):
        catalog = tiny_catalog(num_categories=2, objects_per_category=3)
        assert catalog.num_categories == 2
        assert catalog.num_objects == 6

    def test_all_objects_sorted_by_id(self):
        catalog = tiny_catalog()
        ids = [o.object_id for o in catalog.all_objects()]
        assert ids == sorted(ids)

    def test_rejects_empty_catalog(self):
        with pytest.raises(ConfigError):
            Catalog([])

    def test_rejects_empty_category(self):
        with pytest.raises(ConfigError):
            Catalog([Category(category_id=0, rank=1, objects=())])

    def test_rejects_duplicate_object_ids(self):
        obj = ContentObject(object_id=0, category_id=0, rank=1, size_kbit=1.0)
        dup = ContentObject(object_id=0, category_id=1, rank=1, size_kbit=1.0)
        with pytest.raises(ConfigError):
            Catalog(
                [
                    Category(category_id=0, rank=1, objects=(obj,)),
                    Category(category_id=1, rank=2, objects=(dup,)),
                ]
            )


class TestCatalogBuild:
    def test_build_respects_counts(self):
        catalog = Catalog.build(
            RandomSource(5),
            num_categories=10,
            objects_per_category_min=2,
            objects_per_category_max=6,
            object_size_kbit=100.0,
        )
        assert catalog.num_categories == 10
        for category in catalog.categories:
            assert 2 <= category.size <= 6
            for obj in category.objects:
                assert obj.size_kbit == 100.0

    def test_build_ids_dense_and_unique(self):
        catalog = Catalog.build(
            RandomSource(5),
            num_categories=5,
            objects_per_category_min=1,
            objects_per_category_max=4,
            object_size_kbit=1.0,
        )
        ids = [o.object_id for o in catalog.all_objects()]
        assert ids == list(range(len(ids)))

    def test_build_ranks_start_at_one(self):
        catalog = Catalog.build(
            RandomSource(5),
            num_categories=3,
            objects_per_category_min=3,
            objects_per_category_max=3,
            object_size_kbit=1.0,
        )
        for category in catalog.categories:
            assert [o.rank for o in category.objects] == [1, 2, 3]

    def test_build_deterministic(self):
        def build():
            return Catalog.build(
                RandomSource(9),
                num_categories=8,
                objects_per_category_min=1,
                objects_per_category_max=20,
                object_size_kbit=1.0,
            )

        assert [c.size for c in build().categories] == [c.size for c in build().categories]

    def test_build_rejects_bad_ranges(self):
        with pytest.raises(ConfigError):
            Catalog.build(RandomSource(1), 0, 1, 2, 1.0)
        with pytest.raises(ConfigError):
            Catalog.build(RandomSource(1), 3, 0, 2, 1.0)
        with pytest.raises(ConfigError):
            Catalog.build(RandomSource(1), 3, 5, 2, 1.0)
